//! # opd — Online Phase Detection Algorithms
//!
//! A complete Rust reproduction of *Online Phase Detection Algorithms*
//! (Nagpurkar, Hind, Krintz, Sweeney, Rajan — CGO 2006): the
//! parameterizable online phase detection framework, the MicroVM
//! workload substrate that stands in for instrumented Java benchmarks,
//! the offline baseline ("oracle") solution, the client- and
//! machine-independent accuracy scoring metric, and the evaluation
//! harness that regenerates every table and figure of the paper.
//!
//! This facade crate re-exports the workspace crates under stable
//! module names:
//!
//! * [`trace`] — profile elements, branch/call-loop traces, phase labels
//! * [`microvm`] — structured-program IR, interpreter, and the eight
//!   synthetic workloads
//! * [`core`] — the online phase detection framework (window, model,
//!   and analyzer policies; the detector of Figure 3)
//! * [`baseline`] — the offline baseline solution of Section 3.1
//! * [`scoring`] — the accuracy scoring metric of Section 3.2
//! * [`client`] — phase-aware optimization clients: cost models, net-benefit
//!   simulation, and MPL selection/adaptation (the paper's Section 7
//!   future work)
//! * [`faults`] — seeded fault injectors over trace byte and event
//!   streams, with exact injected-fault ledgers
//! * [`serve`] — the fault-tolerant multi-tenant streaming session
//!   layer: bounded ingest queues with backpressure, supervised
//!   restarts from checkpointed state, and poison-pill quarantine
//! * [`experiments`] — configuration grids, the parallel sweep runner,
//!   and per-table/figure experiment generators
//!
//! # Quickstart
//!
//! ```
//! use opd::baseline::BaselineSolution;
//! use opd::core::{DetectorConfig, PhaseDetector};
//! use opd::microvm::{workloads, Interpreter};
//! use opd::scoring::score_states;
//! use opd::trace::ExecutionTrace;
//!
//! // 1. Execute a workload, recording branch + call-loop traces.
//! let program = workloads::lexgen(1);
//! let mut trace = ExecutionTrace::new();
//! Interpreter::new(&program, 0xC0FFEE).run(&mut trace)?;
//!
//! // 2. Compute the baseline (oracle) phases for MPL = 1000.
//! let oracle = BaselineSolution::compute(&trace, 1_000)?;
//!
//! // 3. Run an online detector over the same profile.
//! let config = DetectorConfig::builder().current_window(500).build()?;
//! let mut detector = PhaseDetector::new(config);
//! let states = detector.run(trace.branches());
//!
//! // 4. Score the detector against the oracle.
//! let score = score_states(&states, &oracle);
//! assert!(score.combined() >= 0.0 && score.combined() <= 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use opd_baseline as baseline;
pub use opd_client as client;
pub use opd_core as core;
pub use opd_experiments as experiments;
pub use opd_faults as faults;
pub use opd_microvm as microvm;
pub use opd_scoring as scoring;
pub use opd_serve as serve;
pub use opd_trace as trace;
