//! The `opd` command-line tool.
//!
//! Currently one subcommand family around the static analyzer:
//!
//! * `opd lint [--json] [--deny-warnings] [--scale N] [TARGET...]` —
//!   lint the built-in workloads (default: all eight) or a dumped
//!   program listing, printing rustc-style diagnostics.
//! * `opd bounds [--write]` — render the per-workload static-bounds
//!   artifact; `--write` updates `BENCH_static_bounds.json` at the
//!   repository root.
//! * `opd plan [--json] [--prune] [--scale N] [--write]` — statically
//!   analyze the default sweep grid: equivalence classes, plan lints
//!   (`OPD-C101..C106`), and predicted-vs-actual scan counts;
//!   `--prune` prints the pruned grid and, when the grid is proven
//!   irredundant, per-axis distinctness witnesses; `--write` updates
//!   `BENCH_plan.json`.
//! * `opd faults [--smoke] [--scale N] [--write]` — the
//!   fault-injection degradation study: accuracy of the default sweep
//!   grid on corrupted traces vs the clean-trace oracle, per fault
//!   kind and rate; `--write` updates `BENCH_faults.json`; `--smoke`
//!   runs a fast ledger-vs-decoder consistency pass for CI.
//! * `opd sweep [--scale N] [--fuel N] [--threads N]
//!   [--checkpoint PATH] [--resume] [--stats [--json] [--write]]` —
//!   run the default grid over all workloads; with `--checkpoint`,
//!   completed (workload, unit) buckets stream to a crash-safe file
//!   (with a heartbeat line per bucket on stderr), and `--resume`
//!   restores them after an interrupted run instead of recomputing.
//!   `--stats` runs the metered sweep and prints a per-bucket profile
//!   plus the NullObserver overhead measurement; `--write` updates
//!   `BENCH_obs.json`.
//! * `opd audit [--json] [--deny-warnings] [--write]` — the
//!   concurrency audit: exhaustive DPOR exploration of the modeled
//!   concurrent subsystems (metrics, runner, checkpoint), the
//!   seeded-bug mutant suite, and the `OPD-R` race lints over the
//!   observed synchronization profiles; `--write` updates
//!   `BENCH_sched.json`.
//! * `opd certify [--json] [--deny-warnings] [--budget BYTES]
//!   [--scale N] [--fuel N] [--write]` — abstract-interpretation
//!   resource certificates for every (config × workload) pair of the
//!   default grid: intervals for phase transitions, window occupancy,
//!   detector memory high-water mark, and judged-step/compare-op
//!   cost, plus the `OPD-A301..A305` lints; `--budget` rejects pairs
//!   whose certified memory exceeds BYTES (`OPD-A303`); `--write`
//!   updates `BENCH_cert.json`.
//! * `opd serve [--smoke] [--clients N] [--mode MODE] [--capacity N]
//!   [--threads N] [--scale N] [--checkpoint PATH] [--resume]
//!   [--postmortem-dir DIR] [--spans-out FILE] [--json]` — the
//!   fault-tolerant multi-tenant streaming layer: a deterministic
//!   fault-injected soak of simulated clients over the eight
//!   workloads, with supervised restarts, backpressure (`block`,
//!   `shed-oldest`, `reject`), poison-pill quarantine, and
//!   bit-identity verification against the offline detector; with
//!   `--checkpoint`, completed virtual shards stream to a crash-safe
//!   OPDK file and `--resume` restores them after a hard kill;
//!   `--smoke` runs the aggressive CI invariant pass. With
//!   `--postmortem-dir` or `--spans-out` the soak runs through the
//!   traced engine: every quarantine, deadline kill, and hazard kill
//!   dumps the session's flight-recorder ring as a self-contained
//!   post-mortem file, and the full causal-span log (byte-identical
//!   across thread counts) streams to the named file.
//! * `opd loadgen [--scale N] [--json] [--write]` — the serve load
//!   study: the committed soak, shed curves over queue capacity ×
//!   backpressure mode, and the certificate-admission sweep;
//!   `--write` updates `BENCH_serve.json`.
//! * `opd trace TARGET [--config SPEC] [--kind LIST] [--session N]
//!   [--json] [--limit N] [--scale N] [--fuel N]` — stream one
//!   detector run's structured event log (window slides, similarity
//!   scores, analyzer decisions, phase transitions) for a workload or
//!   program listing, or replay a span-log file written by
//!   `opd serve --spans-out` (detected by its `# opd-spans-v1`
//!   header); `--kind` keeps only the named comma-separated event or
//!   span kinds, `--session` (span logs only) one client's spans.
//! * `opd top [--once] [--json] [--write] [--clients N] [--scale N]
//!   [--threads N] [--slo-p99 T] [--slo-shed F] [--slo-quarantine F]
//!   [--slo-completion F]` — the live service dashboard: runs the
//!   dashboard soak through the traced engine (refreshing a monitor
//!   line on stderr from the shared metrics registry), then renders
//!   per-window session states, shed/quarantine rates, frame-latency
//!   percentiles in virtual ticks, span accounting, and the SLO
//!   verdict; any `OPD-O401..O404` burn exits 1; `--once` (or
//!   `--json`) skips the refresh loop, `--write` updates
//!   `BENCH_dash.json`.
//! * `opd flight FILE [--json]` — pretty-print a post-mortem dumped
//!   by `opd serve --postmortem-dir`: who died, why, the counters at
//!   death, and the flight recorder's retained spans.
//! * `opd metrics-dump [--clients N] [--scale N] [--json]` — run a
//!   small metered soak and print the Prometheus-style text
//!   exposition of every service counter and histogram.
//!
//! In `--json` modes stdout carries exactly one JSON document; all
//! human-readable output moves to stderr (see
//! [`opd_experiments::cli::Reporter`]).
//!
//! Exit codes: 0 clean, 1 lint findings at the failing severity,
//! 2 usage/input errors. Malformed command lines are the typed
//! [`opd_experiments::cli::CliError`]; its variants all map to exit
//! code 2, a contract locked by `tests/cli_errors.rs`.

use std::fmt::Write as _;
use std::process::ExitCode;

use opd_analyze::{Analysis, PlanAnalysis, Severity};
use opd_core::SweepEngine;
use opd_experiments::cli::{CliError, Reporter};
use opd_microvm::workloads::Workload;
use opd_microvm::{parse_program, Program};

const USAGE: &str = "\
usage: opd lint [--json] [--deny-warnings] [--scale N] [TARGET...]
       opd bounds [--write]
       opd plan [--json] [--prune] [--scale N] [--write]
       opd faults [--smoke] [--scale N] [--write]
       opd sweep [--scale N] [--fuel N] [--threads N]
                 [--checkpoint PATH] [--resume]
                 [--stats [--json] [--write]]
       opd audit [--json] [--deny-warnings] [--write]
       opd certify [--json] [--deny-warnings] [--budget BYTES]
                 [--scale N] [--fuel N] [--write]
       opd serve [--smoke] [--clients N] [--mode MODE] [--capacity N]
                 [--threads N] [--scale N] [--checkpoint PATH]
                 [--resume] [--postmortem-dir DIR] [--spans-out FILE]
                 [--json]
       opd loadgen [--scale N] [--json] [--write]
       opd trace TARGET [--config SPEC] [--kind LIST] [--session N]
                 [--json] [--limit N] [--scale N] [--fuel N]
       opd top [--once] [--json] [--write] [--clients N] [--scale N]
                 [--threads N] [--slo-p99 T] [--slo-shed F]
                 [--slo-quarantine F] [--slo-completion F]
       opd flight FILE [--json]
       opd metrics-dump [--clients N] [--scale N] [--json]

TARGET is a built-in workload name (blockcomp, ruleng, tracer,
querydb, srccomp, audiodec, parsegen, lexgen) or a path to a program
listing in the MicroVM dump format. With no targets, all eight
workloads are linted.

A trace --config SPEC is comma-separated key=value pairs: cw, tw,
skip, policy (constant|adaptive), anchor (rn|lnn), resize
(slide|move), model (unweighted|weighted|pearson), threshold or
delta.";

struct LintOpts {
    json: bool,
    deny_warnings: bool,
    scale: u32,
    targets: Vec<String>,
}

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {message}\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match parse_lint_args(&args[1..]) {
            Ok(opts) => lint(&opts),
            Err(e) => fail(e),
        },
        Some("bounds") => match args[1..] {
            [] => {
                Reporter::new(false)
                    .payload(opd_experiments::analysis::static_bounds_json(1).trim_end());
                ExitCode::SUCCESS
            }
            [ref flag] if flag == "--write" => write_bounds_artifact(),
            _ => fail(CliError::usage("bounds accepts only --write")),
        },
        Some("plan") => match parse_plan_args(&args[1..]) {
            Ok(opts) => plan(&opts),
            Err(e) => fail(e),
        },
        Some("faults") => match parse_faults_args(&args[1..]) {
            Ok(opts) => faults(&opts),
            Err(e) => fail(e),
        },
        Some("sweep") => match parse_sweep_args(&args[1..]) {
            Ok(opts) => sweep(&opts),
            Err(e) => fail(e),
        },
        Some("audit") => match parse_audit_args(&args[1..]) {
            Ok(opts) => audit(&opts),
            Err(e) => fail(e),
        },
        Some("certify") => match parse_certify_args(&args[1..]) {
            Ok(opts) => certify(&opts),
            Err(e) => fail(e),
        },
        Some("serve") => match parse_serve_args(&args[1..]) {
            Ok(opts) => serve(&opts),
            Err(e) => fail(e),
        },
        Some("loadgen") => match parse_loadgen_args(&args[1..]) {
            Ok(opts) => loadgen(&opts),
            Err(e) => fail(e),
        },
        Some("trace") => match parse_trace_args(&args[1..]) {
            Ok(opts) => trace(&opts),
            Err(e) => fail(e),
        },
        Some("top") => match parse_top_args(&args[1..]) {
            Ok(opts) => top(&opts),
            Err(e) => fail(e),
        },
        Some("flight") => match parse_flight_args(&args[1..]) {
            Ok(opts) => flight(&opts),
            Err(e) => fail(e),
        },
        Some("metrics-dump") => match parse_metrics_dump_args(&args[1..]) {
            Ok(opts) => metrics_dump(&opts),
            Err(e) => fail(e),
        },
        Some("help" | "--help" | "-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(CliError::unknown_subcommand(other)),
    }
}

fn parse_lint_args(args: &[String]) -> Result<LintOpts, CliError> {
    let mut opts = LintOpts {
        json: false,
        deny_warnings: false,
        scale: 1,
        targets: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--scale" => {
                let value = iter.next().ok_or(CliError::missing_value("--scale"))?;
                opts.scale = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--scale `{value}`"), e))?;
            }
            flag if flag.starts_with("--") => return Err(CliError::unknown_flag(flag)),
            target => opts.targets.push(target.to_owned()),
        }
    }
    Ok(opts)
}

/// Resolves one lint target to a `(name, program)` pair.
fn resolve(target: &str, scale: u32) -> Result<(String, Program), String> {
    if let Some(w) = Workload::ALL.iter().find(|w| w.name() == target) {
        return Ok((target.to_owned(), w.program(scale)));
    }
    if std::path::Path::new(target).exists() {
        let source =
            std::fs::read_to_string(target).map_err(|e| format!("cannot read `{target}`: {e}"))?;
        let program =
            parse_program(&source).map_err(|e| format!("cannot parse `{target}`: {e}"))?;
        return Ok((target.to_owned(), program));
    }
    Err(format!(
        "`{target}` is neither a built-in workload nor an existing file"
    ))
}

fn lint(opts: &LintOpts) -> ExitCode {
    let named: Result<Vec<(String, Program)>, String> = if opts.targets.is_empty() {
        Ok(Workload::ALL
            .iter()
            .map(|w| (w.name().to_owned(), w.program(opts.scale)))
            .collect())
    } else {
        opts.targets
            .iter()
            .map(|t| resolve(t, opts.scale))
            .collect()
    };
    let named = match named {
        Ok(n) => n,
        Err(message) => return fail(&message),
    };

    let reporter = Reporter::new(opts.json);
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut json_entries = Vec::new();
    for (name, program) in &named {
        let analysis = Analysis::of(program);
        errors += analysis.error_count();
        warnings += analysis.warning_count();
        if opts.json {
            json_entries.push(format!(" \"{name}\": {}", analysis.to_json()));
        } else {
            reporter.human(render_target(name, &analysis).trim_end());
        }
    }
    if opts.json {
        reporter.payload(format_args!("{{\n{}\n}}", json_entries.join(",\n")));
    } else {
        let verdict = if errors > 0 || (opts.deny_warnings && warnings > 0) {
            "FAIL"
        } else {
            "ok"
        };
        reporter.human(format_args!(
            "lint: {} target(s), {errors} error(s), {warnings} warning(s): {verdict}",
            named.len()
        ));
    }
    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders one target's diagnostics and bound summary.
fn render_target(name: &str, analysis: &Analysis) -> String {
    let mut out = String::new();
    for d in analysis.diagnostics() {
        let _ = writeln!(out, "{}", d.render());
    }
    let bounds = analysis.bounds();
    // Saturated values mean no finite bound exists (unguarded
    // recursion or u64 overflow) — print them as such.
    let show = |value: u64, saturated: bool| {
        if saturated || value == u64::MAX {
            "unbounded".to_owned()
        } else {
            value.to_string()
        }
    };
    let _ = writeln!(
        out,
        "{name}: {} error(s), {} warning(s); alphabet <= {}, events <= {}, call depth <= {}, nesting <= {}",
        analysis.error_count(),
        analysis.warning_count(),
        analysis.flow().alphabet_bound(),
        show(bounds.events(), bounds.overflowed()),
        show(bounds.call_depth(), false),
        show(bounds.nest_depth(), false),
    );
    out
}

struct AuditOpts {
    json: bool,
    deny_warnings: bool,
    write: bool,
}

fn parse_audit_args(args: &[String]) -> Result<AuditOpts, CliError> {
    let mut opts = AuditOpts {
        json: false,
        deny_warnings: false,
        write: false,
    };
    for arg in args {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--write" => opts.write = true,
            flag if flag.starts_with("--") => return Err(CliError::unknown_flag(flag)),
            other => {
                return Err(CliError::usage(format!(
                    "unexpected audit argument `{other}`"
                )))
            }
        }
    }
    Ok(opts)
}

fn audit(opts: &AuditOpts) -> ExitCode {
    use opd_experiments::sched;

    let audits = sched::audit_subsystems();
    let mutants = sched::mutant_audits();
    let lints = sched::audit_lints(&audits);

    let reporter = Reporter::new(opts.json);
    if opts.write {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_sched.json");
        if let Err(e) = std::fs::write(path, sched::sched_json(&audits, &mutants, &lints)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        reporter.human(format_args!("wrote {path}"));
    }

    if opts.json {
        reporter.payload(sched::sched_json(&audits, &mutants, &lints).trim_end());
    } else {
        reporter.human(render_audit(&audits, &mutants, &lints, opts.deny_warnings).trim_end());
    }

    // Findings in a clean subsystem or an escaped mutant are always
    // errors; `OPD-R` lints fail only under --deny-warnings.
    let findings = audits.iter().filter(|a| a.finding.is_some()).count();
    let escaped = mutants.iter().filter(|m| !m.caught).count();
    if findings > 0 || escaped > 0 || (opts.deny_warnings && !lints.is_empty()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders the concurrency audit for humans: per-subsystem
/// exploration verdicts, mutant detection records, race lints, and a
/// one-line summary.
fn render_audit(
    audits: &[opd_experiments::sched::SubsystemAudit],
    mutants: &[opd_experiments::sched::MutantAudit],
    lints: &[opd_analyze::Diagnostic],
    deny_warnings: bool,
) -> String {
    let mut out = String::new();
    for a in audits {
        let _ = writeln!(
            out,
            "{}: {} — {} schedule(s) (naive {}, pruning {:.1}x), {} transition(s), max depth {}",
            a.name,
            a.verdict(),
            a.executions,
            a.naive_executions,
            a.pruning_ratio(),
            a.transitions,
            a.max_depth,
        );
        if let Some(finding) = &a.finding {
            for line in finding.lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
    }
    for m in mutants {
        if m.caught {
            let schedule = m
                .schedule
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "mutant {}: caught {} on `{}` after {} schedule(s); replay witness: [{schedule}]",
                m.name, m.expected, m.object, m.executions,
            );
        } else {
            let _ = writeln!(
                out,
                "mutant {}: ESCAPED — expected {} on `{}` was not reported",
                m.name, m.expected, m.object,
            );
        }
    }
    for d in lints {
        let _ = writeln!(out, "{}", d.render());
    }
    let findings = audits.iter().filter(|a| a.finding.is_some()).count();
    let escaped = mutants.iter().filter(|m| !m.caught).count();
    let verdict = if findings > 0 || escaped > 0 || (deny_warnings && !lints.is_empty()) {
        "FAIL"
    } else {
        "ok"
    };
    let _ = writeln!(
        out,
        "audit: {} subsystem(s), {} finding(s), {}/{} mutant(s) caught, {} lint warning(s): {verdict}",
        audits.len(),
        findings,
        mutants.len() - escaped,
        mutants.len(),
        lints.len(),
    );
    out
}

struct CertifyOpts {
    json: bool,
    deny_warnings: bool,
    write: bool,
    budget: Option<u64>,
    scale: u32,
    fuel: u64,
}

fn parse_certify_args(args: &[String]) -> Result<CertifyOpts, CliError> {
    let mut opts = CertifyOpts {
        json: false,
        deny_warnings: false,
        write: false,
        budget: None,
        scale: 1,
        // Certificates default to the untruncated programs; a finite
        // --fuel reproduces a capped run (and its OPD-A304 lints).
        fuel: u64::MAX,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--write" => opts.write = true,
            "--budget" => {
                let value = iter.next().ok_or(CliError::missing_value("--budget"))?;
                opts.budget = Some(
                    value
                        .parse()
                        .map_err(|e| CliError::invalid(format!("--budget `{value}`"), e))?,
                );
            }
            "--scale" => {
                let value = iter.next().ok_or(CliError::missing_value("--scale"))?;
                opts.scale = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--scale `{value}`"), e))?;
            }
            "--fuel" => {
                let value = iter.next().ok_or(CliError::missing_value("--fuel"))?;
                opts.fuel = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--fuel `{value}`"), e))?;
            }
            flag if flag.starts_with("--") => return Err(CliError::unknown_flag(flag)),
            other => {
                return Err(CliError::usage(format!(
                    "unexpected certify argument `{other}`"
                )))
            }
        }
    }
    Ok(opts)
}

fn certify(opts: &CertifyOpts) -> ExitCode {
    use opd_experiments::cert;

    let (configs, per_workload) = cert::grid_certificates(opts.scale, opts.fuel);
    let lints = cert::cert_lints(&per_workload, opts.budget);

    let reporter = Reporter::new(opts.json);
    if opts.write {
        // The committed artifact is always the pinned (scale 1,
        // CERT_FUEL) form the differential suite certifies, whatever
        // this invocation printed.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_cert.json");
        if let Err(e) = std::fs::write(path, cert::cert_json(1, cert::CERT_FUEL)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        reporter.human(format_args!("wrote {path}"));
    }

    if opts.json {
        reporter.payload(cert::cert_json(opts.scale, opts.fuel).trim_end());
    } else {
        reporter.human(render_certify(&configs, &per_workload, &lints, opts).trim_end());
    }

    let errors = lints
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .count();
    let warnings = lints.len() - errors;
    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders the certificate sweep for humans: one line per workload
/// (the window-shape intervals every grid member shares plus the
/// worst-case compare bound across members), the `OPD-A` lints, and a
/// one-line summary.
fn render_certify(
    configs: &[opd_core::DetectorConfig],
    per_workload: &[opd_experiments::cert::WorkloadCertificates],
    lints: &[opd_analyze::Diagnostic],
    opts: &CertifyOpts,
) -> String {
    let mut out = String::new();
    for wc in per_workload {
        let shared = &wc.certs[0];
        let compare_hi = wc
            .certs
            .iter()
            .map(|c| c.compare_ops().hi())
            .max()
            .unwrap_or(0);
        let cost_hi = wc
            .certs
            .iter()
            .filter_map(opd_analyze::ResourceCertificate::cost_compare_bound)
            .max()
            .unwrap_or(0);
        let _ = writeln!(
            out,
            "{:<10} elements [{},{}]  judged [{},{}]  phases [{},{}]  occupancy <= {}  \
             sites [{},{}]  memory <= {} B  compare <= {} (cost bound {}, tighter {}/{})",
            wc.workload,
            shared.elements().lo(),
            shared.elements().hi(),
            shared.judged_steps().lo(),
            shared.judged_steps().hi(),
            wc.certs.iter().map(|c| c.phases().lo()).min().unwrap_or(0),
            wc.certs.iter().map(|c| c.phases().hi()).max().unwrap_or(0),
            shared.occupancy().hi(),
            shared.sites().lo(),
            shared.sites().hi(),
            shared.memory_bytes().hi(),
            compare_hi,
            cost_hi,
            wc.tighter_count(),
            wc.certs.len(),
        );
    }
    for d in lints {
        let _ = writeln!(out, "{}", d.render());
    }
    let errors = lints
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .count();
    let warnings = lints.len() - errors;
    let verdict = if errors > 0 || (opts.deny_warnings && warnings > 0) {
        "FAIL"
    } else {
        "ok"
    };
    let pairs: usize = per_workload.iter().map(|wc| wc.certs.len()).sum();
    let tighter: usize = per_workload
        .iter()
        .map(opd_experiments::cert::WorkloadCertificates::tighter_count)
        .sum();
    let _ = writeln!(
        out,
        "certify: {} workload(s) x {} config(s), {pairs} certificate(s), {tighter} tighter \
         than the cost bound, {errors} error(s), {warnings} warning(s): {verdict}",
        per_workload.len(),
        configs.len(),
    );
    out
}

struct PlanOpts {
    json: bool,
    prune: bool,
    write: bool,
    scale: u32,
}

fn parse_plan_args(args: &[String]) -> Result<PlanOpts, CliError> {
    let mut opts = PlanOpts {
        json: false,
        prune: false,
        write: false,
        scale: 1,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--prune" => opts.prune = true,
            "--write" => opts.write = true,
            "--scale" => {
                let value = iter.next().ok_or(CliError::missing_value("--scale"))?;
                opts.scale = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--scale `{value}`"), e))?;
            }
            flag if flag.starts_with("--") => return Err(CliError::unknown_flag(flag)),
            other => {
                return Err(CliError::usage(format!(
                    "unexpected plan argument `{other}`"
                )))
            }
        }
    }
    Ok(opts)
}

fn plan(opts: &PlanOpts) -> ExitCode {
    let configs = opd_experiments::grid::default_plan_grid();
    let analysis = PlanAnalysis::of(
        &configs,
        &opd_experiments::analysis::plan_workloads(opts.scale),
    );

    // The cost model's scan prediction must agree with the engine's
    // actual plan — a mismatch is a bug in one of them.
    let actual_scans = SweepEngine::new(&configs).total_scans();
    if analysis.predicted_scans_full() != actual_scans {
        eprintln!(
            "error: predicted {} scan(s) but the sweep engine plans {actual_scans}",
            analysis.predicted_scans_full()
        );
        return ExitCode::FAILURE;
    }

    let reporter = Reporter::new(opts.json);
    if opts.write {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_plan.json");
        if let Err(e) = std::fs::write(path, opd_experiments::analysis::plan_json(opts.scale)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        // Through the reporter: with --json this lands on stderr, so
        // `--json --write` stdout stays one parseable document.
        reporter.human(format_args!("wrote {path}"));
    }

    if opts.json {
        reporter.payload(opd_experiments::analysis::plan_json(opts.scale).trim_end());
    } else {
        reporter.human(render_plan(&analysis, actual_scans, opts.prune).trim_end());
    }
    if analysis.error_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders the plan analysis for humans: class summary, diagnostics,
/// scan counts, and (with `prune`) the pruned grid plus per-axis
/// evidence when the grid is proven irredundant.
fn render_plan(analysis: &PlanAnalysis, actual_scans: usize, prune: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "plan: {} config(s), {} equivalence class(es) ({} nontrivial)",
        analysis.configs().len(),
        analysis.classes().len(),
        analysis.nontrivial_classes(),
    );
    let _ = writeln!(
        out,
        "scans: predicted full={} pruned={}, engine={actual_scans} (exact match)",
        analysis.predicted_scans_full(),
        analysis.predicted_scans_pruned(),
    );
    for class in analysis.classes().iter().filter(|c| c.is_nontrivial()) {
        let _ = writeln!(
            out,
            "class: representative #{} covers {:?}\n  {}",
            class.representative(),
            class.members(),
            class.proof(),
        );
    }
    for d in analysis.diagnostics() {
        let _ = writeln!(out, "{}", d.render());
    }
    if prune {
        let reps = analysis.representatives();
        let _ = writeln!(out, "pruned grid ({} config(s)):", reps.len());
        for &r in &reps {
            let _ = writeln!(out, "  #{r}: {}", analysis.configs()[r]);
        }
        if analysis.nontrivial_classes() == 0 {
            let _ = writeln!(
                out,
                "the grid is irredundant under the prover's rules; probing axes for \
                 dynamic distinctness witnesses..."
            );
            let witnesses = analysis.axis_witnesses();
            for (axis, hit, total) in witnesses.per_axis() {
                let _ = writeln!(
                    out,
                    "  axis {axis}: {hit}/{total} single-axis pair(s) separated by a probe trace"
                );
            }
            for pair in witnesses.pairs.iter().filter(|p| p.witness.is_some()) {
                let _ = writeln!(
                    out,
                    "  witness: #{} vs #{} ({}) diverge on probe `{}`",
                    pair.a,
                    pair.b,
                    pair.axis,
                    pair.witness.as_deref().unwrap_or(""),
                );
            }
            let _ = writeln!(
                out,
                "  {} pair(s) witnessed, {} undecided",
                witnesses.witnessed(),
                witnesses.undecided(),
            );
        }
    }
    out
}

struct FaultsOpts {
    smoke: bool,
    write: bool,
    scale: u32,
}

fn parse_faults_args(args: &[String]) -> Result<FaultsOpts, CliError> {
    let mut opts = FaultsOpts {
        smoke: false,
        write: false,
        scale: 1,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--write" => opts.write = true,
            "--scale" => {
                let value = iter.next().ok_or(CliError::missing_value("--scale"))?;
                opts.scale = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--scale `{value}`"), e))?;
            }
            flag if flag.starts_with("--") => return Err(CliError::unknown_flag(flag)),
            other => {
                return Err(CliError::usage(format!(
                    "unexpected faults argument `{other}`"
                )))
            }
        }
    }
    Ok(opts)
}

fn faults(opts: &FaultsOpts) -> ExitCode {
    let reporter = Reporter::new(false);
    if opts.smoke {
        // The smoke pass asserts internally that injector ledgers and
        // decoder corruption reports agree exactly.
        reporter.human(opd_experiments::faults::smoke(opts.scale));
        reporter.human("faults --smoke: ok");
        return ExitCode::SUCCESS;
    }
    let json = opd_experiments::faults::faults_json(opts.scale);
    if opts.write {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_faults.json");
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        reporter.human(format_args!("wrote {path}"));
    } else {
        reporter.payload(json.trim_end());
    }
    ExitCode::SUCCESS
}

struct SweepOpts {
    scale: u32,
    fuel: u64,
    threads: usize,
    checkpoint: Option<String>,
    resume: bool,
    stats: bool,
    json: bool,
    write: bool,
}

fn parse_sweep_args(args: &[String]) -> Result<SweepOpts, CliError> {
    let mut opts = SweepOpts {
        scale: 1,
        fuel: opd_experiments::faults::STUDY_FUEL,
        threads: 1,
        checkpoint: None,
        resume: false,
        stats: false,
        json: false,
        write: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--resume" => opts.resume = true,
            "--stats" => opts.stats = true,
            "--json" => opts.json = true,
            "--write" => opts.write = true,
            "--scale" => {
                let value = iter.next().ok_or(CliError::missing_value("--scale"))?;
                opts.scale = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--scale `{value}`"), e))?;
            }
            "--fuel" => {
                let value = iter.next().ok_or(CliError::missing_value("--fuel"))?;
                opts.fuel = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--fuel `{value}`"), e))?;
            }
            "--threads" => {
                let value = iter.next().ok_or(CliError::missing_value("--threads"))?;
                opts.threads = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--threads `{value}`"), e))?;
            }
            "--checkpoint" => {
                let value = iter.next().ok_or(CliError::missing_value("--checkpoint"))?;
                opts.checkpoint = Some(value.clone());
            }
            flag if flag.starts_with("--") => return Err(CliError::unknown_flag(flag)),
            other => {
                return Err(CliError::usage(format!(
                    "unexpected sweep argument `{other}`"
                )))
            }
        }
    }
    if opts.resume && opts.checkpoint.is_none() {
        return Err(CliError::conflict("--resume requires --checkpoint PATH"));
    }
    if opts.stats && opts.checkpoint.is_some() {
        return Err(CliError::conflict(
            "--stats cannot be combined with --checkpoint",
        ));
    }
    if (opts.json || opts.write) && !opts.stats {
        return Err(CliError::conflict("sweep --json/--write require --stats"));
    }
    Ok(opts)
}

fn sweep(opts: &SweepOpts) -> ExitCode {
    use opd_experiments::faults::STUDY_MPL;

    let reporter = Reporter::new(opts.json);
    let configs = opd_experiments::grid::default_plan_grid();
    let prepared =
        opd_experiments::runner::prepare_all(&Workload::ALL, opts.scale, &[STUDY_MPL], opts.fuel);

    let mut profile = None;
    let runs = if let Some(path) = &opts.checkpoint {
        let fingerprint = opd_experiments::checkpoint::run_fingerprint(
            &configs,
            &Workload::ALL,
            opts.scale,
            opts.fuel,
        );
        // The heartbeat goes to stderr unconditionally: it is
        // progress reporting for long runs, not output.
        let heartbeat =
            |done: usize, total: usize| eprintln!("sweep: checkpoint bucket {done}/{total}");
        match opd_experiments::checkpoint::sweep_many_checkpointed_with_progress(
            &prepared,
            &configs,
            opts.threads,
            std::path::Path::new(path),
            fingerprint,
            opts.resume,
            &heartbeat,
        ) {
            Ok((runs, summary)) => {
                reporter.human(format_args!(
                    "checkpoint: {} bucket(s) restored, {} computed{}",
                    summary.restored_buckets,
                    summary.computed_buckets,
                    if summary.damaged_tail_bytes > 0 {
                        format!(
                            " ({} damaged tail byte(s) discarded)",
                            summary.damaged_tail_bytes
                        )
                    } else {
                        String::new()
                    },
                ));
                runs
            }
            Err(e) => {
                eprintln!("error: checkpoint {path}: {e}");
                return ExitCode::from(2);
            }
        }
    } else if opts.stats {
        let (runs, p) =
            opd_experiments::obs::sweep_many_profiled(&prepared, &configs, opts.threads);
        profile = Some(p);
        runs
    } else {
        opd_experiments::runner::sweep_many(&prepared, &configs, opts.threads)
    };

    for (p, config_runs) in prepared.iter().zip(&runs) {
        let oracle = p.oracle(STUDY_MPL);
        let mean = if config_runs.is_empty() {
            0.0
        } else {
            config_runs
                .iter()
                .map(|r| r.score(oracle).combined())
                .sum::<f64>()
                / config_runs.len() as f64
        };
        reporter.human(format_args!(
            "{:<10} {:>9} element(s)  mean combined accuracy {:.4}",
            p.workload().name(),
            p.total_elements(),
            mean,
        ));
    }

    if let Some(profile) = profile {
        // Measure the zero-overhead-when-off claim on the densest
        // trace at hand (lexgen by convention, first otherwise).
        let bench = prepared
            .iter()
            .find(|p| p.workload().name() == "lexgen")
            .unwrap_or(&prepared[0]);
        let overhead = opd_experiments::obs::null_observer_overhead(
            bench,
            &configs,
            opd_experiments::obs::OBS_SAMPLES,
        );
        reporter.human(profile.table().to_string().trim_end());
        reporter.human(format_args!(
            "kernel {}; lpt imbalance {:.3} over {} thread(s); null-observer overhead {:.2}% \
             ({} samples, {:.2} ms plain vs {:.2} ms instrumented)",
            profile.kernel.as_str(),
            profile.imbalance(),
            profile.threads,
            (overhead.ratio() - 1.0) * 100.0,
            overhead.samples,
            overhead.plain_nanos as f64 / 1e6,
            overhead.instrumented_nanos as f64 / 1e6,
        ));
        let json = opd_experiments::obs::obs_json(
            opts.scale,
            opts.fuel,
            configs.len(),
            &overhead,
            &profile,
        );
        if opts.write {
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_obs.json");
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            reporter.human(format_args!("wrote {path}"));
        }
        if opts.json {
            reporter.payload(json.trim_end());
        }
    }
    ExitCode::SUCCESS
}

struct ServeOpts {
    smoke: bool,
    clients: u32,
    mode: opd_serve::BackpressureMode,
    capacity: usize,
    threads: usize,
    scale: u32,
    checkpoint: Option<String>,
    resume: bool,
    postmortem_dir: Option<String>,
    spans_out: Option<String>,
    json: bool,
}

fn parse_serve_args(args: &[String]) -> Result<ServeOpts, CliError> {
    let defaults = opd_experiments::serve::soak_config();
    let mut opts = ServeOpts {
        smoke: false,
        clients: opd_experiments::serve::SOAK_CLIENTS,
        mode: defaults.ingest.mode,
        capacity: defaults.ingest.queue_capacity,
        threads: 0,
        scale: 1,
        checkpoint: None,
        resume: false,
        postmortem_dir: None,
        spans_out: None,
        json: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_for = |name: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| CliError::missing_value(name))
        };
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--resume" => opts.resume = true,
            "--json" => opts.json = true,
            "--clients" => {
                let value = value_for("--clients")?;
                opts.clients = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--clients `{value}`"), e))?;
            }
            "--mode" => {
                let value = value_for("--mode")?;
                opts.mode = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--mode `{value}`"), e))?;
            }
            "--capacity" => {
                let value = value_for("--capacity")?;
                opts.capacity = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--capacity `{value}`"), e))?;
            }
            "--threads" => {
                let value = value_for("--threads")?;
                opts.threads = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--threads `{value}`"), e))?;
            }
            "--scale" => {
                let value = value_for("--scale")?;
                opts.scale = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--scale `{value}`"), e))?;
            }
            "--checkpoint" => opts.checkpoint = Some(value_for("--checkpoint")?.to_owned()),
            "--postmortem-dir" => {
                opts.postmortem_dir = Some(value_for("--postmortem-dir")?.to_owned());
            }
            "--spans-out" => opts.spans_out = Some(value_for("--spans-out")?.to_owned()),
            flag if flag.starts_with("--") => return Err(CliError::unknown_flag(flag)),
            other => {
                return Err(CliError::usage(format!(
                    "unexpected serve argument `{other}`"
                )))
            }
        }
    }
    if opts.resume && opts.checkpoint.is_none() {
        return Err(CliError::conflict("--resume requires --checkpoint PATH"));
    }
    if opts.smoke && (opts.checkpoint.is_some() || opts.json) {
        return Err(CliError::conflict(
            "--smoke cannot be combined with --checkpoint or --json",
        ));
    }
    // The traced engine refuses checkpoints (restored shards have no
    // span history), so the tracing flags conflict with --checkpoint.
    if (opts.postmortem_dir.is_some() || opts.spans_out.is_some()) && opts.checkpoint.is_some() {
        return Err(CliError::conflict(
            "--postmortem-dir/--spans-out cannot be combined with --checkpoint",
        ));
    }
    Ok(opts)
}

/// Writes a traced serve run's `--postmortem-dir` and `--spans-out`
/// outputs; confirmations go through the reporter so `--json` stdout
/// stays one document.
fn write_trace_outputs(
    trace: &opd_serve::ServiceTrace,
    postmortem_dir: Option<&str>,
    spans_out: Option<&str>,
    reporter: &Reporter,
) -> Result<(), ExitCode> {
    if let Some(dir) = postmortem_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {dir}: {e}");
            return Err(ExitCode::from(2));
        }
        for pm in &trace.postmortems {
            let path = format!("{dir}/{}.pm", pm.file_stem());
            if let Err(e) = std::fs::write(&path, pm.render()) {
                eprintln!("error: cannot write {path}: {e}");
                return Err(ExitCode::from(2));
            }
        }
        reporter.human(format_args!(
            "wrote {} post-mortem(s) to {dir}",
            trace.postmortems.len()
        ));
    }
    if let Some(path) = spans_out {
        if let Err(e) = std::fs::write(path, trace.span_log()) {
            eprintln!("error: cannot write {path}: {e}");
            return Err(ExitCode::from(2));
        }
        reporter.human(format_args!(
            "wrote {} span(s) to {path}",
            trace.spans.len()
        ));
    }
    Ok(())
}

fn serve(opts: &ServeOpts) -> ExitCode {
    use opd_experiments::serve as study;

    let reporter = Reporter::new(opts.json);
    let traced = opts.postmortem_dir.is_some() || opts.spans_out.is_some();
    if opts.smoke {
        // The smoke pass asserts the robustness invariants internally
        // (restarts, timeouts, quarantine, shedding, bit-identity).
        if traced {
            let (summary, trace) = study::smoke_with_trace(opts.scale);
            if let Err(code) = write_trace_outputs(
                &trace,
                opts.postmortem_dir.as_deref(),
                opts.spans_out.as_deref(),
                &reporter,
            ) {
                return code;
            }
            reporter.human(summary);
        } else {
            reporter.human(study::smoke(opts.scale));
        }
        reporter.human("serve --smoke: ok");
        return ExitCode::SUCCESS;
    }

    let source = study::soak_source(opts.scale, opts.clients);
    let mut config = study::soak_config();
    config.ingest.mode = opts.mode;
    config.ingest.queue_capacity = opts.capacity;
    let options = opd_serve::ServiceOptions {
        threads: opts.threads,
        checkpoint: opts.checkpoint.as_ref().map(std::path::PathBuf::from),
        resume: opts.resume,
    };
    let report = if traced {
        match opd_serve::run_service_traced::<opd_obs::SpanLog>(
            &config,
            &source,
            &options,
            &opd_serve::NullSubscriber,
            None,
            &opd_serve::TraceConfig::default(),
        ) {
            Ok((report, trace)) => {
                if let Err(code) = write_trace_outputs(
                    &trace,
                    opts.postmortem_dir.as_deref(),
                    opts.spans_out.as_deref(),
                    &reporter,
                ) {
                    return code;
                }
                report
            }
            Err(e) => {
                eprintln!("error: serve: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        match opd_serve::run_service(&config, &source, &options) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: serve: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let shed = report.shed();
    if opts.json {
        let mut doc = String::new();
        let _ = writeln!(doc, "{{");
        let _ = writeln!(
            doc,
            "  \"clients\": {}, \"mode\": \"{}\", \"capacity\": {},",
            opts.clients, opts.mode, opts.capacity,
        );
        let _ = writeln!(
            doc,
            "  \"completed\": {}, \"quarantined\": {}, \"rejected\": {},",
            report.completed(),
            report.quarantined(),
            report.rejected(),
        );
        let _ = writeln!(
            doc,
            "  \"restarts\": {}, \"timeouts\": {}, \"crashes\": {},",
            report.restarts(),
            report.timeouts(),
            report.crashes(),
        );
        let _ = writeln!(
            doc,
            "  \"frames_processed\": {}, \"shed_oldest\": {}, \"rejected_frames\": {}, \
             \"blocked_ticks\": {},",
            report.frames_processed(),
            shed.shed_oldest_frames,
            shed.rejected_frames,
            shed.blocked_ticks,
        );
        let _ = writeln!(
            doc,
            "  \"phases\": {}, \"verify_failures\": {}, \"restored_vshards\": {},",
            report.phases(),
            report.verify_failures(),
            report.restored_vshards,
        );
        let _ = writeln!(doc, "  \"digest\": \"{:#018x}\"", report.aggregate_digest());
        let _ = write!(doc, "}}");
        reporter.payload(doc);
    } else {
        reporter.human(format_args!(
            "serve: {} session(s) over {} vshard(s) ({} restored): {} completed, \
             {} quarantined, {} rejected",
            report.sessions.len(),
            report.vshards,
            report.restored_vshards,
            report.completed(),
            report.quarantined(),
            report.rejected(),
        ));
        reporter.human(format_args!(
            "serve: {} restart(s), {} timeout(s), {} crash(es); shed {}; \
             {} corrupt frame(s), {} record(s) lost",
            report.restarts(),
            report.timeouts(),
            report.crashes(),
            shed,
            report.corrupt_frames(),
            report.corrupt_records_lost(),
        ));
        reporter.human(format_args!(
            "serve: {} phase(s), {} verify failure(s), digest {:#018x}",
            report.phases(),
            report.verify_failures(),
            report.aggregate_digest(),
        ));
    }
    if report.verify_failures() > 0 || !report.conservation_holds() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

struct LoadgenOpts {
    scale: u32,
    json: bool,
    write: bool,
}

fn parse_loadgen_args(args: &[String]) -> Result<LoadgenOpts, CliError> {
    let mut opts = LoadgenOpts {
        scale: 1,
        json: false,
        write: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--write" => opts.write = true,
            "--scale" => {
                let value = iter.next().ok_or(CliError::missing_value("--scale"))?;
                opts.scale = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--scale `{value}`"), e))?;
            }
            flag if flag.starts_with("--") => return Err(CliError::unknown_flag(flag)),
            other => {
                return Err(CliError::usage(format!(
                    "unexpected loadgen argument `{other}`"
                )))
            }
        }
    }
    Ok(opts)
}

fn loadgen(opts: &LoadgenOpts) -> ExitCode {
    let reporter = Reporter::new(opts.json);
    let json = opd_experiments::serve::serve_json(opts.scale);
    if opts.write {
        // The committed artifact is always the pinned scale-1 form the
        // freshness test regenerates, whatever this invocation prints.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_serve.json");
        let pinned = if opts.scale == 1 {
            json.clone()
        } else {
            opd_experiments::serve::serve_json(1)
        };
        if let Err(e) = std::fs::write(path, pinned) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        reporter.human(format_args!("wrote {path}"));
    }
    // The study is the payload either way; a human `--write` run gets
    // only the "wrote …" confirmation above.
    if opts.json || !opts.write {
        reporter.payload(json.trim_end());
    }
    ExitCode::SUCCESS
}

struct TraceOpts {
    target: String,
    config: String,
    kinds: Vec<String>,
    session: Option<u32>,
    json: bool,
    limit: Option<usize>,
    scale: u32,
    fuel: u64,
}

/// Detector-event kind tags accepted by `--kind` (see
/// [`opd_obs::DetectorEvent::kind`]); span kinds are accepted too and
/// validated through [`opd_obs::SpanKind::from_name`].
const EVENT_KINDS: [&str; 7] = [
    "step",
    "similarity",
    "decision",
    "phase_start",
    "phase_end",
    "window_resize",
    "window_flush",
];

fn parse_trace_args(args: &[String]) -> Result<TraceOpts, CliError> {
    let mut opts = TraceOpts {
        target: String::new(),
        config: String::new(),
        kinds: Vec::new(),
        session: None,
        json: false,
        limit: None,
        scale: 1,
        fuel: opd_experiments::faults::STUDY_FUEL,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_for = |name: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| CliError::missing_value(name))
        };
        match arg.as_str() {
            "--json" => opts.json = true,
            "--config" => opts.config = value_for("--config")?.to_owned(),
            "--kind" => {
                let value = value_for("--kind")?.to_owned();
                opts.kinds.extend(
                    value
                        .split(',')
                        .map(str::trim)
                        .filter(|k| !k.is_empty())
                        .map(str::to_owned),
                );
            }
            "--session" => {
                let value = value_for("--session")?;
                opts.session = Some(
                    value
                        .parse()
                        .map_err(|e| CliError::invalid(format!("--session `{value}`"), e))?,
                );
            }
            "--limit" => {
                let value = value_for("--limit")?;
                opts.limit = Some(
                    value
                        .parse()
                        .map_err(|e| CliError::invalid(format!("--limit `{value}`"), e))?,
                );
            }
            "--scale" => {
                let value = value_for("--scale")?;
                opts.scale = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--scale `{value}`"), e))?;
            }
            "--fuel" => {
                let value = value_for("--fuel")?;
                opts.fuel = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--fuel `{value}`"), e))?;
            }
            flag if flag.starts_with("--") => return Err(CliError::unknown_flag(flag)),
            target if opts.target.is_empty() => opts.target = target.to_owned(),
            extra => {
                return Err(CliError::usage(format!(
                    "unexpected trace argument `{extra}`"
                )))
            }
        }
    }
    if opts.target.is_empty() {
        return Err(CliError::usage("trace requires a TARGET"));
    }
    for k in &opts.kinds {
        if !EVENT_KINDS.contains(&k.as_str()) && opd_obs::SpanKind::from_name(k).is_none() {
            return Err(CliError::usage(format!(
                "unknown kind `{k}`; valid kinds are detector events ({}) and spans ({})",
                EVENT_KINDS.join(", "),
                opd_obs::SpanKind::ALL
                    .map(opd_obs::SpanKind::name)
                    .join(", "),
            )));
        }
    }
    Ok(opts)
}

fn trace(opts: &TraceOpts) -> ExitCode {
    use opd_core::{InternedTrace, NullSink, PhaseDetector};
    use opd_obs::{DetectorEvent, FnObserver};

    // A file target that opens with the span-log header is a
    // `--spans-out` document: replay it instead of running a detector.
    if std::path::Path::new(&opts.target).is_file() {
        if let Ok(text) = std::fs::read_to_string(&opts.target) {
            if text.starts_with(opd_obs::SPAN_LOG_HEADER) {
                return trace_spans(opts, &text);
            }
        }
    }
    if opts.session.is_some() {
        return fail(CliError::conflict(
            "--session applies only to span-log targets (files starting with `# opd-spans-v1`)",
        ));
    }

    let config = match opd_experiments::cli::parse_config_spec(&opts.config) {
        Ok(config) => config,
        Err(e) => return fail(e),
    };
    let (name, program) = match resolve(&opts.target, opts.scale) {
        Ok(resolved) => resolved,
        Err(message) => return fail(&message),
    };
    let seed = Workload::ALL
        .iter()
        .find(|w| w.name() == opts.target)
        .map_or(0, |w| w.default_seed());
    let mut execution = opd_trace::ExecutionTrace::new();
    if let Err(e) = opd_microvm::Interpreter::new(&program, seed)
        .with_fuel(opts.fuel)
        .run(&mut execution)
    {
        eprintln!("error: `{name}` failed to execute: {e}");
        return ExitCode::FAILURE;
    }
    let interned = InternedTrace::from_elements(execution.branches().iter().copied());

    let reporter = Reporter::new(opts.json);
    let limit = opts.limit.unwrap_or(usize::MAX);
    let mut emitted = 0usize;
    let mut total = 0usize;
    let mut json_events: Vec<String> = Vec::new();
    let mut detector = PhaseDetector::new(config);
    {
        let mut observer = FnObserver(|event: &DetectorEvent| {
            if !opts.kinds.is_empty() && !opts.kinds.iter().any(|k| k.as_str() == event.kind()) {
                return;
            }
            total += 1;
            if emitted < limit {
                emitted += 1;
                if opts.json {
                    json_events.push(format!("    {}", event.to_json()));
                } else {
                    reporter.human(event);
                }
            }
        });
        detector.run_interned_with_observer(&interned, &mut NullSink, &mut observer);
    }
    let phases = detector.detected_phases().len();

    if opts.json {
        let mut doc = String::new();
        let _ = writeln!(doc, "{{");
        let _ = writeln!(doc, "  \"target\": \"{name}\",");
        let _ = writeln!(
            doc,
            "  \"config\": {{\"cw\": {}, \"tw\": {}, \"skip\": {}}},",
            config.current_window(),
            config.trailing_window(),
            config.skip_factor(),
        );
        let _ = writeln!(doc, "  \"events\": [");
        let _ = writeln!(doc, "{}", json_events.join(",\n"));
        let _ = writeln!(doc, "  ],");
        let _ = writeln!(
            doc,
            "  \"summary\": {{\"events\": {total}, \"shown\": {emitted}, \
             \"elements\": {}, \"phases\": {phases}}}",
            interned.len(),
        );
        let _ = write!(doc, "}}");
        reporter.payload(doc);
    } else {
        if total > emitted {
            reporter.human(format_args!("... {} more event(s)", total - emitted));
        }
        reporter.human(format_args!(
            "trace: {name}: {} element(s), {total} event(s), {phases} phase(s)",
            interned.len(),
        ));
    }
    ExitCode::SUCCESS
}

/// The span-log replay arm of `opd trace`: filter a `--spans-out`
/// document by kind and session, emit up to `--limit` spans.
fn trace_spans(opts: &TraceOpts, text: &str) -> ExitCode {
    let spans = match opd_obs::parse_span_log(text) {
        Ok(spans) => spans,
        Err(e) => return fail(format_args!("cannot parse `{}`: {e}", opts.target)),
    };
    let matched: Vec<&opd_obs::Span> = spans
        .iter()
        .filter(|s| opts.kinds.is_empty() || opts.kinds.iter().any(|k| k.as_str() == s.kind.name()))
        .filter(|s| opts.session.map_or(true, |client| s.client == client))
        .collect();
    let shown = matched.len().min(opts.limit.unwrap_or(usize::MAX));

    let reporter = Reporter::new(opts.json);
    if opts.json {
        let lines: Vec<String> = matched[..shown]
            .iter()
            .map(|s| format!("    {}", s.to_json()))
            .collect();
        let mut doc = String::new();
        let _ = writeln!(doc, "{{");
        let _ = writeln!(doc, "  \"target\": \"{}\",", opts.target);
        let _ = writeln!(doc, "  \"spans\": [");
        let _ = writeln!(doc, "{}", lines.join(",\n"));
        let _ = writeln!(doc, "  ],");
        let _ = writeln!(
            doc,
            "  \"summary\": {{\"spans\": {}, \"matched\": {}, \"shown\": {shown}}}",
            spans.len(),
            matched.len(),
        );
        let _ = write!(doc, "}}");
        reporter.payload(doc);
    } else {
        for s in &matched[..shown] {
            reporter.human(s);
        }
        if matched.len() > shown {
            reporter.human(format_args!("... {} more span(s)", matched.len() - shown));
        }
        reporter.human(format_args!(
            "trace: {}: {} span(s), {} matched, {shown} shown",
            opts.target,
            spans.len(),
            matched.len(),
        ));
    }
    ExitCode::SUCCESS
}

struct TopOpts {
    once: bool,
    json: bool,
    write: bool,
    clients: u32,
    scale: u32,
    threads: usize,
    slo_p99: Option<f64>,
    slo_shed: Option<f64>,
    slo_quarantine: Option<f64>,
    slo_completion: Option<f64>,
}

fn parse_top_args(args: &[String]) -> Result<TopOpts, CliError> {
    let mut opts = TopOpts {
        once: false,
        json: false,
        write: false,
        clients: opd_experiments::dash::DASH_CLIENTS,
        scale: 1,
        threads: 0,
        slo_p99: None,
        slo_shed: None,
        slo_quarantine: None,
        slo_completion: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_for = |name: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| CliError::missing_value(name))
        };
        let parse_u32 = |name: &str, value: &str| {
            value
                .parse::<u32>()
                .map_err(|e| CliError::invalid(format!("{name} `{value}`"), e))
        };
        let parse_f64 = |name: &str, value: &str| {
            value
                .parse::<f64>()
                .map_err(|e| CliError::invalid(format!("{name} `{value}`"), e))
        };
        match arg.as_str() {
            "--once" => opts.once = true,
            "--json" => opts.json = true,
            "--write" => opts.write = true,
            "--clients" => opts.clients = parse_u32("--clients", value_for("--clients")?)?,
            "--scale" => opts.scale = parse_u32("--scale", value_for("--scale")?)?,
            "--threads" => {
                let value = value_for("--threads")?;
                opts.threads = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--threads `{value}`"), e))?;
            }
            "--slo-p99" => opts.slo_p99 = Some(parse_f64("--slo-p99", value_for("--slo-p99")?)?),
            "--slo-shed" => {
                opts.slo_shed = Some(parse_f64("--slo-shed", value_for("--slo-shed")?)?);
            }
            "--slo-quarantine" => {
                opts.slo_quarantine = Some(parse_f64(
                    "--slo-quarantine",
                    value_for("--slo-quarantine")?,
                )?);
            }
            "--slo-completion" => {
                opts.slo_completion = Some(parse_f64(
                    "--slo-completion",
                    value_for("--slo-completion")?,
                )?);
            }
            flag if flag.starts_with("--") => return Err(CliError::unknown_flag(flag)),
            other => {
                return Err(CliError::usage(format!(
                    "unexpected top argument `{other}`"
                )))
            }
        }
    }
    Ok(opts)
}

fn top(opts: &TopOpts) -> ExitCode {
    use opd_experiments::dash;
    use std::sync::atomic::{AtomicBool, Ordering};

    let reporter = Reporter::new(opts.json);
    let mut registry = opd_obs::MetricsRegistry::for_host();
    let metrics = opd_serve::ServiceMetrics::register(&mut registry);
    let registry = &registry;

    // Live mode: while the soak runs on a worker thread, repaint a
    // one-line service view on stderr from the shared registry.
    // `--once` (and `--json`, whose stderr is already the human
    // channel) skip the refresh loop.
    let live = !opts.once && !opts.json;
    let done = AtomicBool::new(false);
    let study = std::thread::scope(|s| {
        let worker = s.spawn(|| {
            let study = dash::dash_study_observed(
                opts.scale,
                opts.clients,
                opts.threads,
                registry,
                &metrics,
            );
            done.store(true, Ordering::Release);
            study
        });
        while live && !done.load(Ordering::Acquire) {
            std::thread::sleep(std::time::Duration::from_millis(60));
            let snap = registry.snapshot();
            eprint!(
                "\rtop: {} frame(s), {} restart(s), {} shed, {} completed, {} quarantined ",
                snap.counter("serve.frames_processed").unwrap_or(0),
                snap.counter("serve.restarts").unwrap_or(0),
                snap.counter("serve.shed_frames").unwrap_or(0),
                snap.counter("serve.sessions_completed").unwrap_or(0),
                snap.counter("serve.sessions_quarantined").unwrap_or(0),
            );
        }
        if live {
            eprintln!();
        }
        worker.join().expect("dashboard soak thread panicked")
    });
    let study = match study {
        Ok(study) => study,
        Err(e) => {
            eprintln!("error: top: {e}");
            return ExitCode::from(2);
        }
    };

    let mut policy = dash::SloPolicy::default();
    if let Some(v) = opts.slo_p99 {
        policy.max_p99_latency_ticks = v;
    }
    if let Some(v) = opts.slo_shed {
        policy.max_shed_fraction = v;
    }
    if let Some(v) = opts.slo_quarantine {
        policy.max_quarantine_fraction = v;
    }
    if let Some(v) = opts.slo_completion {
        policy.min_completion_fraction = v;
    }

    if opts.write {
        // The committed artifact is always the pinned (scale 1,
        // committed client count) form the freshness test
        // regenerates, whatever this invocation printed.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_dash.json");
        let overhead = dash::null_span_overhead(1, dash::DASH_SAMPLES);
        let rendered = if opts.scale == 1 && opts.clients == dash::DASH_CLIENTS {
            dash::render_dash_json(
                &study,
                overhead.samples,
                overhead.plain_nanos,
                overhead.instrumented_nanos,
            )
        } else {
            match dash::dash_study(1, opts.threads) {
                Ok(pinned) => dash::render_dash_json(
                    &pinned,
                    overhead.samples,
                    overhead.plain_nanos,
                    overhead.instrumented_nanos,
                ),
                Err(e) => {
                    eprintln!("error: top: {e}");
                    return ExitCode::from(2);
                }
            }
        };
        if let Err(e) = std::fs::write(path, rendered) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        reporter.human(format_args!("wrote {path}"));
    }

    let burns = policy.check(&study);
    if opts.json {
        reporter.payload(dash::top_json(&study, &policy).trim_end());
    } else {
        reporter.human(dash::top_view(&study, &policy).trim_end());
    }
    if burns.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

struct FlightOpts {
    file: String,
    json: bool,
}

fn parse_flight_args(args: &[String]) -> Result<FlightOpts, CliError> {
    let mut opts = FlightOpts {
        file: String::new(),
        json: false,
    };
    for arg in args {
        match arg.as_str() {
            "--json" => opts.json = true,
            flag if flag.starts_with("--") => return Err(CliError::unknown_flag(flag)),
            file if opts.file.is_empty() => opts.file = file.to_owned(),
            extra => {
                return Err(CliError::usage(format!(
                    "unexpected flight argument `{extra}`"
                )))
            }
        }
    }
    if opts.file.is_empty() {
        return Err(CliError::usage("flight requires a post-mortem FILE"));
    }
    Ok(opts)
}

fn flight(opts: &FlightOpts) -> ExitCode {
    let text = match std::fs::read_to_string(&opts.file) {
        Ok(text) => text,
        Err(e) => return fail(format_args!("cannot read `{}`: {e}", opts.file)),
    };
    let pm = match opd_serve::Postmortem::parse(&text) {
        Ok(pm) => pm,
        Err(e) => return fail(format_args!("cannot parse `{}`: {e}", opts.file)),
    };
    let reporter = Reporter::new(opts.json);
    if opts.json {
        reporter.payload(pm.to_json().trim_end());
    } else {
        reporter.human(render_flight(&pm).trim_end());
    }
    ExitCode::SUCCESS
}

/// Renders one post-mortem for humans: the kill line, the session's
/// counters at death, and the flight recorder's retained spans.
fn render_flight(pm: &opd_serve::Postmortem) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "post-mortem: client {} (vshard {}) — {} at tick {} (attempt {})",
        pm.client, pm.vshard, pm.reason, pm.tick, pm.attempt,
    );
    let _ = writeln!(
        out,
        "  frames:      {}/{} processed, {} element(s) accepted, queue depth {}",
        pm.frames_processed, pm.frames_total, pm.elements_accepted, pm.queue_depth,
    );
    let _ = writeln!(
        out,
        "  supervision: {} crash(es), {} timeout(s), {} restart(s); {} corrupt, {} poison frame(s)",
        pm.crashes, pm.timeouts, pm.restarts, pm.corrupt_frames, pm.poison_frames,
    );
    let _ = writeln!(
        out,
        "  flight ring: {} span(s) ever recorded, last {} retained:",
        pm.spans_recorded,
        pm.recent.len(),
    );
    for s in &pm.recent {
        let _ = writeln!(
            out,
            "    [{:>6}..{:>6}] {:<12} id={} parent={} detail={}",
            s.start,
            s.end,
            s.kind.name(),
            s.id,
            s.parent,
            s.detail,
        );
    }
    out
}

struct MetricsDumpOpts {
    clients: u32,
    scale: u32,
    json: bool,
}

fn parse_metrics_dump_args(args: &[String]) -> Result<MetricsDumpOpts, CliError> {
    let mut opts = MetricsDumpOpts {
        clients: 128,
        scale: 1,
        json: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_for = |name: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| CliError::missing_value(name))
        };
        match arg.as_str() {
            "--json" => opts.json = true,
            "--clients" => {
                let value = value_for("--clients")?;
                opts.clients = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--clients `{value}`"), e))?;
            }
            "--scale" => {
                let value = value_for("--scale")?;
                opts.scale = value
                    .parse()
                    .map_err(|e| CliError::invalid(format!("--scale `{value}`"), e))?;
            }
            flag if flag.starts_with("--") => return Err(CliError::unknown_flag(flag)),
            other => {
                return Err(CliError::usage(format!(
                    "unexpected metrics-dump argument `{other}`"
                )))
            }
        }
    }
    Ok(opts)
}

fn metrics_dump(opts: &MetricsDumpOpts) -> ExitCode {
    let snapshot = match opd_experiments::dash::metrics_exposition(opts.scale, opts.clients) {
        Ok(snapshot) => snapshot,
        Err(e) => {
            eprintln!("error: metrics-dump: {e}");
            return ExitCode::from(2);
        }
    };
    let reporter = Reporter::new(opts.json);
    if opts.json {
        let counters: Vec<String> = snapshot
            .counters
            .iter()
            .map(|(name, value)| format!("  \"{name}\": {value}"))
            .collect();
        let histograms: Vec<String> = snapshot
            .histograms
            .iter()
            .map(|(name, h)| {
                format!(
                    "  \"{name}\": {{\"count\": {}, \"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}}}",
                    h.count(),
                    h.percentile(0.50).unwrap_or(0.0),
                    h.percentile(0.90).unwrap_or(0.0),
                    h.percentile(0.99).unwrap_or(0.0),
                )
            })
            .collect();
        let mut doc = String::new();
        let _ = writeln!(doc, "{{");
        let _ = writeln!(doc, " \"schema\": \"opd-metrics-v1\",");
        let _ = writeln!(doc, " \"counters\": {{");
        let _ = writeln!(doc, "{}", counters.join(",\n"));
        let _ = writeln!(doc, " }},");
        let _ = writeln!(doc, " \"histograms\": {{");
        let _ = writeln!(doc, "{}", histograms.join(",\n"));
        let _ = writeln!(doc, " }}");
        let _ = write!(doc, "}}");
        reporter.payload(doc);
    } else {
        // The exposition text is the payload, not commentary: it goes
        // to stdout so `opd metrics-dump | promtool` style pipelines
        // work.
        reporter.payload(snapshot.to_prometheus().trim_end());
    }
    ExitCode::SUCCESS
}

fn write_bounds_artifact() -> ExitCode {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_static_bounds.json");
    let json = opd_experiments::analysis::static_bounds_json(1);
    match std::fs::write(path, &json) {
        Ok(()) => {
            println!("wrote {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {path}: {e}");
            ExitCode::from(2)
        }
    }
}
