//! The `opd` command-line tool.
//!
//! Currently one subcommand family around the static analyzer:
//!
//! * `opd lint [--json] [--deny-warnings] [--scale N] [TARGET...]` —
//!   lint the built-in workloads (default: all eight) or a dumped
//!   program listing, printing rustc-style diagnostics.
//! * `opd bounds [--write]` — render the per-workload static-bounds
//!   artifact; `--write` updates `BENCH_static_bounds.json` at the
//!   repository root.
//! * `opd plan [--json] [--prune] [--scale N] [--write]` — statically
//!   analyze the default sweep grid: equivalence classes, plan lints
//!   (`OPD-C101..C106`), and predicted-vs-actual scan counts;
//!   `--prune` prints the pruned grid and, when the grid is proven
//!   irredundant, per-axis distinctness witnesses; `--write` updates
//!   `BENCH_plan.json`.
//! * `opd faults [--smoke] [--scale N] [--write]` — the
//!   fault-injection degradation study: accuracy of the default sweep
//!   grid on corrupted traces vs the clean-trace oracle, per fault
//!   kind and rate; `--write` updates `BENCH_faults.json`; `--smoke`
//!   runs a fast ledger-vs-decoder consistency pass for CI.
//! * `opd sweep [--scale N] [--fuel N] [--threads N]
//!   [--checkpoint PATH] [--resume]` — run the default grid over all
//!   workloads; with `--checkpoint`, completed (workload, unit)
//!   buckets stream to a crash-safe file, and `--resume` restores
//!   them after an interrupted run instead of recomputing.
//!
//! Exit codes: 0 clean, 1 lint findings at the failing severity,
//! 2 usage/input errors.

use std::fmt::Write as _;
use std::process::ExitCode;

use opd_analyze::{Analysis, PlanAnalysis};
use opd_core::SweepEngine;
use opd_microvm::workloads::Workload;
use opd_microvm::{parse_program, Program};

const USAGE: &str = "\
usage: opd lint [--json] [--deny-warnings] [--scale N] [TARGET...]
       opd bounds [--write]
       opd plan [--json] [--prune] [--scale N] [--write]
       opd faults [--smoke] [--scale N] [--write]
       opd sweep [--scale N] [--fuel N] [--threads N]
                 [--checkpoint PATH] [--resume]

TARGET is a built-in workload name (blockcomp, ruleng, tracer,
querydb, srccomp, audiodec, parsegen, lexgen) or a path to a program
listing in the MicroVM dump format. With no targets, all eight
workloads are linted.";

struct LintOpts {
    json: bool,
    deny_warnings: bool,
    scale: u32,
    targets: Vec<String>,
}

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match parse_lint_args(&args[1..]) {
            Ok(opts) => lint(&opts),
            Err(message) => fail(&message),
        },
        Some("bounds") => match args[1..] {
            [] => {
                print!("{}", opd_experiments::analysis::static_bounds_json(1));
                ExitCode::SUCCESS
            }
            [ref flag] if flag == "--write" => write_bounds_artifact(),
            _ => fail("bounds accepts only --write"),
        },
        Some("plan") => match parse_plan_args(&args[1..]) {
            Ok(opts) => plan(&opts),
            Err(message) => fail(&message),
        },
        Some("faults") => match parse_faults_args(&args[1..]) {
            Ok(opts) => faults(&opts),
            Err(message) => fail(&message),
        },
        Some("sweep") => match parse_sweep_args(&args[1..]) {
            Ok(opts) => sweep(&opts),
            Err(message) => fail(&message),
        },
        Some("help" | "--help" | "-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown subcommand `{other}`")),
    }
}

fn parse_lint_args(args: &[String]) -> Result<LintOpts, String> {
    let mut opts = LintOpts {
        json: false,
        deny_warnings: false,
        scale: 1,
        targets: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--scale" => {
                let value = iter.next().ok_or("missing value for --scale")?;
                opts.scale = value
                    .parse()
                    .map_err(|e| format!("bad --scale `{value}`: {e}"))?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            target => opts.targets.push(target.to_owned()),
        }
    }
    Ok(opts)
}

/// Resolves one lint target to a `(name, program)` pair.
fn resolve(target: &str, scale: u32) -> Result<(String, Program), String> {
    if let Some(w) = Workload::ALL.iter().find(|w| w.name() == target) {
        return Ok((target.to_owned(), w.program(scale)));
    }
    if std::path::Path::new(target).exists() {
        let source =
            std::fs::read_to_string(target).map_err(|e| format!("cannot read `{target}`: {e}"))?;
        let program =
            parse_program(&source).map_err(|e| format!("cannot parse `{target}`: {e}"))?;
        return Ok((target.to_owned(), program));
    }
    Err(format!(
        "`{target}` is neither a built-in workload nor an existing file"
    ))
}

fn lint(opts: &LintOpts) -> ExitCode {
    let named: Result<Vec<(String, Program)>, String> = if opts.targets.is_empty() {
        Ok(Workload::ALL
            .iter()
            .map(|w| (w.name().to_owned(), w.program(opts.scale)))
            .collect())
    } else {
        opts.targets
            .iter()
            .map(|t| resolve(t, opts.scale))
            .collect()
    };
    let named = match named {
        Ok(n) => n,
        Err(message) => return fail(&message),
    };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut json_entries = Vec::new();
    for (name, program) in &named {
        let analysis = Analysis::of(program);
        errors += analysis.error_count();
        warnings += analysis.warning_count();
        if opts.json {
            json_entries.push(format!(" \"{name}\": {}", analysis.to_json()));
        } else {
            print!("{}", render_target(name, &analysis));
        }
    }
    if opts.json {
        println!("{{\n{}\n}}", json_entries.join(",\n"));
    } else {
        let verdict = if errors > 0 || (opts.deny_warnings && warnings > 0) {
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "lint: {} target(s), {errors} error(s), {warnings} warning(s): {verdict}",
            named.len()
        );
    }
    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders one target's diagnostics and bound summary.
fn render_target(name: &str, analysis: &Analysis) -> String {
    let mut out = String::new();
    for d in analysis.diagnostics() {
        let _ = writeln!(out, "{}", d.render());
    }
    let bounds = analysis.bounds();
    // Saturated values mean no finite bound exists (unguarded
    // recursion or u64 overflow) — print them as such.
    let show = |value: u64, saturated: bool| {
        if saturated || value == u64::MAX {
            "unbounded".to_owned()
        } else {
            value.to_string()
        }
    };
    let _ = writeln!(
        out,
        "{name}: {} error(s), {} warning(s); alphabet <= {}, events <= {}, call depth <= {}, nesting <= {}",
        analysis.error_count(),
        analysis.warning_count(),
        analysis.flow().alphabet_bound(),
        show(bounds.events(), bounds.overflowed()),
        show(bounds.call_depth(), false),
        show(bounds.nest_depth(), false),
    );
    out
}

struct PlanOpts {
    json: bool,
    prune: bool,
    write: bool,
    scale: u32,
}

fn parse_plan_args(args: &[String]) -> Result<PlanOpts, String> {
    let mut opts = PlanOpts {
        json: false,
        prune: false,
        write: false,
        scale: 1,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--prune" => opts.prune = true,
            "--write" => opts.write = true,
            "--scale" => {
                let value = iter.next().ok_or("missing value for --scale")?;
                opts.scale = value
                    .parse()
                    .map_err(|e| format!("bad --scale `{value}`: {e}"))?;
            }
            other => return Err(format!("unknown plan argument `{other}`")),
        }
    }
    Ok(opts)
}

fn plan(opts: &PlanOpts) -> ExitCode {
    let configs = opd_experiments::grid::default_plan_grid();
    let analysis = PlanAnalysis::of(
        &configs,
        &opd_experiments::analysis::plan_workloads(opts.scale),
    );

    // The cost model's scan prediction must agree with the engine's
    // actual plan — a mismatch is a bug in one of them.
    let actual_scans = SweepEngine::new(&configs).total_scans();
    if analysis.predicted_scans_full() != actual_scans {
        eprintln!(
            "error: predicted {} scan(s) but the sweep engine plans {actual_scans}",
            analysis.predicted_scans_full()
        );
        return ExitCode::FAILURE;
    }

    if opts.write {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_plan.json");
        if let Err(e) = std::fs::write(path, opd_experiments::analysis::plan_json(opts.scale)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }

    if opts.json {
        print!("{}", opd_experiments::analysis::plan_json(opts.scale));
    } else {
        print!("{}", render_plan(&analysis, actual_scans, opts.prune));
    }
    if analysis.error_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders the plan analysis for humans: class summary, diagnostics,
/// scan counts, and (with `prune`) the pruned grid plus per-axis
/// evidence when the grid is proven irredundant.
fn render_plan(analysis: &PlanAnalysis, actual_scans: usize, prune: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "plan: {} config(s), {} equivalence class(es) ({} nontrivial)",
        analysis.configs().len(),
        analysis.classes().len(),
        analysis.nontrivial_classes(),
    );
    let _ = writeln!(
        out,
        "scans: predicted full={} pruned={}, engine={actual_scans} (exact match)",
        analysis.predicted_scans_full(),
        analysis.predicted_scans_pruned(),
    );
    for class in analysis.classes().iter().filter(|c| c.is_nontrivial()) {
        let _ = writeln!(
            out,
            "class: representative #{} covers {:?}\n  {}",
            class.representative(),
            class.members(),
            class.proof(),
        );
    }
    for d in analysis.diagnostics() {
        let _ = writeln!(out, "{}", d.render());
    }
    if prune {
        let reps = analysis.representatives();
        let _ = writeln!(out, "pruned grid ({} config(s)):", reps.len());
        for &r in &reps {
            let _ = writeln!(out, "  #{r}: {}", analysis.configs()[r]);
        }
        if analysis.nontrivial_classes() == 0 {
            let _ = writeln!(
                out,
                "the grid is irredundant under the prover's rules; probing axes for \
                 dynamic distinctness witnesses..."
            );
            let witnesses = analysis.axis_witnesses();
            for (axis, hit, total) in witnesses.per_axis() {
                let _ = writeln!(
                    out,
                    "  axis {axis}: {hit}/{total} single-axis pair(s) separated by a probe trace"
                );
            }
            for pair in witnesses.pairs.iter().filter(|p| p.witness.is_some()) {
                let _ = writeln!(
                    out,
                    "  witness: #{} vs #{} ({}) diverge on probe `{}`",
                    pair.a,
                    pair.b,
                    pair.axis,
                    pair.witness.as_deref().unwrap_or(""),
                );
            }
            let _ = writeln!(
                out,
                "  {} pair(s) witnessed, {} undecided",
                witnesses.witnessed(),
                witnesses.undecided(),
            );
        }
    }
    out
}

struct FaultsOpts {
    smoke: bool,
    write: bool,
    scale: u32,
}

fn parse_faults_args(args: &[String]) -> Result<FaultsOpts, String> {
    let mut opts = FaultsOpts {
        smoke: false,
        write: false,
        scale: 1,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--write" => opts.write = true,
            "--scale" => {
                let value = iter.next().ok_or("missing value for --scale")?;
                opts.scale = value
                    .parse()
                    .map_err(|e| format!("bad --scale `{value}`: {e}"))?;
            }
            other => return Err(format!("unknown faults argument `{other}`")),
        }
    }
    Ok(opts)
}

fn faults(opts: &FaultsOpts) -> ExitCode {
    if opts.smoke {
        // The smoke pass asserts internally that injector ledgers and
        // decoder corruption reports agree exactly.
        println!("{}", opd_experiments::faults::smoke(opts.scale));
        println!("faults --smoke: ok");
        return ExitCode::SUCCESS;
    }
    let json = opd_experiments::faults::faults_json(opts.scale);
    if opts.write {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_faults.json");
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    } else {
        print!("{json}");
    }
    ExitCode::SUCCESS
}

struct SweepOpts {
    scale: u32,
    fuel: u64,
    threads: usize,
    checkpoint: Option<String>,
    resume: bool,
}

fn parse_sweep_args(args: &[String]) -> Result<SweepOpts, String> {
    let mut opts = SweepOpts {
        scale: 1,
        fuel: opd_experiments::faults::STUDY_FUEL,
        threads: 1,
        checkpoint: None,
        resume: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--resume" => opts.resume = true,
            "--scale" => {
                let value = iter.next().ok_or("missing value for --scale")?;
                opts.scale = value
                    .parse()
                    .map_err(|e| format!("bad --scale `{value}`: {e}"))?;
            }
            "--fuel" => {
                let value = iter.next().ok_or("missing value for --fuel")?;
                opts.fuel = value
                    .parse()
                    .map_err(|e| format!("bad --fuel `{value}`: {e}"))?;
            }
            "--threads" => {
                let value = iter.next().ok_or("missing value for --threads")?;
                opts.threads = value
                    .parse()
                    .map_err(|e| format!("bad --threads `{value}`: {e}"))?;
            }
            "--checkpoint" => {
                let value = iter.next().ok_or("missing value for --checkpoint")?;
                opts.checkpoint = Some(value.clone());
            }
            other => return Err(format!("unknown sweep argument `{other}`")),
        }
    }
    if opts.resume && opts.checkpoint.is_none() {
        return Err("--resume requires --checkpoint PATH".to_owned());
    }
    Ok(opts)
}

fn sweep(opts: &SweepOpts) -> ExitCode {
    use opd_experiments::faults::STUDY_MPL;

    let configs = opd_experiments::grid::default_plan_grid();
    let prepared =
        opd_experiments::runner::prepare_all(&Workload::ALL, opts.scale, &[STUDY_MPL], opts.fuel);

    let runs = if let Some(path) = &opts.checkpoint {
        let fingerprint = opd_experiments::checkpoint::run_fingerprint(
            &configs,
            &Workload::ALL,
            opts.scale,
            opts.fuel,
        );
        match opd_experiments::checkpoint::sweep_many_checkpointed(
            &prepared,
            &configs,
            opts.threads,
            std::path::Path::new(path),
            fingerprint,
            opts.resume,
        ) {
            Ok((runs, summary)) => {
                println!(
                    "checkpoint: {} bucket(s) restored, {} computed{}",
                    summary.restored_buckets,
                    summary.computed_buckets,
                    if summary.damaged_tail_bytes > 0 {
                        format!(
                            " ({} damaged tail byte(s) discarded)",
                            summary.damaged_tail_bytes
                        )
                    } else {
                        String::new()
                    },
                );
                runs
            }
            Err(e) => {
                eprintln!("error: checkpoint {path}: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        opd_experiments::runner::sweep_many(&prepared, &configs, opts.threads)
    };

    for (p, config_runs) in prepared.iter().zip(&runs) {
        let oracle = p.oracle(STUDY_MPL);
        let mean = if config_runs.is_empty() {
            0.0
        } else {
            config_runs
                .iter()
                .map(|r| r.score(oracle).combined())
                .sum::<f64>()
                / config_runs.len() as f64
        };
        println!(
            "{:<10} {:>9} element(s)  mean combined accuracy {:.4}",
            p.workload().name(),
            p.total_elements(),
            mean,
        );
    }
    ExitCode::SUCCESS
}

fn write_bounds_artifact() -> ExitCode {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_static_bounds.json");
    let json = opd_experiments::analysis::static_bounds_json(1);
    match std::fs::write(path, &json) {
        Ok(()) => {
            println!("wrote {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {path}: {e}");
            ExitCode::from(2)
        }
    }
}
