//! End-to-end checks of the `opd` binary: lint output, exit codes,
//! JSON mode, and freshness of the committed static-bounds artifact.

use std::process::Command;

fn opd(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_opd"))
        .args(args)
        .output()
        .expect("opd binary runs")
}

#[test]
fn lint_all_workloads_is_clean_under_deny_warnings() {
    let out = opd(&["lint", "--deny-warnings"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("lint: 8 target(s), 0 error(s), 0 warning(s): ok"));
    for name in ["blockcomp", "lexgen", "srccomp"] {
        assert!(stdout.contains(&format!("{name}: 0 error(s)")), "{stdout}");
    }
}

#[test]
fn lint_json_reports_per_workload_bounds() {
    let out = opd(&["lint", "--json", "lexgen", "tracer"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("\"lexgen\""));
    assert!(stdout.contains("\"tracer\""));
    assert!(stdout.contains("\"alphabet_bound\""));
    assert!(stdout.contains("\"diagnostics\":[]"));
}

#[test]
fn lint_flags_a_broken_listing_and_fails() {
    let listing = "\
// program: 1 functions, 0 loops, 1 branch sites, entry f0 (arg 0)
fn spin (f0) // entry {
  branch @0 p=1.0
  call f0(5)
}
";
    let path = std::env::temp_dir().join(format!("opd-lint-test-{}.opd", std::process::id()));
    std::fs::write(&path, listing).expect("write temp listing");
    let out = opd(&["lint", path.to_str().expect("utf8 path")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("error[OPD-E002]"), "{stdout}");
    assert!(stdout.contains("warning[OPD-W003]"), "{stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");
}

#[test]
fn unknown_targets_and_flags_exit_with_usage_error() {
    assert_eq!(opd(&["lint", "nosuchworkload"]).status.code(), Some(2));
    assert_eq!(opd(&["lint", "--frobnicate"]).status.code(), Some(2));
    assert_eq!(opd(&["explode"]).status.code(), Some(2));
}

#[test]
fn committed_bounds_artifact_is_current() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_static_bounds.json");
    let committed = std::fs::read_to_string(path)
        .expect("BENCH_static_bounds.json exists at the repository root");
    assert_eq!(
        committed,
        opd_experiments::analysis::static_bounds_json(1),
        "stale static-bounds artifact: regenerate with `cargo run --bin opd -- bounds --write`"
    );
}
