//! Shared helpers for the CLI and artifact integration tests: a
//! minimal JSON parser (the workspace's `serde_json` dependency
//! resolves to an inert offline shim, so machine-readable output is
//! validated by hand) and a runner for the `opd` binary.

#![allow(dead_code)] // each test binary uses its own subset

use std::process::{Command, Output};

/// Runs the `opd` binary with `args` and returns its output.
pub fn opd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_opd"))
        .args(args)
        .output()
        .expect("spawn opd")
}

/// Asserts the invocation succeeded and parses its stdout as exactly
/// one JSON document.
pub fn stdout_json(output: &Output) -> Json {
    assert!(
        output.status.success(),
        "opd failed (status {:?}); stderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr),
    );
    stdout_json_any(output)
}

/// Parses stdout as exactly one JSON document without asserting the
/// exit status — the `--json` contract also holds for runs that exit
/// 1 on findings (lint errors, SLO burns).
pub fn stdout_json_any(output: &Output) -> Json {
    let stdout = String::from_utf8(output.stdout.clone()).expect("stdout is UTF-8");
    parse_json(&stdout).unwrap_or_else(|e| panic!("stdout is not one JSON document: {e}\n{stdout}"))
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object, panicking with context otherwise.
    pub fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("missing key `{key}`")),
            other => panic!("`{key}` looked up on non-object {other:?}"),
        }
    }

    /// Whether an object has a key.
    pub fn has(&self, key: &str) -> bool {
        matches!(self, Json::Obj(fields) if fields.iter().any(|(k, _)| k == key))
    }

    pub fn num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    pub fn as_u64(&self) -> u64 {
        let n = self.num();
        assert!(n >= 0.0 && n.fract() == 0.0, "expected integer, got {n}");
        n as u64
    }

    pub fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    pub fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        }
    }

    pub fn boolean(&self) -> bool {
        match self {
            Json::Bool(b) => *b,
            other => panic!("expected bool, got {other:?}"),
        }
    }
}

/// Parses `text` as exactly one JSON document (trailing whitespace
/// allowed, nothing else).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!(
            "trailing content at byte {}: {:?}",
            p.pos,
            &text[p.pos..text.len().min(p.pos + 40)]
        ));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (already validated by
                    // the &str the parser was built from).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}
