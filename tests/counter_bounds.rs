//! Runtime counters vs the static cost model (PR 3): the metered
//! sweep's scan, step, and element counters must match
//! `opd-analyze`'s predictions exactly, and its measured comparison
//! ops must respect the model's upper bound, for the default
//! 28-config grid on every workload. Where the model is exact
//! (scans, steps, elements) equality is asserted; comparison ops are
//! bounded above because the model charges every step while the
//! detector only judges warm ones.

use opd_analyze::{predicted_scans, ConfigCost};
use opd_core::{SweepEngine, SweepScratch, UnitKind};
use opd_experiments::grid::{default_plan_grid, policy_grid, TwKind};
use opd_experiments::obs::sweep_many_profiled;
use opd_experiments::runner::{prepare_all, PreparedWorkload};
use opd_microvm::workloads::Workload;
use opd_obs::UnitMetrics;

const FUEL: u64 = 12_000;

fn prepared_workloads() -> Vec<PreparedWorkload> {
    prepare_all(&Workload::ALL, 1, &[1_000], FUEL)
}

#[test]
fn metered_counters_match_static_predictions_on_the_default_grid() {
    let configs = default_plan_grid();
    let engine = SweepEngine::new(&configs);
    for p in prepared_workloads() {
        let elements = p.total_elements();
        let alphabet = p.site_capacity() as u64;
        let mut scratch = SweepScratch::with_site_capacity(p.site_capacity());
        let mut total = UnitMetrics::new();
        for (ui, unit) in engine.units().iter().enumerate() {
            let mut metrics = UnitMetrics::new();
            let _ = engine.run_unit_metered(ui, p.interned(), &mut scratch, &mut metrics);

            let members = unit.config_indices();
            let costs: Vec<ConfigCost> = members
                .iter()
                .map(|&ci| ConfigCost::of(&configs[ci], elements, alphabet))
                .collect();
            // Scans and steps are exact: one shared scan walks the
            // trace once at the unit's common shape; a private unit
            // walks it once per member.
            let predicted_steps: u64 = if unit.is_shared() {
                costs[0].steps()
            } else {
                costs.iter().map(ConfigCost::steps).sum()
            };
            assert_eq!(
                metrics.scans,
                unit.scans() as u64,
                "workload {:?}",
                p.workload()
            );
            assert_eq!(
                metrics.steps,
                predicted_steps,
                "workload {:?}",
                p.workload()
            );
            assert_eq!(metrics.elements, metrics.scans * elements);
            // Judged steps: at most one judgement per (member, step),
            // and the sweep must actually judge something.
            assert!(metrics.judged_steps <= predicted_steps * members.len() as u64);
            assert!(metrics.judged_steps > 0);
            // Comparison ops: bounded by the model, which charges
            // every step (warm or not) at the per-step rate.
            let bound: u64 = costs
                .iter()
                .map(|c| c.compare_ops().expect("no overflow at this fuel"))
                .sum();
            assert!(
                metrics.compare_ops <= bound,
                "workload {:?} unit {ui}: {} compare ops exceed static bound {bound}",
                p.workload(),
                metrics.compare_ops
            );
            assert!(metrics.compare_ops > 0);
            total.merge(&metrics);
        }
        assert_eq!(total.scans, engine.total_scans() as u64);
        assert_eq!(total.scans, predicted_scans(&configs) as u64);
    }
}

#[test]
fn metered_counters_are_exact_on_a_shared_adaptive_unit() {
    // Adaptive-TW configs share one forking scan per shape: scans,
    // steps, and elements stay exactly predictable, and comparison
    // ops respect the static per-member bound — every fresh
    // class-or-FIFO similarity is attributable to the distinct member
    // whose judgement triggered it.
    let configs = policy_grid(TwKind::Adaptive, 400);
    let engine = SweepEngine::new(&configs);
    let p = &prepare_all(&[Workload::Lexgen], 1, &[1_000], FUEL)[0];
    let elements = p.total_elements();
    let alphabet = p.site_capacity() as u64;
    let mut scratch = SweepScratch::with_site_capacity(p.site_capacity());
    let mut total = UnitMetrics::new();
    assert_eq!(engine.units().len(), 1, "one shape, one forking scan");
    for (ui, unit) in engine.units().iter().enumerate() {
        assert_eq!(unit.kind(), UnitKind::SharedAdaptive);
        assert!(unit.is_shared());
        let mut metrics = UnitMetrics::new();
        let _ = engine.run_unit_metered(ui, p.interned(), &mut scratch, &mut metrics);
        let costs: Vec<ConfigCost> = unit
            .config_indices()
            .iter()
            .map(|&ci| ConfigCost::of(&configs[ci], elements, alphabet))
            .collect();
        assert_eq!(metrics.scans, 1);
        assert_eq!(metrics.steps, costs[0].steps());
        assert_eq!(metrics.elements, metrics.scans * elements);
        let bound: u64 = costs
            .iter()
            .map(|c| c.compare_ops().expect("no overflow at this fuel"))
            .sum();
        assert!(
            metrics.compare_ops <= bound,
            "{} compare ops exceed static bound {bound}",
            metrics.compare_ops
        );
        assert!(metrics.compare_ops > 0);
        total.merge(&metrics);
    }
    assert_eq!(total.scans, predicted_scans(&configs) as u64);
}

#[test]
fn profiled_sweep_buckets_respect_their_recorded_bounds() {
    // The same cross-check at the harness level: every bucket of a
    // threaded profiled sweep carries its own static bound and honours
    // it, and the profile's totals line up with the whole-grid
    // predictions.
    let prepared = prepared_workloads();
    let configs = default_plan_grid();
    let (_, profile) = sweep_many_profiled(&prepared, &configs, 3);
    assert_eq!(
        profile.buckets.len(),
        prepared.len() * predicted_scans(&configs)
    );
    for bucket in &profile.buckets {
        let p = &prepared[bucket.workload_index];
        let bound = bucket
            .static_compare_bound
            .expect("no overflow at this fuel");
        assert!(bucket.metrics.compare_ops <= bound, "{}", bucket.workload);
        assert_eq!(bucket.metrics.scans, 1, "default grid is one shared scan");
        assert_eq!(bucket.members, configs.len());
        assert_eq!(
            bucket.metrics.steps,
            ConfigCost::of(&configs[0], p.total_elements(), p.site_capacity() as u64).steps()
        );
        assert_eq!(bucket.metrics.elements, p.total_elements());
    }
    let totals = profile.totals();
    assert_eq!(
        totals.scans,
        (prepared.len() * predicted_scans(&configs)) as u64
    );
    assert_eq!(
        profile.static_compare_bound(),
        profile
            .buckets
            .iter()
            .map(|b| b.static_compare_bound)
            .try_fold(0u64, |acc, b| b.map(|v| acc + v))
    );
}
