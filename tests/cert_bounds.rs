//! Certificate soundness, end to end (PR 8): every dynamic counter an
//! observed detector run produces must land inside the interval its
//! abstract-interpretation [`ResourceCertificate`] certifies, for
//! every (config × workload) pair of the default 28-config grid at
//! the pinned differential fuel — and the certified compare-op upper
//! bound must never exceed the flat cost-model bound, beating it
//! strictly on at least half the pairs (here: all of them, since the
//! certificate alone knows the detector judges nothing during
//! warm-up).

use opd_analyze::{predicted_scans, AbsInt, FlowInfo, ResourceCertificate};
use opd_core::{InternedTrace, PhaseDetector, SweepEngine};
use opd_experiments::cert::CERT_FUEL;
use opd_experiments::grid::default_plan_grid;
use opd_microvm::workloads::Workload;
use opd_microvm::Interpreter;
use opd_obs::MeterObserver;
use opd_trace::{ExecutionTrace, ProfileElement};

/// One workload's trace at the differential fuel, plus the static
/// analyses its certificates are built from.
struct Certified {
    workload: Workload,
    absint: AbsInt,
    flow: FlowInfo,
    elements: Vec<ProfileElement>,
    interned: InternedTrace,
}

fn certify_all() -> Vec<Certified> {
    Workload::ALL
        .iter()
        .map(|&workload| {
            let program = workload.program(1);
            let absint = AbsInt::of(&program);
            let flow = FlowInfo::compute(&program);
            let mut execution = ExecutionTrace::new();
            Interpreter::new(&program, workload.default_seed())
                .with_fuel(CERT_FUEL)
                .run(&mut execution)
                .expect("workload executes");
            let elements: Vec<ProfileElement> = execution.branches().iter().copied().collect();
            let interned = InternedTrace::from_elements(elements.iter().copied());
            Certified {
                workload,
                absint,
                flow,
                elements,
                interned,
            }
        })
        .collect()
}

/// The peak scalar window occupancy of one run: elements resident in
/// CW + TW after each skip-aligned step.
fn measured_peak_occupancy(config: &opd_core::DetectorConfig, elements: &[ProfileElement]) -> u64 {
    let mut detector = PhaseDetector::new(*config);
    let mut peak = 0u64;
    for chunk in elements.chunks(config.skip_factor().max(1)) {
        detector.process(chunk);
        let w = detector.windows();
        peak = peak.max((w.cw_len() + w.tw_len()) as u64);
    }
    peak
}

#[test]
fn every_dynamic_counter_lands_inside_its_certified_interval() {
    let configs = default_plan_grid();
    let mut pairs = 0usize;
    let mut tighter = 0usize;
    for c in certify_all() {
        let dynamic_elements = c.elements.len() as u64;
        let dynamic_sites = u64::from(c.interned.distinct_count());
        // All grid members share one window shape, so one scalar
        // occupancy measurement covers the whole row.
        let peak_occupancy = measured_peak_occupancy(&configs[0], &c.elements);
        for (ci, config) in configs.iter().enumerate() {
            let cert = ResourceCertificate::from_parts(&c.absint, &c.flow, config, CERT_FUEL);
            let ctx = format!("{} × config #{ci}", c.workload);
            assert!(!cert.vacuous(), "{ctx}: grid certificates must be real");

            assert!(
                cert.elements().contains(dynamic_elements),
                "{ctx}: elements"
            );
            assert!(cert.sites().contains(dynamic_sites), "{ctx}: sites");
            assert!(
                cert.occupancy().contains(peak_occupancy),
                "{ctx}: occupancy"
            );

            let mut detector = PhaseDetector::new(*config);
            let mut meter = MeterObserver::new();
            let phases = detector
                .run_interned_phases_observed(&c.interned, &mut meter)
                .len() as u64;
            assert!(cert.steps().contains(meter.metrics.steps), "{ctx}: steps");
            assert!(
                cert.judged_steps().contains(meter.metrics.judged_steps),
                "{ctx}: judged {} not in [{},{}]",
                meter.metrics.judged_steps,
                cert.judged_steps().lo(),
                cert.judged_steps().hi(),
            );
            assert!(
                cert.compare_ops().contains(meter.metrics.compare_ops),
                "{ctx}: compare ops {} not in [{},{}]",
                meter.metrics.compare_ops,
                cert.compare_ops().lo(),
                cert.compare_ops().hi(),
            );
            assert!(cert.phases().contains(phases), "{ctx}: {phases} phase(s)");
            assert!(
                cert.memory_bytes()
                    .contains(detector.kernel_footprint_bytes()),
                "{ctx}: memory {} not in [{},{}]",
                detector.kernel_footprint_bytes(),
                cert.memory_bytes().lo(),
                cert.memory_bytes().hi(),
            );

            // The certified upper bound must respect the flat cost
            // model everywhere.
            let bound = cert.cost_compare_bound().expect("no overflow at this fuel");
            assert!(cert.compare_ops().hi() <= bound, "{ctx}: cost bound");
            pairs += 1;
            if cert.tighter_than_cost_bound() {
                assert!(
                    cert.compare_ops().hi() < bound,
                    "{ctx}: tighter means strict"
                );
                tighter += 1;
            }
        }
    }
    assert_eq!(pairs, 224);
    assert!(
        tighter * 2 >= pairs,
        "certificates must beat the cost bound on at least half the pairs ({tighter}/{pairs})"
    );
    assert_eq!(
        tighter, pairs,
        "one-shape grid: warm-up slack on every pair"
    );
}

#[test]
fn certified_scan_counts_match_the_engine_plan() {
    let configs = default_plan_grid();
    let engine = SweepEngine::new(&configs);
    assert_eq!(engine.total_scans(), predicted_scans(&configs));
    for c in certify_all() {
        for config in &configs {
            let cert = ResourceCertificate::from_parts(&c.absint, &c.flow, config, CERT_FUEL);
            // Per (config, workload) the certified scan interval is
            // exact: the shared-shape grid walks each trace once.
            assert_eq!(cert.scans().lo(), 1, "{}", c.workload);
            assert_eq!(cert.scans().hi(), 1, "{}", c.workload);
        }
        assert_eq!(predicted_scans(&configs), 1, "one shape, one shared scan");
    }
}
