//! Edge cases and failure injection across the crate boundaries.

use opd::baseline::{BaselineSolution, CallLoopForest};
use opd::core::{
    AnalyzerPolicy, AnchorPolicy, DetectorConfig, ModelPolicy, PhaseDetector, ResizePolicy,
    TwPolicy,
};
use opd::microvm::{ArgExpr, Interpreter, ProgramBuilder, TakenDist, Trip};
use opd::scoring::score_states;
use opd::trace::{
    decode_trace, encode_trace, BranchTrace, CallLoopEvent, CallLoopEventKind, ExecutionTrace,
    LoopId, MethodId, ProfileElement, TraceSink,
};

fn elem(offset: u32) -> ProfileElement {
    ProfileElement::new(MethodId::new(0), offset, true)
}

#[test]
fn detector_window_larger_than_trace_stays_in_transition() {
    let config = DetectorConfig::builder()
        .current_window(10_000)
        .build()
        .unwrap();
    let trace: BranchTrace = (0..100).map(elem).collect();
    let states = PhaseDetector::new(config).run(&trace);
    assert!(states.iter().all(|s| s.is_transition()));
}

#[test]
fn skip_factor_larger_than_trace_is_one_step() {
    let config = DetectorConfig::builder()
        .current_window(4)
        .skip_factor(1_000_000)
        .build()
        .unwrap();
    let trace: BranchTrace = (0..50).map(elem).collect();
    let mut d = PhaseDetector::new(config);
    let states = d.run(&trace);
    assert_eq!(states.len(), 50);
    assert_eq!(d.elements_consumed(), 50);
}

#[test]
fn single_element_trace() {
    let config = DetectorConfig::builder().current_window(1).build().unwrap();
    let trace: BranchTrace = std::iter::once(elem(0)).collect();
    let states = PhaseDetector::new(config).run(&trace);
    assert_eq!(states.len(), 1);
}

#[test]
fn minimal_windows_on_uniform_stream() {
    // cw = tw = 1: the smallest legal detector.
    let config = DetectorConfig::builder()
        .current_window(1)
        .trailing_window(1)
        .build()
        .unwrap();
    let trace: BranchTrace = (0..20).map(|_| elem(7)).collect();
    let states = PhaseDetector::new(config).run(&trace);
    assert!(states.as_slice()[2..].iter().all(|s| s.is_phase()));
}

#[test]
fn all_four_adaptive_variants_run_on_real_traces() {
    let program = opd::microvm::workloads::Workload::Ruleng.program(1);
    let mut trace = ExecutionTrace::new();
    Interpreter::new(&program, 1)
        .with_fuel(60_000)
        .run(&mut trace)
        .unwrap();
    let oracle = BaselineSolution::compute(&trace, 5_000).unwrap();
    for anchor in [AnchorPolicy::RightmostNoisy, AnchorPolicy::LeftmostNonNoisy] {
        for resize in [ResizePolicy::Slide, ResizePolicy::Move] {
            let config = DetectorConfig::builder()
                .current_window(2_500)
                .tw_policy(TwPolicy::Adaptive)
                .anchor(anchor)
                .resize(resize)
                .build()
                .unwrap();
            let mut d = PhaseDetector::new(config);
            let states = d.run(trace.branches());
            let score = score_states(&states, &oracle);
            assert!(
                (0.0..=1.0).contains(&score.combined()),
                "{anchor:?}/{resize:?}: {score}"
            );
            for p in d.detected_phases() {
                assert!(p.anchored_start <= p.start, "{anchor:?}/{resize:?}: {p:?}");
            }
        }
    }
}

#[test]
fn average_analyzer_with_adaptive_tw_detects_workload_phases() {
    let trace = opd::microvm::workloads::Workload::Lexgen.trace(1);
    let config = DetectorConfig::builder()
        .current_window(2_000)
        .tw_policy(TwPolicy::Adaptive)
        .analyzer(AnalyzerPolicy::Average { delta: 0.05 })
        .build()
        .unwrap();
    let mut d = PhaseDetector::new(config);
    let states = d.run(trace.branches());
    assert!(states.phase_count() > 0);
    assert!(d.confidence().is_some());
}

#[test]
fn detector_continues_after_run() {
    // A detector is a long-lived online object: feeding more elements
    // after a run() must be seamless.
    let config = DetectorConfig::builder().current_window(4).build().unwrap();
    let mut d = PhaseDetector::new(config);
    let first: BranchTrace = (0..40).map(|_| elem(1)).collect();
    let _ = d.run(&first);
    assert_eq!(d.elements_consumed(), 40);
    let state = d.process(&[elem(1)]);
    assert!(state.is_phase());
    assert_eq!(d.elements_consumed(), 41);
}

#[test]
fn pearson_model_runs_end_to_end() {
    let trace = opd::microvm::workloads::Workload::Querydb.trace(1);
    let oracle = BaselineSolution::compute(&trace, 10_000).unwrap();
    let config = DetectorConfig::builder()
        .current_window(5_000)
        .model(ModelPolicy::Pearson)
        .analyzer(AnalyzerPolicy::Threshold(0.8))
        .build()
        .unwrap();
    let states = PhaseDetector::new(config).run(trace.branches());
    let score = score_states(&states, &oracle);
    assert!((0.0..=1.0).contains(&score.combined()), "{score}");
}

#[test]
fn oracle_handles_pathological_nesting() {
    // Ten levels of perfectly nested loops, each one iteration.
    let mut t = ExecutionTrace::new();
    for i in 0..10 {
        t.record_loop_enter(LoopId::new(i));
        for j in 0..3 {
            t.record_branch(elem(i * 4 + j));
        }
    }
    for k in 0..30 {
        t.record_branch(elem(100 + k));
    }
    for i in (0..10).rev() {
        t.record_loop_exit(LoopId::new(i));
    }
    let total = t.branches().len() as u64;
    let forest = CallLoopForest::build(&t).unwrap();
    // Small MPL: the innermost loop big enough wins; large MPL: only
    // the outermost; absurd MPL: nothing.
    let fine = forest.solve(10);
    assert_eq!(fine.phases().len(), 1);
    let none = forest.solve(10_000);
    assert_eq!(none.phase_count(), 0);
    let all = forest.solve(total);
    assert_eq!(all.phases().len(), 1);
    assert_eq!(all.phases()[0].len(), total);
}

#[test]
fn oracle_handles_zero_length_constructs() {
    // Loops and methods that execute no branches at all.
    let mut t = ExecutionTrace::new();
    t.record_loop_enter(LoopId::new(0));
    t.record_loop_exit(LoopId::new(0));
    t.record_method_enter(MethodId::new(1));
    t.record_method_exit(MethodId::new(1));
    t.record_branch(elem(0));
    let sol = BaselineSolution::compute(&t, 1).unwrap();
    assert_eq!(sol.phase_count(), 0);
    assert_eq!(sol.total_elements(), 1);
}

#[test]
fn oracle_rejects_interleaved_constructs() {
    // enter L0, enter L1, exit L0: improper nesting must error, not
    // silently mislabel.
    let events = [
        CallLoopEvent::new(CallLoopEventKind::LoopEnter(LoopId::new(0)), 0),
        CallLoopEvent::new(CallLoopEventKind::LoopEnter(LoopId::new(1)), 0),
        CallLoopEvent::new(CallLoopEventKind::LoopExit(LoopId::new(0)), 0),
    ];
    let trace: opd::trace::CallLoopTrace = events.into_iter().collect();
    assert!(CallLoopForest::from_events(&trace, 0).is_err());
}

#[test]
fn codec_rejects_bit_flipped_buffers() {
    let trace = {
        let mut t = ExecutionTrace::new();
        t.record_loop_enter(LoopId::new(0));
        for i in 0..50 {
            t.record_branch(elem(i));
        }
        t.record_loop_exit(LoopId::new(0));
        t
    };
    let bytes = encode_trace(&trace).to_vec();
    // Flip a bit in every byte position; decoding must never panic,
    // and must either error or produce a *different* trace only when
    // the flip landed in a value (not structure) byte.
    let mut silent_changes = 0;
    for pos in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x40;
        match decode_trace(&corrupted) {
            Ok(t) if t == trace => panic!("flip at {pos} was a no-op?"),
            Ok(_) => silent_changes += 1,
            Err(_) => {}
        }
    }
    // Payload bytes dominate, so some silent value changes are
    // expected; structural corruption must be caught.
    assert!(silent_changes > 0);
}

#[test]
fn microvm_zero_fuel_produces_balanced_empty_trace() {
    let mut b = ProgramBuilder::new();
    let main = b.declare("main");
    b.define(main, |f| {
        f.repeat(Trip::Fixed(5), |l| {
            l.branch(TakenDist::Always);
            l.call(main, ArgExpr::Const(0)); // self-call, guarded by fuel
        });
    });
    // NOTE: recursion depth guard will stop this even without fuel.
    let program = b.build().unwrap();
    let mut trace = ExecutionTrace::new();
    let summary = Interpreter::new(&program, 0)
        .with_fuel(0)
        .run(&mut trace)
        .unwrap();
    assert_eq!(summary.branches, 0);
    assert!(summary.exhausted);
    assert!(trace.branches().is_empty());
    // Events still balance.
    assert!(CallLoopForest::build(&trace).is_ok());
}

#[test]
fn scoring_panics_cleanly_on_wrong_trace() {
    let trace = opd::microvm::workloads::Workload::Lexgen.trace(1);
    let oracle = BaselineSolution::compute(&trace, 10_000).unwrap();
    let too_long: opd::trace::StateSeq = (0..oracle.total_elements() + 1)
        .map(|_| opd::trace::PhaseState::Phase)
        .collect();
    let result = std::panic::catch_unwind(|| score_states(&too_long, &oracle));
    assert!(result.is_err());
}
