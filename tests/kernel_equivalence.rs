//! The kernel-differential suite: the SWAR (default) window kernel
//! must be bit-identical to the scalar reference — same per-element
//! state sequence, same detected and anchored phases, same final
//! similarity — on every MicroVM workload and on arbitrary traces.
//! The grids cross all three similarity models with both TW policies,
//! both anchors, both resize policies, and skip factors on both sides
//! of the rank-mode cutoff, so the dense incremental path, the
//! rank-index path, mid-phase flushes (`clear_keep_last`), and
//! adaptive TW growth are all exercised against the reference.

use proptest::prelude::*;

use opd_core::{
    AnalyzerPolicy, AnchorPolicy, DetectorConfig, InternedTrace, KernelKind, ModelPolicy,
    PhaseDetector, ResizePolicy, TwPolicy, RANK_MODE_MIN_SKIP,
};
use opd_microvm::workloads::Workload;
use opd_trace::{BranchTrace, MethodId, ProfileElement};

const FUEL: u64 = 12_000;

fn interned(workload: Workload) -> InternedTrace {
    let program = workload.program(1);
    let mut execution = opd_trace::ExecutionTrace::new();
    opd_microvm::Interpreter::new(&program, workload.default_seed())
        .with_fuel(FUEL)
        .run(&mut execution)
        .expect("workload executes");
    InternedTrace::from_elements(execution.branches().iter().copied())
}

/// Every policy axis crossed, with skip factors below and above the
/// rank-mode cutoff.
fn differential_grid() -> Vec<DetectorConfig> {
    let mut configs = Vec::new();
    for model in ModelPolicy::ALL_EXTENDED {
        for tw_policy in [TwPolicy::Constant, TwPolicy::Adaptive] {
            for anchor in [AnchorPolicy::RightmostNoisy, AnchorPolicy::LeftmostNonNoisy] {
                for resize in [ResizePolicy::Slide, ResizePolicy::Move] {
                    for skip in [1, 7, RANK_MODE_MIN_SKIP, 50] {
                        configs.push(
                            DetectorConfig::builder()
                                .current_window(400)
                                .trailing_window(300)
                                .skip_factor(skip)
                                .tw_policy(tw_policy)
                                .anchor(anchor)
                                .resize(resize)
                                .model(model)
                                .build()
                                .expect("valid config"),
                        );
                    }
                }
            }
        }
    }
    configs
}

fn assert_kernels_agree(trace: &InternedTrace, config: DetectorConfig, context: &str) {
    let mut scalar = PhaseDetector::with_kernel(config, KernelKind::Scalar);
    let scalar_seq = scalar.run_interned(trace);
    let mut swar = PhaseDetector::with_kernel(config, KernelKind::Swar);
    let swar_seq = swar.run_interned(trace);

    assert_eq!(scalar_seq, swar_seq, "{context}: state sequence");
    assert_eq!(
        scalar.detected_phases(),
        swar.detected_phases(),
        "{context}: phases"
    );
    assert_eq!(
        scalar.last_similarity(),
        swar.last_similarity(),
        "{context}: last similarity"
    );
    assert_eq!(scalar.state(), swar.state(), "{context}: final state");
}

#[test]
fn kernels_agree_on_every_workload() {
    let configs = differential_grid();
    for &workload in &Workload::ALL {
        let trace = interned(workload);
        for &config in &configs {
            assert_kernels_agree(&trace, config, &format!("{workload:?} {config:?}"));
        }
    }
}

#[test]
fn kernels_agree_on_degenerate_traces() {
    let config = differential_grid()[0];
    // Empty trace, single element, single repeated site.
    let e = |o| ProfileElement::new(MethodId::new(0), o, false);
    for elements in [
        vec![],
        vec![e(0)],
        vec![e(0); 1_000],
        (0..700u32).map(|i| e(i % 3)).collect(),
    ] {
        let trace = InternedTrace::from_elements(elements);
        for &cfg in &[config, differential_grid()[47]] {
            assert_kernels_agree(&trace, cfg, &format!("degenerate {cfg:?}"));
        }
    }
}

fn arb_element() -> impl Strategy<Value = ProfileElement> {
    // 13 methods × 10 offsets × taken-bit: up to 260 distinct sites,
    // comfortably crossing the 64-site lane boundary (and a second
    // one) so multi-lane bitset handling is exercised.
    (0u32..13, 0u32..10, any::<bool>())
        .prop_map(|(m, o, t)| ProfileElement::new(MethodId::new(m), o, t))
}

fn arb_trace(max_len: usize) -> impl Strategy<Value = BranchTrace> {
    prop::collection::vec(arb_element(), 0..max_len).prop_map(BranchTrace::from)
}

fn arb_config() -> impl Strategy<Value = DetectorConfig> {
    (
        1usize..50,
        1usize..50,
        // Crosses RANK_MODE_MIN_SKIP so both judging modes appear.
        1usize..48,
        prop_oneof![Just(TwPolicy::Constant), Just(TwPolicy::Adaptive)],
        prop_oneof![
            Just(AnchorPolicy::RightmostNoisy),
            Just(AnchorPolicy::LeftmostNonNoisy)
        ],
        prop_oneof![Just(ResizePolicy::Slide), Just(ResizePolicy::Move)],
        prop_oneof![
            Just(ModelPolicy::UnweightedSet),
            Just(ModelPolicy::WeightedSet),
            Just(ModelPolicy::Pearson)
        ],
        prop_oneof![
            (0.0f64..=1.0).prop_map(AnalyzerPolicy::Threshold),
            (0.0f64..=1.0).prop_map(|delta| AnalyzerPolicy::Average { delta }),
        ],
    )
        .prop_map(|(cw, tw, skip, twp, anchor, resize, model, analyzer)| {
            DetectorConfig::builder()
                .current_window(cw)
                .trailing_window(tw)
                .skip_factor(skip)
                .tw_policy(twp)
                .anchor(anchor)
                .resize(resize)
                .model(model)
                .analyzer(analyzer)
                .build()
                .expect("generated parameters are valid")
        })
}

proptest! {
    #[test]
    fn kernels_agree_on_arbitrary_traces(
        trace in arb_trace(600),
        config in arb_config(),
    ) {
        let interned = InternedTrace::from_elements(trace.iter().copied());
        assert_kernels_agree(&interned, config, &format!("{config:?}"));
    }
}
