//! The `opd` CLI error and exit-code contract, end to end:
//!
//! * 0 — clean run;
//! * 1 — findings at the failing severity (lint/audit/certify);
//! * 2 — malformed command line (every `CliError` variant) or
//!   unreadable input.
//!
//! Every stderr message below is the typed
//! [`opd_experiments::cli::CliError`] rendering, so these tests pin
//! both the codes and the wording.

use std::process::Command;

fn opd(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_opd"))
        .args(args)
        .output()
        .expect("opd binary runs")
}

fn stderr_of(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn unknown_subcommand_exits_2_with_usage() {
    let out = opd(&["explode"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert!(err.contains("unknown subcommand `explode`"), "{err}");
    assert!(err.contains("usage: opd"), "{err}");
}

#[test]
fn unknown_flags_exit_2_on_every_subcommand() {
    for sub in [
        "lint",
        "plan",
        "faults",
        "sweep",
        "audit",
        "certify",
        "trace",
        "serve",
        "loadgen",
        "top",
        "flight",
        "metrics-dump",
    ] {
        let out = opd(&[sub, "--frobnicate"]);
        assert_eq!(out.status.code(), Some(2), "{sub}");
        assert!(
            stderr_of(&out).contains("unknown flag `--frobnicate`"),
            "{sub}: {}",
            stderr_of(&out)
        );
    }
}

#[test]
fn missing_values_exit_2() {
    for args in [
        &["lint", "--scale"][..],
        &["plan", "--scale"],
        &["sweep", "--fuel"],
        &["sweep", "--checkpoint"],
        &["certify", "--budget"],
        &["trace", "lexgen", "--limit"],
        &["serve", "--clients"],
        &["serve", "--capacity"],
        &["serve", "--postmortem-dir"],
        &["serve", "--spans-out"],
        &["loadgen", "--scale"],
        &["trace", "lexgen", "--kind"],
        &["trace", "lexgen", "--session"],
        &["top", "--clients"],
        &["top", "--slo-p99"],
        &["metrics-dump", "--scale"],
    ] {
        let out = opd(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(
            stderr_of(&out).contains("missing value for --"),
            "{args:?}: {}",
            stderr_of(&out)
        );
    }
}

#[test]
fn invalid_values_exit_2_and_name_the_flag() {
    let out = opd(&["certify", "--fuel", "lots"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("bad --fuel `lots`"),
        "{}",
        stderr_of(&out)
    );

    let out = opd(&["lint", "--scale", "-1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("bad --scale `-1`"),
        "{}",
        stderr_of(&out)
    );

    let out = opd(&["top", "--slo-shed", "lots"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("bad --slo-shed `lots`"),
        "{}",
        stderr_of(&out)
    );
}

#[test]
fn trace_rejects_unknown_kinds_at_parse_time() {
    // `--kind` is validated against the union of event and span kinds
    // before any work runs, so a typo fails the same way on workload
    // and span-log targets alike.
    let out = opd(&["trace", "lexgen", "--kind", "bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert!(err.contains("unknown kind `bogus`"), "{err}");
    assert!(err.contains("phase_start"), "{err}");
    assert!(err.contains("quarantine"), "{err}");
}

#[test]
fn flag_conflicts_exit_2() {
    let out = opd(&["sweep", "--resume"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("--resume requires --checkpoint PATH"),
        "{}",
        stderr_of(&out)
    );

    let out = opd(&["sweep", "--json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("sweep --json/--write require --stats"),
        "{}",
        stderr_of(&out)
    );

    // The traced engine has no checkpoint support: trace outputs and
    // --checkpoint are mutually exclusive.
    let out = opd(&[
        "serve",
        "--postmortem-dir",
        "/tmp/x",
        "--checkpoint",
        "/tmp/y",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("cannot be combined with --checkpoint"),
        "{}",
        stderr_of(&out)
    );

    // --session only filters span-log replays, not live workloads.
    let out = opd(&["trace", "lexgen", "--session", "2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("--session applies only to span-log targets"),
        "{}",
        stderr_of(&out)
    );
}

#[test]
fn bad_positionals_exit_2() {
    let out = opd(&["trace"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("trace requires a TARGET"),
        "{}",
        stderr_of(&out)
    );

    let out = opd(&["trace", "lexgen", "extra"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("unexpected trace argument `extra`"),
        "{}",
        stderr_of(&out)
    );

    let out = opd(&["audit", "extra"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("unexpected audit argument `extra`"),
        "{}",
        stderr_of(&out)
    );

    assert_eq!(opd(&["bounds", "--write", "extra"]).status.code(), Some(2));

    let out = opd(&["flight"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("flight requires a post-mortem FILE"),
        "{}",
        stderr_of(&out)
    );

    let out = opd(&["flight", "/nonexistent/dir/pm-000001.pm"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("cannot read"),
        "{}",
        stderr_of(&out)
    );
}

#[test]
fn help_and_clean_runs_exit_0() {
    let out = opd(&["help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: opd"));

    // The default grid certifies clean even under --deny-warnings
    // (unlimited fuel: no truncation, nothing vacuous, no budget).
    let out = opd(&["certify", "--deny-warnings"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(
        stdout.contains("224 certificate(s), 224 tighter"),
        "{stdout}"
    );
    assert!(stdout.contains(": ok"), "{stdout}");
}

#[test]
fn certify_findings_exit_1() {
    // A zero budget makes every pair fail admission: OPD-A303 is an
    // error, so the run exits 1 (not 2 — the command line is fine).
    let out = opd(&["certify", "--budget", "0"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("OPD-A303"), "{stdout}");
    assert!(stdout.contains("224 error(s)"), "{stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");

    // A finite fuel truncates: OPD-A304 warnings pass by default and
    // fail only under --deny-warnings.
    let out = opd(&["certify", "--fuel", "12000"]);
    assert_eq!(out.status.code(), Some(0));
    let out = opd(&["certify", "--fuel", "12000", "--deny-warnings"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("OPD-A304"), "{stdout}");
}

#[test]
fn certify_json_stdout_is_one_document() {
    let out = opd(&["certify", "--json"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with('{'), "{stdout}");
    assert!(stdout.trim_end().ends_with('}'), "{stdout}");
    assert!(stdout.contains("\"schema\": \"opd-bench-cert-v1\""));
}

#[test]
fn unreadable_and_unparsable_inputs_exit_2() {
    // `src` exists but is a directory: the read itself fails. Input
    // errors are exit 2, same as a malformed command line — 1 is
    // reserved for findings at a failing severity.
    let out = opd(&["lint", "src"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("cannot read `src`"),
        "{}",
        stderr_of(&out)
    );

    // A readable file that is not a program parses to a typed error.
    let path = std::env::temp_dir().join(format!("opd_cli_errors_{}.opd", std::process::id()));
    std::fs::write(&path, "definitely not a program {{{").expect("write temp file");
    let target = path.to_str().expect("utf-8 temp path");
    let out = opd(&["trace", target]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("cannot parse"),
        "{}",
        stderr_of(&out)
    );
    let _ = std::fs::remove_file(&path);

    // Neither a built-in workload nor an existing file.
    let out = opd(&["trace", "no_such_workload"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("neither a built-in workload nor an existing file"),
        "{}",
        stderr_of(&out)
    );
}

#[test]
fn serve_checkpoint_io_errors_exit_2() {
    // Checkpoint creation happens before any shard work, so an
    // unwritable path fails fast with the typed serve error.
    let out = opd(&[
        "serve",
        "--clients",
        "4",
        "--checkpoint",
        "/nonexistent/dir/serve.opdk",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("error: serve:"),
        "{}",
        stderr_of(&out)
    );
}
