//! The committed `BENCH_cert.json` artifact: structural validity and
//! freshness. Certificates are pure functions of the IR — no trace is
//! executed and no clock is read — so freshness is byte-for-byte: the
//! regenerated document must equal the committed one exactly.

mod common;

use common::{parse_json, Json};

use opd_experiments::cert::{cert_json, CERT_FUEL};

fn committed_text() -> String {
    std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_cert.json"))
        .expect("BENCH_cert.json is committed at the repository root")
}

fn committed() -> Json {
    parse_json(&committed_text()).expect("BENCH_cert.json parses as one JSON document")
}

#[test]
fn committed_artifact_is_byte_identical_to_a_fresh_certification() {
    assert_eq!(
        committed_text(),
        cert_json(1, CERT_FUEL),
        "stale BENCH_cert.json; regenerate with `cargo run --bin opd -- certify --write`"
    );
}

#[test]
fn committed_artifact_is_structurally_valid() {
    let doc = committed();
    assert_eq!(doc.get("schema").str(), "opd-bench-cert-v1");
    assert_eq!(doc.get("scale").as_u64(), 1);
    assert_eq!(doc.get("fuel").as_u64(), CERT_FUEL);
    assert_eq!(doc.get("grid_configs").as_u64(), 28);
    assert_eq!(doc.get("workloads").as_u64(), 8);
    assert_eq!(doc.get("pairs").as_u64(), 224);

    // The headline acceptance numbers: the certified compare-op bound
    // beats the flat cost bound on every pair of the default grid.
    assert_eq!(doc.get("tighter_pairs").as_u64(), 224);
    assert!(doc.get("tighter_fraction").num() >= 0.5);
    let lints = doc.get("lints");
    assert_eq!(lints.get("a303").as_u64(), 0, "nothing over budget");
    assert_eq!(lints.get("a305").as_u64(), 0, "nothing vacuous");

    let per_workload = doc.get("per_workload").arr();
    assert_eq!(per_workload.len(), 8);
    for w in per_workload {
        let name = w.get("workload").str();
        let elements = w.get("elements").arr();
        assert!(elements[0].as_u64() <= elements[1].as_u64(), "{name}");
        assert!(elements[1].as_u64() <= CERT_FUEL, "{name}: fuel cap");
        let memory = w.get("memory_bytes").arr();
        assert!(memory[0].as_u64() >= 1, "{name}: a detector is never free");
        assert!(memory[0].as_u64() <= memory[1].as_u64(), "{name}");
        let configs = w.get("configs").arr();
        assert_eq!(configs.len(), 28, "{name}");
        for c in configs {
            let compare = c.get("compare_ops").arr();
            let bound = c.get("cost_bound").as_u64();
            assert!(
                compare[1].as_u64() <= bound,
                "{name} config {}: certified bound exceeds the cost model",
                c.get("config").as_u64(),
            );
            assert!(c.get("tighter").boolean(), "{name}: tighter on every pair");
        }
    }
}
