//! The allocation half of the zero-overhead-when-off claim for
//! causal spans: the traced service engine monomorphized over
//! `NullSpanRecorder` must allocate exactly as often as the plain
//! engine — the `R::ACTIVE` guards compile every span construction,
//! flight-ring push, and post-mortem dump out of the disabled path.
//! A counting global allocator wraps the system one; this file holds
//! a single test so no concurrent test case can perturb the counter
//! (same pattern as `tests/obs_alloc.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use opd_experiments::dash::{dash_config, dash_source};
use opd_obs::NullSpanRecorder;
use opd_serve::{
    run_service, run_service_traced, NullSubscriber, ServiceOptions, ServiceReport, TraceConfig,
};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_during(mut run: impl FnMut() -> ServiceReport) -> (ServiceReport, u64) {
    let before = ALLOCATIONS.load(Relaxed);
    let report = run();
    let count = ALLOCATIONS.load(Relaxed) - before;
    (report, count)
}

#[test]
fn null_span_traced_service_allocates_exactly_like_plain() {
    let source = dash_source(1, 96);
    let config = dash_config();
    let options = ServiceOptions {
        threads: 1,
        ..ServiceOptions::default()
    };
    let traced = || {
        run_service_traced::<NullSpanRecorder>(
            &config,
            &source,
            &options,
            &NullSubscriber,
            None,
            &TraceConfig::default(),
        )
        .expect("traced soak runs")
        .0
    };

    // Warm both arms, then pin the plain engine's run-to-run
    // allocation determinism before comparing against it.
    let _ = run_service(&config, &source, &options).expect("plain soak runs");
    let _ = traced();
    let (plain_report, plain) =
        allocations_during(|| run_service(&config, &source, &options).expect("plain soak runs"));
    let (_, plain_again) =
        allocations_during(|| run_service(&config, &source, &options).expect("plain soak runs"));
    assert_eq!(
        plain, plain_again,
        "the plain engine must allocate deterministically for this gate to mean anything"
    );

    let (traced_report, instrumented) = allocations_during(traced);
    assert_eq!(
        plain_report, traced_report,
        "traced-null and plain runs must be bit-identical"
    );
    // `<=`, not `==`: the traced driver sizes its work list exactly
    // (no checkpoint-resume filter), so it may allocate slightly
    // *fewer* times — what the gate forbids is any span-layer
    // allocation on top of the plain engine.
    assert!(
        instrumented <= plain,
        "the NullSpanRecorder path must not allocate beyond the plain engine \
         (plain {plain}, traced-null {instrumented})"
    );
}
