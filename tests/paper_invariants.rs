//! Invariants the paper's methodology implies, checked across crates:
//! the scoring metric's extremes, the headline comparisons of
//! Sections 4–5, and the compress anomaly of Figure 5.

use opd::baseline::BaselineSolution;
use opd::core::ModelPolicy;
use opd::experiments::grid::{analyzer_grid, half_mpl_cw, policy_grid, TwKind};
use opd::experiments::runner::{best_combined, sweep, PreparedWorkload};
use opd::microvm::workloads::Workload;
use opd::scoring::score_intervals;

#[test]
fn oracle_phases_scored_against_themselves_are_perfect() {
    for w in [Workload::Lexgen, Workload::Ruleng] {
        let trace = w.trace(1);
        let oracle = BaselineSolution::compute(&trace, 10_000).expect("well nested");
        let score = score_intervals(oracle.phases(), &oracle);
        assert!((score.combined() - 1.0).abs() < 1e-12, "{w}: {score}");
    }
}

#[test]
fn empty_detector_scores_exactly_its_correlation_half() {
    let trace = Workload::Lexgen.trace(1);
    let oracle = BaselineSolution::compute(&trace, 10_000).expect("well nested");
    let score = score_intervals(&[], &oracle);
    // No boundaries detected: sensitivity 0, no false positives; the
    // combined score is corr/2 + 1/4.
    let expected = score.correlation / 2.0 + 0.25;
    assert!((score.combined() - expected).abs() < 1e-12);
}

#[test]
fn skip_factor_one_beats_fixed_interval_at_small_mpl() {
    // The paper's Figure 4 headline, on two benchmarks at MPL = 1K.
    for w in [Workload::Audiodec, Workload::Tracer] {
        let prepared = PreparedWorkload::prepare(w, 1, &[1_000]);
        let cw = half_mpl_cw(1_000);
        let oracle = prepared.oracle(1_000);
        let fixed = best_combined(
            &sweep(&prepared, &policy_grid(TwKind::FixedInterval, cw), 1),
            oracle,
        );
        let constant = best_combined(
            &sweep(&prepared, &policy_grid(TwKind::Constant, cw), 1),
            oracle,
        );
        let adaptive = best_combined(
            &sweep(&prepared, &policy_grid(TwKind::Adaptive, cw), 1),
            oracle,
        );
        assert!(
            constant > fixed && adaptive > fixed,
            "{w}: fixed {fixed:.3} constant {constant:.3} adaptive {adaptive:.3}"
        );
    }
}

#[test]
fn weighted_model_wins_on_the_compress_analogue() {
    // Figure 5's anomaly: _201_compress is the one benchmark where the
    // weighted model clearly beats the unweighted one, because its
    // phases share a working set and differ only in frequencies.
    let prepared = PreparedWorkload::prepare(Workload::Blockcomp, 1, &[1_000]);
    let oracle = prepared.oracle(1_000);
    let cw = half_mpl_cw(1_000);
    let weighted = best_combined(
        &sweep(
            &prepared,
            &analyzer_grid(TwKind::Constant, cw, ModelPolicy::WeightedSet),
            1,
        ),
        oracle,
    );
    let unweighted = best_combined(
        &sweep(
            &prepared,
            &analyzer_grid(TwKind::Constant, cw, ModelPolicy::UnweightedSet),
            1,
        ),
        oracle,
    );
    assert!(
        weighted > unweighted * 1.25,
        "weighted {weighted:.3} vs unweighted {unweighted:.3}"
    );
}

#[test]
fn unweighted_model_wins_on_a_typical_benchmark() {
    // ... while on ordinary benchmarks the unweighted model is at
    // least as accurate (Section 4.3's general conclusion).
    let prepared = PreparedWorkload::prepare(Workload::Audiodec, 1, &[1_000]);
    let oracle = prepared.oracle(1_000);
    let cw = half_mpl_cw(1_000);
    let weighted = best_combined(
        &sweep(
            &prepared,
            &analyzer_grid(TwKind::Constant, cw, ModelPolicy::WeightedSet),
            1,
        ),
        oracle,
    );
    let unweighted = best_combined(
        &sweep(
            &prepared,
            &analyzer_grid(TwKind::Constant, cw, ModelPolicy::UnweightedSet),
            1,
        ),
        oracle,
    );
    assert!(
        unweighted >= weighted,
        "unweighted {unweighted:.3} vs weighted {weighted:.3}"
    );
}

#[test]
fn cw_smaller_than_mpl_beats_cw_larger_than_mpl() {
    // Table 2's conclusion, spot-checked on one benchmark at MPL 10K.
    let prepared = PreparedWorkload::prepare(Workload::Querydb, 1, &[10_000]);
    let oracle = prepared.oracle(10_000);
    let small = best_combined(
        &sweep(&prepared, &policy_grid(TwKind::Constant, 5_000), 1),
        oracle,
    );
    let large = best_combined(
        &sweep(&prepared, &policy_grid(TwKind::Constant, 50_000), 1),
        oracle,
    );
    assert!(small > large, "small {small:.3} vs large {large:.3}");
}

#[test]
fn figure_2_walkthrough() {
    // The paper's Figure 2 narrative, row by row, for both trailing
    // window policies (skipFactor 1, CW = TW = 5):
    //   A/B: windows filling            -> T
    //   C:   full but dissimilar        -> T
    //   D:   new phase detected         -> P
    //   E:   phase continues            -> P  (adaptive TW grows)
    //   F:   phase ends                 -> T  (windows flushed, CW
    //                                          re-seeded with the last
    //                                          skipFactor elements)
    //   G:   refilling                  -> T
    use opd::core::{AnalyzerPolicy, DetectorConfig, PhaseDetector, TwPolicy};
    use opd::trace::{MethodId, PhaseState, ProfileElement};

    let elem = |site: u32| ProfileElement::new(MethodId::new(0), site, true);

    for policy in [TwPolicy::Constant, TwPolicy::Adaptive] {
        let config = DetectorConfig::builder()
            .current_window(5)
            .trailing_window(5)
            .skip_factor(1)
            .tw_policy(policy)
            .analyzer(AnalyzerPolicy::Threshold(0.6))
            .build()
            .unwrap();
        let mut d = PhaseDetector::new(config);

        // Rows A-B: ten distinct transition elements fill the windows.
        for site in 0..10 {
            assert_eq!(
                d.process(&[elem(site)]),
                PhaseState::Transition,
                "{policy}: fill"
            );
        }
        // Row C: full windows, disjoint contents: still T.
        assert_eq!(
            d.process(&[elem(10)]),
            PhaseState::Transition,
            "{policy}: row C"
        );

        // Feed a stable phase (one repeated site). The detector turns
        // P once the repeated site dominates both windows (row D) —
        // necessarily after the true phase start.
        let mut first_p = None;
        for i in 0..20 {
            if d.process(&[elem(100)]).is_phase() {
                first_p = Some(i);
                break;
            }
        }
        let first_p = first_p.expect("phase detected (row D)");
        assert!(first_p >= 5, "detection is necessarily late, got {first_p}");

        // Row E: the phase continues.
        for _ in 0..30 {
            assert_eq!(
                d.process(&[elem(100)]),
                PhaseState::Phase,
                "{policy}: row E"
            );
        }
        if policy == TwPolicy::Adaptive {
            assert!(
                d.windows().tw_len() > d.windows().tw_cap(),
                "adaptive TW holds the whole phase (Figure 2b)"
            );
        } else {
            assert_eq!(
                d.windows().tw_len(),
                5,
                "constant TW stays fixed (Figure 2a)"
            );
        }

        // Row F: the phase ends at the first dissimilar element.
        assert_eq!(
            d.process(&[elem(200)]),
            PhaseState::Transition,
            "{policy}: row F"
        );
        // Windows were flushed and the CW re-seeded with the last
        // skipFactor (= 1) elements.
        assert_eq!(d.windows().tw_len(), 0, "{policy}: TW flushed");
        assert_eq!(d.windows().cw_len(), 1, "{policy}: CW re-seeded");

        // Row G: refilling keeps reporting T.
        for site in 201..209 {
            assert_eq!(
                d.process(&[elem(site)]),
                PhaseState::Transition,
                "{policy}: row G"
            );
        }
    }
}

#[test]
fn online_detectors_are_necessarily_late() {
    // Section 3.2: a perfect correlation score is impossible online —
    // the windows must fill before the first phase can be reported.
    let prepared = PreparedWorkload::prepare(Workload::Lexgen, 1, &[10_000]);
    let oracle = prepared.oracle(10_000);
    let runs = sweep(&prepared, &policy_grid(TwKind::Adaptive, 5_000), 1);
    for run in &runs {
        let s = run.score(oracle);
        assert!(s.correlation < 1.0, "online detector cannot be perfect");
    }
}
