//! The `--json` stdout contract: every subcommand with a
//! machine-readable mode must put exactly one JSON document on stdout
//! (human chatter goes to stderr via the `Reporter`), validated with
//! the hand-rolled parser in `common` — the vendored serde_json is an
//! inert offline shim.

mod common;

use common::{opd, parse_json, stdout_json, stdout_json_any, Json};

#[test]
fn lint_json_stdout_is_one_json_document() {
    let out = opd(&["lint", "--json", "lexgen"]);
    let doc = stdout_json(&out);
    assert!(doc.get("lexgen").has("diagnostics"));
}

#[test]
fn bounds_stdout_is_one_json_document() {
    let doc = stdout_json(&opd(&["bounds"]));
    assert!(matches!(doc, Json::Obj(_)));
}

#[test]
fn plan_json_stdout_is_one_json_document() {
    let doc = stdout_json(&opd(&["plan", "--json"]));
    assert!(matches!(doc, Json::Obj(_)));
}

#[test]
fn plan_json_write_keeps_stdout_clean() {
    // `--write` regenerates the committed (deterministic)
    // BENCH_plan.json in place; the "wrote ..." confirmation must not
    // pollute the JSON payload on stdout.
    let out = opd(&["plan", "--json", "--write"]);
    let doc = stdout_json(&out);
    assert!(matches!(doc, Json::Obj(_)));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("wrote "),
        "write confirmation should land on stderr in --json mode, got:\n{stderr}"
    );
}

#[test]
fn trace_json_stdout_is_one_json_document() {
    let out = opd(&[
        "trace", "lexgen", "--json", "--limit", "5", "--fuel", "20000",
    ]);
    let doc = stdout_json(&out);
    assert_eq!(doc.get("target").str(), "lexgen");
    assert_eq!(doc.get("config").get("cw").as_u64(), 500);
    let summary = doc.get("summary");
    assert_eq!(summary.get("elements").as_u64(), 20_000);
    assert_eq!(summary.get("shown").as_u64(), 5);
    assert_eq!(doc.get("events").arr().len(), 5);
    assert!(summary.get("events").as_u64() >= 5);
    // Each shown event is an object with a discriminating "type" tag.
    for event in doc.get("events").arr() {
        assert!(!event.get("type").str().is_empty());
    }
}

#[test]
fn trace_json_with_zero_limit_renders_an_empty_event_array() {
    let out = opd(&[
        "trace", "lexgen", "--json", "--limit", "0", "--fuel", "6000",
    ]);
    let doc = stdout_json(&out);
    assert!(doc.get("events").arr().is_empty());
    assert_eq!(doc.get("summary").get("shown").as_u64(), 0);
    assert!(doc.get("summary").get("events").as_u64() > 0);
}

#[test]
fn trace_json_respects_config_spec() {
    let out = opd(&[
        "trace",
        "lexgen",
        "--json",
        "--limit",
        "0",
        "--fuel",
        "6000",
        "--config",
        "cw=200,skip=4",
    ]);
    let doc = stdout_json(&out);
    assert_eq!(doc.get("config").get("cw").as_u64(), 200);
    assert_eq!(doc.get("config").get("skip").as_u64(), 4);
    // skip=4 quarters the number of steps; at most 5 events per step
    // (step, similarity, decision, and one transition pair) plus the
    // end-of-trace phase_end.
    assert!(doc.get("summary").get("events").as_u64() <= 6_000 / 4 * 5 + 1);
}

#[test]
fn trace_kind_filter_keeps_only_the_named_event_kinds() {
    let out = opd(&[
        "trace",
        "lexgen",
        "--json",
        "--fuel",
        "6000",
        "--kind",
        "phase_start,phase_end",
    ]);
    let doc = stdout_json(&out);
    assert!(doc.get("summary").get("events").as_u64() > 0);
    for event in doc.get("events").arr() {
        let tag = event.get("type").str();
        assert!(
            tag == "phase_start" || tag == "phase_end",
            "unfiltered event {tag}"
        );
    }
}

#[test]
fn top_json_stdout_is_one_json_document() {
    let out = opd(&["top", "--once", "--json"]);
    let doc = stdout_json(&out);
    assert_eq!(doc.get("schema").str(), "opd-top-v1");
    assert_eq!(doc.get("verify_failures").as_u64(), 0);
    assert!(doc.get("latency_ticks").get("p99").num() > 0.0);
    assert!(doc.get("span_digest").str().starts_with("0x"));
    // The committed SLO policy holds on the committed soak.
    assert!(doc.get("slo_burns").arr().is_empty());
}

#[test]
fn top_json_slo_burns_exit_1_with_the_burn_code() {
    let out = opd(&["top", "--once", "--json", "--slo-p99", "0"]);
    assert_eq!(out.status.code(), Some(1), "an SLO burn is a failure");
    let doc = stdout_json_any(&out);
    let burns = doc.get("slo_burns").arr();
    assert!(!burns.is_empty());
    assert_eq!(burns[0].get("code").str(), "OPD-O401");
    assert!(burns[0].get("location").str().starts_with("window "));
}

#[test]
fn metrics_dump_json_stdout_is_one_json_document() {
    let out = opd(&["metrics-dump", "--clients", "48", "--json"]);
    let doc = stdout_json(&out);
    assert_eq!(doc.get("schema").str(), "opd-metrics-v1");
    assert!(doc.get("counters").get("serve.frames_processed").as_u64() > 0);
    let latency = doc.get("histograms").get("serve.frame_latency_ticks");
    assert!(latency.get("count").as_u64() > 0);
    assert!(latency.get("p99").num() >= latency.get("p50").num());
}

#[test]
fn metrics_dump_text_is_a_prometheus_exposition() {
    let out = opd(&["metrics-dump", "--clients", "48"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("# TYPE opd_serve_frames_processed counter"),
        "{stdout}"
    );
    assert!(
        stdout.contains("opd_serve_frame_latency_ticks_count"),
        "{stdout}"
    );
}

#[test]
fn sweep_stats_json_stdout_is_one_json_document() {
    let out = opd(&[
        "sweep",
        "--stats",
        "--json",
        "--fuel",
        "6000",
        "--threads",
        "2",
    ]);
    let doc = stdout_json(&out);
    assert_eq!(doc.get("schema").str(), "opd-bench-obs-v2");
    assert_eq!(doc.get("kernel").str(), "swar");
    assert_eq!(doc.get("grid_configs").as_u64(), 28);
    let buckets = doc.get("buckets").arr();
    assert_eq!(buckets.len(), 8, "one shared bucket per workload");
    for bucket in buckets {
        assert!(bucket.get("shared").boolean());
        assert_eq!(bucket.get("kernel").str(), "swar");
        assert_eq!(bucket.get("members").as_u64(), 28);
        assert!(
            bucket.get("compare_ops").as_u64() <= bucket.get("static_compare_bound").as_u64(),
            "bucket exceeds its static comparison-op bound: {bucket:?}"
        );
        assert!(bucket.get("compare_ops_per_sec").num() >= 0.0);
    }
    // In --json mode the human lines (accuracy table, profile table,
    // overhead line) must all be on stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mean combined accuracy"));
    assert!(stderr.contains("null-observer overhead"));
}

#[test]
fn sweep_json_without_stats_is_a_usage_error() {
    let out = opd(&["sweep", "--json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--stats"));
}

#[test]
fn sweep_stats_rejects_checkpoint() {
    let out = opd(&["sweep", "--stats", "--checkpoint", "/tmp/nope.ckpt"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--checkpoint"));
}

#[test]
fn trace_usage_errors_exit_2() {
    for args in [
        &["trace"][..],
        &["trace", "no-such-workload"][..],
        &["trace", "lexgen", "--config", "cw=0"][..],
        &["trace", "lexgen", "--config", "volume=11"][..],
        &["trace", "lexgen", "--limit", "many"][..],
    ] {
        let out = opd(args);
        assert_eq!(out.status.code(), Some(2), "expected usage error: {args:?}");
    }
}

#[test]
fn trace_human_mode_summarises_on_stdout() {
    let out = opd(&["trace", "lexgen", "--limit", "3", "--fuel", "6000"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("more event(s)"));
    assert!(stdout.contains("trace: lexgen: 6000 element(s)"));
}

#[test]
fn parser_rejects_malformed_documents() {
    for bad in ["", "{", "[1,]", "{\"a\":1} extra", "{\"a\" 1}", "nul"] {
        assert!(parse_json(bad).is_err(), "accepted {bad:?}");
    }
    let doc = parse_json(" {\"a\": [1, -2.5e3, true, null, \"x\\n\"]} ").unwrap();
    assert_eq!(doc.get("a").arr().len(), 5);
}
