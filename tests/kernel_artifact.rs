//! The committed `BENCH_kernel.json` artifact: structural validity,
//! the kernel-rewrite acceptance lines (SWAR full-grid sweep under
//! budget and at least the minimum speedup over the pre-rewrite
//! baseline, bit-identical results across kernels), and freshness of
//! every deterministic field — the grid size and trace shape are
//! regenerated and must match exactly (only the wall-clock timings
//! are machine-dependent).

mod common;

use common::{parse_json, Json};

use opd_experiments::grid::full_grid;
use opd_experiments::kernel_bench::{
    BASELINE_SWEEP_SECONDS, MIN_BASELINE_SPEEDUP, SWAR_BUDGET_SECONDS,
};
use opd_experiments::runner::PreparedWorkload;
use opd_microvm::workloads::Workload;

fn committed() -> Json {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_kernel.json"))
        .expect("BENCH_kernel.json is committed at the repository root");
    parse_json(&text).expect("BENCH_kernel.json parses as one JSON document")
}

#[test]
fn committed_artifact_meets_the_acceptance_lines() {
    let doc = committed();
    assert_eq!(doc.get("schema").str(), "opd-bench-kernel-v1");
    assert_eq!(doc.get("workload").str(), "ruleng");
    assert_eq!(
        doc.get("baseline_sweep_seconds").num(),
        BASELINE_SWEEP_SECONDS
    );
    assert!(doc.get("threads").as_u64() >= 1);

    let kernels = doc.get("kernels").arr();
    assert_eq!(kernels.len(), 2);
    let swar = &kernels[0];
    let scalar = &kernels[1];
    assert_eq!(swar.get("kernel").str(), "swar");
    assert_eq!(scalar.get("kernel").str(), "scalar");

    let swar_seconds = swar.get("sweep_seconds").num();
    assert!(
        swar_seconds < SWAR_BUDGET_SECONDS,
        "recorded SWAR sweep {swar_seconds:.1}s exceeds the {SWAR_BUDGET_SECONDS:.0}s budget; \
         regenerate with `cargo run --release -p opd-experiments --bin sweep -- --write-bench`"
    );
    let speedup = swar.get("speedup_vs_baseline").num();
    assert!(
        speedup >= MIN_BASELINE_SPEEDUP,
        "recorded SWAR speedup {speedup:.2}x is below the {MIN_BASELINE_SPEEDUP:.0}x line"
    );
    // The recorded speedup must be the recorded division, not a
    // hand-edited number (two decimals of rounding slack).
    assert!((speedup - BASELINE_SWEEP_SECONDS / swar_seconds).abs() < 0.01);
    assert!(scalar.get("sweep_seconds").num() > 0.0);
    assert!(doc.get("swar_speedup_vs_scalar").num() >= 1.0);

    assert!(
        doc.get("results_identical").boolean(),
        "the committed benchmark saw the kernels diverge"
    );
}

#[test]
fn committed_artifact_is_fresh_for_the_current_grid_and_workload() {
    // Regenerate the deterministic fields: the swept grid and the
    // benchmark trace must be the ones the committed timings measured.
    let doc = committed();
    assert_eq!(doc.get("grid_configs").as_u64(), full_grid().len() as u64);
    let scale = doc.get("scale").as_u64() as u32;
    let prepared = PreparedWorkload::prepare(Workload::Ruleng, scale, &[]);
    assert_eq!(
        doc.get("trace_elements").as_u64(),
        prepared.total_elements(),
        "stale trace_elements; regenerate with \
         `cargo run --release -p opd-experiments --bin sweep -- --write-bench`"
    );
    assert_eq!(
        doc.get("trace_distinct").as_u64(),
        u64::from(prepared.interned().distinct_count())
    );
}
