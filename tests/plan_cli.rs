//! End-to-end tests of the `opd plan` subcommand, the `opd lint
//! --json` exit-code contract, and the committed `BENCH_plan.json`
//! artifact's freshness.

use std::process::Command;

fn opd(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_opd"))
        .args(args)
        .output()
        .expect("spawn opd")
}

#[test]
fn plan_reports_classes_and_matching_scan_counts() {
    let out = opd(&["plan"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("28 config(s)"), "{stdout}");
    assert!(stdout.contains("28 equivalence class(es)"), "{stdout}");
    // The cost model's scan prediction agreed with the engine; on
    // mismatch the binary fails before printing this line.
    assert!(
        stdout.contains("predicted full=1 pruned=1, engine=1 (exact match)"),
        "{stdout}"
    );
}

#[test]
fn plan_json_emits_the_grid_summary() {
    let out = opd(&["plan", "--json"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"grid\":28"), "{stdout}");
    assert!(stdout.contains("\"pruned\":28"), "{stdout}");
    assert!(stdout.contains("\"predicted_scans_full\":1"), "{stdout}");
    assert!(stdout.contains("\"diagnostics\":[]"), "{stdout}");
}

#[test]
fn plan_prune_backs_irredundancy_with_axis_witnesses() {
    let out = opd(&["plan", "--prune"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("pruned grid (28 config(s))"), "{stdout}");
    // The default grid is provably irredundant, so the report must
    // say so and certify distinctness dynamically, axis by axis.
    assert!(stdout.contains("irredundant"), "{stdout}");
    assert!(
        stdout.contains("axis model: 10/10"),
        "model-axis pairs must all be separated: {stdout}"
    );
    assert!(
        stdout.contains("axis analyzer: 198/198"),
        "analyzer-axis pairs must all be separated: {stdout}"
    );
    assert!(
        stdout.contains("208 pair(s) witnessed, 0 undecided"),
        "{stdout}"
    );
}

#[test]
fn plan_rejects_unknown_arguments() {
    let out = opd(&["plan", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = opd(&["plan", "extra"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn lint_json_still_fails_on_error_diagnostics() {
    // `--json` changes the output format, not the exit-code contract:
    // any OPD-E* diagnostic must fail the process.
    let dir = std::env::temp_dir().join("opd_plan_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let listing = dir.join("unguarded.opd");
    std::fs::write(
        &listing,
        "fn main (f0) // entry {\n  branch @0 p=1.0\n  call f0(5)\n}\n",
    )
    .unwrap();
    let out = opd(&["lint", "--json", listing.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("OPD-E002"), "{stdout}");
    assert!(stdout.contains("\"severity\":\"error\""), "{stdout}");
    // A clean program under --json still exits 0.
    let out = opd(&["lint", "--json", "lexgen"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn committed_plan_artifact_is_current() {
    let committed =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_plan.json"))
            .expect("BENCH_plan.json is committed at the repository root");
    let regenerated = opd_experiments::analysis::plan_json(1);
    assert_eq!(
        committed, regenerated,
        "BENCH_plan.json is stale; regenerate with `opd plan --write`"
    );
}
