//! Service-level crash recovery: SIGKILL `opd serve` mid-soak, resume
//! from its OPDK checkpoint, and require the aggregate phase-stream
//! digest to be bit-identical to an uninterrupted run.
//!
//! This is the end-to-end form of the serve crate's checkpoint tests:
//! the kill lands at an arbitrary byte boundary (possibly mid-record),
//! so it also exercises the longest-valid-prefix recovery path.

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const CLIENTS: &str = "2000";

fn opd(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_opd"))
        .args(args)
        .output()
        .expect("spawn opd")
}

/// Pulls the `"digest": "0x…"` line out of a serve `--json` document.
fn digest_line(stdout: &[u8]) -> String {
    String::from_utf8_lossy(stdout)
        .lines()
        .find(|l| l.contains("\"digest\""))
        .expect("serve --json prints a digest")
        .trim()
        .trim_end_matches(',')
        .to_owned()
}

fn restored_vshards(stdout: &[u8]) -> u64 {
    let text = String::from_utf8_lossy(stdout);
    let line = text
        .lines()
        .find(|l| l.contains("\"restored_vshards\""))
        .expect("serve --json prints restored_vshards");
    let tail = line
        .split("\"restored_vshards\":")
        .nth(1)
        .expect("field has a value");
    tail.trim()
        .trim_end_matches(',')
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap_or("")
        .parse()
        .expect("restored_vshards is a number")
}

#[test]
fn sigkill_mid_soak_resumes_bit_identically() {
    let dir = std::env::temp_dir().join(format!("opd_serve_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let ckpt = dir.join("serve.opdk");
    let ckpt_str = ckpt.to_str().expect("utf-8 temp path");

    // The reference: the same soak, uninterrupted, no checkpoint.
    let reference = opd(&["serve", "--clients", CLIENTS, "--json"]);
    assert!(
        reference.status.success(),
        "{}",
        String::from_utf8_lossy(&reference.stderr)
    );
    let expected = digest_line(&reference.stdout);

    // Start the checkpointed soak and SIGKILL it as soon as at least
    // one vshard record has landed (the header is 14 bytes).
    let mut child = Command::new(env!("CARGO_BIN_EXE_opd"))
        .args([
            "serve",
            "--clients",
            CLIENTS,
            "--checkpoint",
            ckpt_str,
            "--json",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn opd serve");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut finished_first = false;
    loop {
        if std::fs::metadata(&ckpt).is_ok_and(|md| md.len() > 14) {
            break;
        }
        if child.try_wait().expect("poll child").is_some() {
            finished_first = true;
            break;
        }
        assert!(Instant::now() < deadline, "soak never wrote a record");
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = child.kill();
    let _ = child.wait();

    // Resume: recompute only the missing vshards, same digest.
    let resumed = opd(&[
        "serve",
        "--clients",
        CLIENTS,
        "--checkpoint",
        ckpt_str,
        "--resume",
        "--json",
    ]);
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        digest_line(&resumed.stdout),
        expected,
        "a resumed soak must reproduce the uninterrupted phase streams"
    );
    if !finished_first {
        assert!(
            restored_vshards(&resumed.stdout) > 0,
            "the kill landed after a record, so resume must restore something"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
