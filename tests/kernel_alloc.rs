//! Allocation discipline of the window kernels: a steady-state
//! detector run allocates nothing on either kernel — including
//! Pearson on the SWAR kernel, whose scalar counterpart needs a
//! per-judgement site union — and pre-sizing the site tables from the
//! static alphabet bound (`reserve_sites`, backed by
//! `Windows::with_site_capacity`) moves every site-table growth out of
//! the first run. A counting global allocator wraps the system one;
//! this file holds only these tests so no concurrent case perturbs
//! the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use opd_core::{DetectorConfig, InternedTrace, KernelKind, ModelPolicy, PhaseDetector};
use opd_microvm::workloads::Workload;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_during(mut run: impl FnMut()) -> u64 {
    let before = ALLOCATIONS.load(Relaxed);
    run();
    ALLOCATIONS.load(Relaxed) - before
}

fn workload_branches(fuel: u64) -> opd_trace::BranchTrace {
    let workload = Workload::Lexgen;
    let program = workload.program(1);
    let mut execution = opd_trace::ExecutionTrace::new();
    opd_microvm::Interpreter::new(&program, workload.default_seed())
        .with_fuel(fuel)
        .run(&mut execution)
        .expect("workload executes");
    let (branches, _) = execution.into_parts();
    branches
}

fn workload_trace(fuel: u64) -> InternedTrace {
    InternedTrace::from_elements(workload_branches(fuel).iter().copied())
}

fn config_for(model: ModelPolicy) -> DetectorConfig {
    DetectorConfig::builder()
        .current_window(500)
        .model(model)
        .build()
        .expect("valid config")
}

#[test]
fn swar_steady_state_allocates_nothing_for_every_model() {
    let trace = workload_trace(20_000);
    for model in ModelPolicy::ALL_EXTENDED {
        let config = config_for(model);
        let mut detector = PhaseDetector::with_kernel(config, KernelKind::Swar);
        // Warm-up sizes the SWAR count/bit lanes and the phase buffer;
        // `reconfigure` clears state but keeps every capacity.
        let _ = detector.run_interned_phases_only(&trace);
        detector.reconfigure(config);
        let steady = allocations_during(|| {
            let _ = detector.run_interned_phases_only(&trace);
        });
        assert_eq!(steady, 0, "{model:?}: SWAR steady state allocated");
    }
}

#[test]
fn scalar_steady_state_allocates_nothing_for_set_models() {
    let trace = workload_trace(20_000);
    // Scalar Pearson builds a per-judgement site union, so the
    // scalar guarantee covers the set models only — one of the
    // reasons the SWAR kernel is the default.
    for model in [ModelPolicy::UnweightedSet, ModelPolicy::WeightedSet] {
        let config = config_for(model);
        let mut detector = PhaseDetector::with_kernel(config, KernelKind::Scalar);
        let _ = detector.run_interned_phases_only(&trace);
        detector.reconfigure(config);
        let steady = allocations_during(|| {
            let _ = detector.run_interned_phases_only(&trace);
        });
        assert_eq!(steady, 0, "{model:?}: scalar steady state allocated");
    }
}

#[test]
fn reserving_sites_up_front_moves_growth_out_of_the_first_streaming_run() {
    // The streaming path interns sites one at a time, so an
    // unreserved detector grows its site tables incrementally as new
    // sites appear mid-trace. `reserve_sites` (backed by
    // `Windows::with_site_capacity`) pre-sizes them in one shot; both
    // arms still pay the same interner and state-sequence
    // allocations.
    let branches = workload_branches(20_000);
    let distinct = workload_trace(20_000).distinct_count() as usize;
    let config = config_for(ModelPolicy::WeightedSet);
    let cold = allocations_during(|| {
        let mut detector = PhaseDetector::new(config);
        let _ = detector.run(&branches);
    });
    let presized = allocations_during(|| {
        let mut detector = PhaseDetector::new(config);
        detector.reserve_sites(distinct);
        let _ = detector.run(&branches);
    });
    assert!(
        presized < cold,
        "pre-sizing did not remove first-run growth (cold {cold}, presized {presized})"
    );
}

#[test]
fn interned_first_runs_size_their_tables_in_one_shot() {
    // The interned paths pre-size from the trace's distinct count on
    // entry (SWAR lanes and counts, scalar site lists), so even a
    // cold first run performs a small constant number of allocations
    // — table sizing plus the phase buffer — never per-site growth.
    let trace = workload_trace(20_000);
    let config = config_for(ModelPolicy::WeightedSet);
    for kernel in [KernelKind::Swar, KernelKind::Scalar] {
        let cold = allocations_during(|| {
            let mut detector = PhaseDetector::with_kernel(config, kernel);
            let _ = detector.run_interned_phases_only(&trace);
        });
        assert!(
            cold <= 16,
            "{kernel}: cold interned run allocated {cold} times; \
             site tables are growing incrementally"
        );
    }
}
