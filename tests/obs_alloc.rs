//! The allocation half of the zero-overhead-when-off claim: a
//! steady-state detector run through the instrumented path with a
//! `NullObserver` must allocate exactly as much as the uninstrumented
//! path — nothing. A counting global allocator wraps the system one;
//! this file holds a single test so no concurrent test case can
//! perturb the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use opd_core::{DetectorConfig, InternedTrace, ModelPolicy, PhaseDetector};
use opd_microvm::workloads::Workload;
use opd_obs::NullObserver;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_during(mut run: impl FnMut()) -> u64 {
    let before = ALLOCATIONS.load(Relaxed);
    run();
    ALLOCATIONS.load(Relaxed) - before
}

#[test]
fn null_observed_steady_state_allocates_nothing() {
    let workload = Workload::Lexgen;
    let program = workload.program(1);
    let mut execution = opd_trace::ExecutionTrace::new();
    opd_microvm::Interpreter::new(&program, workload.default_seed())
        .with_fuel(20_000)
        .run(&mut execution)
        .expect("workload executes");
    let trace = InternedTrace::from_elements(execution.branches().iter().copied());

    // Pearson similarity builds a site-union scratch per judgement,
    // so the allocation-free guarantee covers the set models; both
    // tracked-window models take the zero-allocation path.
    for model in [ModelPolicy::UnweightedSet, ModelPolicy::WeightedSet] {
        let config = DetectorConfig::builder()
            .current_window(500)
            .model(model)
            .build()
            .expect("valid config");
        let mut detector = PhaseDetector::new(config);

        // Warm-up: sizes the site tables and the phase buffer. The
        // follow-up runs reuse them via `reconfigure`, which clears
        // state but keeps capacity.
        let _ = detector.run_interned_phases_observed(&trace, &mut NullObserver);

        detector.reconfigure(config);
        let plain = allocations_during(|| {
            let _ = detector.run_interned_phases_only(&trace);
        });
        assert_eq!(plain, 0, "{model:?}: uninstrumented steady state allocated");

        detector.reconfigure(config);
        let observed = allocations_during(|| {
            let _ = detector.run_interned_phases_observed(&trace, &mut NullObserver);
        });
        assert_eq!(
            observed, 0,
            "{model:?}: null-observed steady state allocated"
        );
    }
}
