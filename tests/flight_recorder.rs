//! The flight-recorder contract, from the traced engine to the CLI:
//! post-mortem dumps are deterministic under seeded hazards,
//! round-trip through their text format, and the
//! `opd serve --smoke --postmortem-dir` → `opd flight` walkthrough
//! documented in the README works end to end.

mod common;

use common::{opd, parse_json};

use opd_experiments::dash::{dash_config, dash_source};
use opd_obs::SpanLog;
use opd_serve::{
    run_service_traced, NullSubscriber, Postmortem, ServiceOptions, TraceConfig, POSTMORTEM_HEADER,
};

#[test]
fn postmortem_dumps_are_deterministic_under_seeded_hazards() {
    let source = dash_source(1, 180);
    let config = dash_config();
    let run = || {
        run_service_traced::<SpanLog>(
            &config,
            &source,
            &ServiceOptions::default(),
            &NullSubscriber,
            None,
            &TraceConfig::default(),
        )
        .expect("traced soak runs")
        .1
    };
    let (one, two) = (run(), run());
    assert!(!one.postmortems.is_empty(), "seeded hazards must kill");
    assert_eq!(one.postmortems, two.postmortems);

    for pm in &one.postmortems {
        // Each dump is a self-contained document: header, one kill
        // line, one counter line, the ring's spans — and it parses
        // back to exactly the in-memory record.
        let rendered = pm.render();
        assert!(rendered.starts_with(POSTMORTEM_HEADER));
        let parsed = Postmortem::parse(&rendered).expect("post-mortem round-trips");
        assert_eq!(&parsed, pm);
        assert!(pm.recent.len() as u64 <= pm.spans_recorded);
        for s in &pm.recent {
            assert_eq!(s.client, pm.client, "ring spans belong to the session");
        }
    }
}

#[test]
fn serve_postmortem_dir_to_flight_walkthrough() {
    let dir = std::env::temp_dir().join(format!("opd_flight_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_str = dir.to_str().expect("utf-8 temp path");

    let out = opd(&["serve", "--smoke", "--postmortem-dir", dir_str]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("post-mortem(s) to"), "{stdout}");

    let mut dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("post-mortem dir exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    dumps.sort();
    assert!(!dumps.is_empty(), "the smoke soak must dump post-mortems");
    let first = dumps[0].to_str().expect("utf-8 path");

    let human = opd(&["flight", first]);
    assert!(
        human.status.success(),
        "{}",
        String::from_utf8_lossy(&human.stderr)
    );
    let text = String::from_utf8_lossy(&human.stdout);
    assert!(text.contains("post-mortem: client"), "{text}");
    assert!(text.contains("flight ring:"), "{text}");

    let json = opd(&["flight", first, "--json"]);
    assert!(json.status.success());
    let doc = parse_json(&String::from_utf8_lossy(&json.stdout))
        .expect("flight --json emits one JSON document");
    assert_eq!(doc.get("schema").str(), "opd-postmortem-v1");
    assert!(!doc.get("reason").str().is_empty());

    // A readable file that is not a post-mortem is an input error.
    let junk = dir.join("junk.pm");
    std::fs::write(&junk, "not a post-mortem").expect("write junk");
    let bad = opd(&["flight", junk.to_str().expect("utf-8 path")]);
    assert_eq!(bad.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spans_out_round_trips_through_opd_trace() {
    let path = std::env::temp_dir().join(format!("opd_spans_{}.log", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");

    let out = opd(&["serve", "--smoke", "--spans-out", path_str]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The span log replays through `opd trace`, filtered by kind and
    // session, as one JSON document.
    let traced = opd(&[
        "trace",
        path_str,
        "--kind",
        "quarantine",
        "--json",
        "--limit",
        "5",
    ]);
    assert!(
        traced.status.success(),
        "{}",
        String::from_utf8_lossy(&traced.stderr)
    );
    let doc = parse_json(&String::from_utf8_lossy(&traced.stdout))
        .expect("trace --json emits one JSON document");
    assert!(doc.get("summary").get("matched").as_u64() > 0);
    for span in doc.get("spans").arr() {
        assert_eq!(span.get("kind").str(), "quarantine");
    }

    let _ = std::fs::remove_file(&path);
}
