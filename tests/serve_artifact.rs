//! Freshness and acceptance tests for the committed
//! `BENCH_serve.json` artifact and the `opd serve` / `opd loadgen`
//! CLI surface.
//!
//! The serve study is a deterministic virtual-time simulation — no
//! wall-clock, no host data — so freshness is byte-for-byte equality,
//! like `BENCH_faults.json` and `BENCH_cert.json`.

use std::process::Command;

use opd_experiments::serve::{shed_study, soak, SHED_CAPACITIES, SOAK_CLIENTS};
use opd_serve::BackpressureMode;

fn opd(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_opd"))
        .args(args)
        .output()
        .expect("spawn opd")
}

#[test]
fn committed_serve_artifact_is_current() {
    let committed =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_serve.json"))
            .expect("BENCH_serve.json is committed at the repository root");
    let regenerated = opd_experiments::serve::serve_json(1);
    assert_eq!(
        committed, regenerated,
        "BENCH_serve.json is stale; regenerate with `opd loadgen --write`"
    );
}

#[test]
fn soak_acceptance_holds_at_full_scale() {
    // The tentpole acceptance line: the full client count, with
    // faults and hazards firing, no panic, exact frame conservation,
    // and every surviving session's phase stream bit-identical to the
    // offline detector on the same post-fault input.
    let report = soak(1, SOAK_CLIENTS, 0).expect("soak runs");
    assert_eq!(report.sessions.len() as u64, u64::from(SOAK_CLIENTS));
    assert!(report.restarts() > 0, "hazards must actually fire");
    assert!(report.corrupt_frames() > 0, "faults must actually corrupt");
    assert_eq!(report.verify_failures(), 0, "bit-identity is the gate");
    assert!(report.conservation_holds(), "frames must be conserved");
}

#[test]
fn soak_is_thread_count_invariant() {
    // A smaller soak, twice: the vshard simulation must make the
    // outcome a pure function of configuration, not parallelism.
    let one = soak(1, 600, 1).expect("soak runs");
    let many = soak(1, 600, 8).expect("soak runs");
    assert_eq!(one, many, "thread count must not change any outcome");
}

#[test]
fn shed_curves_are_monotone_in_capacity() {
    let cells = shed_study(1, 0).expect("study runs");
    assert_eq!(
        cells.len(),
        BackpressureMode::ALL.len() * SHED_CAPACITIES.len()
    );
    for mode in BackpressureMode::ALL {
        let pressure: Vec<u64> = cells
            .iter()
            .filter(|c| c.mode == mode)
            .map(|c| c.shed_oldest + c.rejected + c.blocked_ticks)
            .collect();
        assert!(pressure[0] > 0, "{mode}: smallest queue must overload");
        for w in pressure.windows(2) {
            assert!(w[1] <= w[0], "{mode}: not monotone: {pressure:?}");
        }
    }
}

#[test]
fn serve_cli_smoke_passes() {
    let out = opd(&["serve", "--smoke"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("serve --smoke: ok"), "{stdout}");
}

#[test]
fn serve_cli_json_reports_the_digest() {
    let out = opd(&["serve", "--clients", "64", "--json"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"digest\": \"0x"), "{stdout}");
    assert!(stdout.contains("\"verify_failures\": 0"), "{stdout}");

    // The digest is a run invariant: a second invocation prints the
    // same one.
    let again = opd(&["serve", "--clients", "64", "--json"]);
    assert_eq!(out.stdout, again.stdout, "serve must be reproducible");
}

#[test]
fn serve_cli_rejects_bad_flags() {
    for args in [
        &["serve", "--mode", "frob"][..],
        &["serve", "--resume"][..],
        &["serve", "--clients"][..],
        &["serve", "--smoke", "--json"][..],
        &["loadgen", "--frob"][..],
    ] {
        let out = opd(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
