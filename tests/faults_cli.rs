//! End-to-end tests of the `opd faults` and `opd sweep` subcommands
//! and the committed `BENCH_faults.json` artifact: freshness,
//! monotone degradation curves, and CLI-level crash-safe resume.

use std::process::Command;

use opd_experiments::faults::{fault_study, FaultStudy, STUDY_FUEL, STUDY_KINDS, STUDY_RATES};

fn opd(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_opd"))
        .args(args)
        .output()
        .expect("spawn opd")
}

#[test]
fn committed_faults_artifact_is_current() {
    let committed =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_faults.json"))
            .expect("BENCH_faults.json is committed at the repository root");
    let regenerated = opd_experiments::faults::faults_json(1);
    assert_eq!(
        committed, regenerated,
        "BENCH_faults.json is stale; regenerate with `opd faults --write`"
    );
}

#[test]
fn degradation_curves_are_monotone_non_increasing() {
    // The injected-fault sets nest across rates under the study's
    // fixed seeds, so more corruption can only hurt (or at worst not
    // help) mean detection accuracy against the clean-trace oracle.
    let study: FaultStudy = fault_study(1, STUDY_FUEL);
    for &kind in &STUDY_KINDS {
        let curve = study.curve(kind);
        assert_eq!(curve.len(), STUDY_RATES.len());
        for window in curve.windows(2) {
            assert!(
                window[1] <= window[0] + 1e-9,
                "{kind} curve is not monotone non-increasing: {curve:?}"
            );
        }
        // And the harshest rate must actually cost accuracy — a flat
        // curve would mean the injector did nothing.
        assert!(
            curve[STUDY_RATES.len() - 1] < curve[0],
            "{kind} curve is flat: {curve:?}"
        );
    }
}

#[test]
fn faults_smoke_passes_and_covers_both_fault_layers() {
    let out = opd(&["faults", "--smoke"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("faults --smoke: ok"), "{stdout}");
    // One byte-level and one stream-level injector at least.
    assert!(stdout.contains("bitflip"), "{stdout}");
    assert!(stdout.contains("dropbranch"), "{stdout}");
}

#[test]
fn faults_rejects_unknown_arguments() {
    let out = opd(&["faults", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = opd(&["sweep", "--resume"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "resume needs --checkpoint: {out:?}"
    );
}

#[test]
fn sweep_resume_via_cli_matches_the_uninterrupted_run() {
    let dir = std::env::temp_dir().join("opd_faults_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ck = dir.join("sweep.ck");
    let ck_str = ck.to_str().unwrap();
    let _ = std::fs::remove_file(&ck);

    let full = opd(&["sweep", "--fuel", "4000", "--checkpoint", ck_str]);
    assert!(full.status.success(), "{full:?}");
    let full_out = String::from_utf8(full.stdout).unwrap();
    assert!(full_out.contains("0 bucket(s) restored"), "{full_out}");

    // Simulate a kill: tear the checkpoint mid-record, then resume.
    let mut bytes = std::fs::read(&ck).unwrap();
    let torn = bytes.len() - 5;
    bytes.truncate(torn);
    std::fs::write(&ck, &bytes).unwrap();

    let resumed = opd(&[
        "sweep",
        "--fuel",
        "4000",
        "--checkpoint",
        ck_str,
        "--resume",
    ]);
    assert!(resumed.status.success(), "{resumed:?}");
    let resumed_out = String::from_utf8(resumed.stdout).unwrap();
    assert!(resumed_out.contains("1 computed"), "{resumed_out}");
    assert!(resumed_out.contains("damaged tail"), "{resumed_out}");

    // Every per-workload accuracy line must be bit-identical to the
    // uninterrupted run's.
    let table = |s: &str| {
        s.lines()
            .filter(|l| l.contains("mean combined accuracy"))
            .map(str::to_owned)
            .collect::<Vec<_>>()
    };
    assert_eq!(table(&full_out), table(&resumed_out));
    assert_eq!(table(&full_out).len(), 8);

    let _ = std::fs::remove_file(&ck);
}
