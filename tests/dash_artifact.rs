//! Freshness and acceptance tests for the committed `BENCH_dash.json`
//! artifact and the span layer's determinism claims:
//!
//! * the committed artifact regenerates byte-for-byte at thread
//!   counts 1, 2, and 8 around its committed overhead timings (the
//!   overhead section is the only non-deterministic part, so the test
//!   re-renders with the committed numbers — same scheme as
//!   `BENCH_obs.json`);
//! * the committed null-span overhead ratio sits under the 2%
//!   acceptance line;
//! * the raw span log — not just its digest — is byte-identical
//!   across thread counts.

mod common;

use common::parse_json;

use opd_experiments::dash::{dash_config, dash_source, dash_study, render_dash_json};
use opd_obs::SpanLog;
use opd_serve::{run_service_traced, NullSubscriber, ServiceOptions, TraceConfig};

fn committed() -> String {
    std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_dash.json"))
        .expect("BENCH_dash.json is committed at the repository root")
}

#[test]
fn committed_dash_artifact_is_current_across_thread_counts() {
    let committed = committed();
    let doc = parse_json(&committed).expect("committed artifact parses");
    let overhead = doc.get("overhead");
    let samples = overhead.get("samples").as_u64() as usize;
    let plain_nanos = overhead.get("plain_nanos").as_u64();
    let instrumented_nanos = overhead.get("instrumented_nanos").as_u64();

    for threads in [1, 2, 8] {
        let study = dash_study(1, threads).expect("dashboard study runs");
        let regenerated = render_dash_json(&study, samples, plain_nanos, instrumented_nanos);
        assert_eq!(
            committed, regenerated,
            "BENCH_dash.json is stale or thread-sensitive at {threads} thread(s); \
             regenerate with `opd top --write`"
        );
    }
}

#[test]
fn committed_null_span_overhead_is_under_the_gate() {
    let doc = parse_json(&committed()).expect("committed artifact parses");
    let overhead = doc.get("overhead");
    let plain = overhead.get("plain_nanos").num();
    let instrumented = overhead.get("instrumented_nanos").num();
    assert!(plain > 0.0 && instrumented > 0.0);
    let ratio = overhead.get("ratio").num();
    assert!(
        ratio <= 1.02,
        "committed null-span overhead ratio {ratio} exceeds the 2% acceptance line; \
         re-measure with `opd top --write` on a quiet machine"
    );
    // The rendered ratio is the committed timings' quotient.
    assert!((ratio - instrumented / plain).abs() < 0.001);
}

#[test]
fn span_logs_are_byte_identical_across_thread_counts() {
    let source = dash_source(1, 180);
    let config = dash_config();
    let run = |threads: usize| {
        run_service_traced::<SpanLog>(
            &config,
            &source,
            &ServiceOptions {
                threads,
                ..ServiceOptions::default()
            },
            &NullSubscriber,
            None,
            &TraceConfig::default(),
        )
        .expect("traced soak runs")
    };
    let (report_one, trace_one) = run(1);
    let log_one = trace_one.span_log();
    for threads in [2, 8] {
        let (report, trace) = run(threads);
        assert_eq!(report_one, report, "{threads} thread(s) changed the report");
        assert_eq!(
            log_one,
            trace.span_log(),
            "{threads} thread(s) changed the span log bytes"
        );
        assert_eq!(trace_one.postmortems, trace.postmortems);
    }
    assert!(!trace_one.spans.is_empty());
}
