//! Round-trip tests for the optional `serde` feature:
//!
//! ```sh
//! cargo test --features serde --test serde_roundtrip
//! ```

#![cfg(feature = "serde")]

use opd::baseline::BaselineSolution;
use opd::client::CostModel;
use opd::core::DetectorConfig;
use opd::microvm::workloads::Workload;
use opd::trace::{ExecutionTrace, MethodId, PhaseInterval, ProfileElement, StateSeq, TraceStats};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

fn small_trace() -> ExecutionTrace {
    let program = Workload::Lexgen.program(1);
    let mut trace = ExecutionTrace::new();
    opd::microvm::Interpreter::new(&program, 7)
        .with_fuel(5_000)
        .run(&mut trace)
        .expect("terminates");
    trace
}

#[test]
fn execution_trace_roundtrips() {
    let trace = small_trace();
    assert_eq!(roundtrip(&trace), trace);
}

#[test]
fn profile_elements_and_intervals_roundtrip() {
    let e = ProfileElement::new(MethodId::new(12), 34, true);
    assert_eq!(roundtrip(&e), e);
    let p = PhaseInterval::new(10, 99);
    assert_eq!(roundtrip(&p), p);
}

#[test]
fn states_and_stats_roundtrip() {
    let trace = small_trace();
    let stats = TraceStats::measure(&trace);
    assert_eq!(roundtrip(&stats), stats);
    let oracle = BaselineSolution::compute(&trace, 500).expect("well nested");
    let states: StateSeq = oracle.states();
    assert_eq!(roundtrip(&states), states);
    assert_eq!(roundtrip(&oracle), oracle);
}

#[test]
fn configs_and_models_roundtrip() {
    let config = DetectorConfig::builder()
        .current_window(123)
        .trailing_window(77)
        .skip_factor(3)
        .build()
        .expect("valid");
    assert_eq!(roundtrip(&config), config);
    let model = CostModel::new(10, 1.5, 2).expect("valid");
    assert_eq!(roundtrip(&model), model);
}
