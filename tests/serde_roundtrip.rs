//! Serialization-format tests: round trips for the optional `serde`
//! feature, plus corrupt-input rejection for the (always-on) sweep
//! checkpoint format.
//!
//! ```sh
//! cargo test --test serde_roundtrip                   # checkpoint format
//! cargo test --features serde --test serde_roundtrip  # + serde round trips
//! ```

#[cfg(feature = "serde")]
mod serde_formats {
    use opd::baseline::BaselineSolution;
    use opd::client::CostModel;
    use opd::core::DetectorConfig;
    use opd::microvm::workloads::Workload;
    use opd::trace::{
        ExecutionTrace, MethodId, PhaseInterval, ProfileElement, StateSeq, TraceStats,
    };

    fn roundtrip<T>(value: &T) -> T
    where
        T: serde::Serialize + for<'de> serde::Deserialize<'de>,
    {
        let json = serde_json::to_string(value).expect("serializes");
        serde_json::from_str(&json).expect("deserializes")
    }

    fn small_trace() -> ExecutionTrace {
        let program = Workload::Lexgen.program(1);
        let mut trace = ExecutionTrace::new();
        opd::microvm::Interpreter::new(&program, 7)
            .with_fuel(5_000)
            .run(&mut trace)
            .expect("terminates");
        trace
    }

    #[test]
    fn execution_trace_roundtrips() {
        let trace = small_trace();
        assert_eq!(roundtrip(&trace), trace);
    }

    #[test]
    fn profile_elements_and_intervals_roundtrip() {
        let e = ProfileElement::new(MethodId::new(12), 34, true);
        assert_eq!(roundtrip(&e), e);
        let p = PhaseInterval::new(10, 99);
        assert_eq!(roundtrip(&p), p);
    }

    #[test]
    fn states_and_stats_roundtrip() {
        let trace = small_trace();
        let stats = TraceStats::measure(&trace);
        assert_eq!(roundtrip(&stats), stats);
        let oracle = BaselineSolution::compute(&trace, 500).expect("well nested");
        let states: StateSeq = oracle.states();
        assert_eq!(roundtrip(&states), states);
        assert_eq!(roundtrip(&oracle), oracle);
    }

    #[test]
    fn configs_and_models_roundtrip() {
        let config = DetectorConfig::builder()
            .current_window(123)
            .trailing_window(77)
            .skip_factor(3)
            .build()
            .expect("valid");
        assert_eq!(roundtrip(&config), config);
        let model = CostModel::new(10, 1.5, 2).expect("valid");
        assert_eq!(roundtrip(&model), model);
    }
}

mod checkpoint_format {
    use opd::core::DetectedPhase;
    use opd_experiments::checkpoint::{
        fnv64, parse_checkpoint, CheckpointError, CHECKPOINT_HEADER_LEN, CHECKPOINT_MAGIC,
        CHECKPOINT_VERSION,
    };

    /// A minimal valid checkpoint image: header plus one bucket record.
    fn valid_image() -> Vec<u8> {
        let phases = vec![DetectedPhase {
            start: 10,
            anchored_start: 8,
            end: Some(42),
        }];
        let runs = vec![(3usize, phases)];

        let dir = std::env::temp_dir().join("opd_serde_roundtrip_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("image.ck");
        let mut w = opd_experiments::checkpoint::CheckpointWriter::create(&path, 0xFEED).unwrap();
        w.append_bucket(1, 2, &runs).unwrap();
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        bytes
    }

    #[test]
    fn valid_image_parses_completely() {
        let bytes = valid_image();
        let recovered = parse_checkpoint(&bytes).expect("valid image");
        assert_eq!(recovered.fingerprint, 0xFEED);
        assert_eq!(recovered.damaged_tail_bytes, 0);
        assert_eq!(recovered.valid_len, bytes.len() as u64);
        assert_eq!(recovered.buckets.len(), 1);
        let runs = &recovered.buckets[&(1, 2)];
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].0, 3);
        assert_eq!(runs[0].1[0].end, Some(42));
    }

    #[test]
    fn bad_magic_is_a_typed_error() {
        let mut bytes = valid_image();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            parse_checkpoint(&bytes),
            Err(CheckpointError::BadMagic)
        ));
        // Too short to even hold a header: same rejection.
        assert!(matches!(
            parse_checkpoint(CHECKPOINT_MAGIC),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn bad_version_tag_is_a_typed_error() {
        let mut bytes = valid_image();
        let bogus = CHECKPOINT_VERSION + 41;
        bytes[4..6].copy_from_slice(&bogus.to_le_bytes());
        match parse_checkpoint(&bytes) {
            Err(CheckpointError::BadVersion(v)) => assert_eq!(v, bogus),
            other => panic!("expected BadVersion, got {other:?}"),
        }
    }

    #[test]
    fn checksum_mismatch_discards_the_record() {
        let mut bytes = valid_image();
        // Corrupt one payload byte; the stored FNV-64 no longer
        // matches, so the record is a damaged tail, not data.
        let payload_start = CHECKPOINT_HEADER_LEN + 5;
        bytes[payload_start] ^= 0x01;
        let recovered = parse_checkpoint(&bytes).expect("header is intact");
        assert_eq!(recovered.buckets.len(), 0);
        assert_eq!(recovered.valid_len, CHECKPOINT_HEADER_LEN as u64);
        assert!(recovered.damaged_tail_bytes > 0);
    }

    #[test]
    fn oversized_length_field_is_damage_not_allocation() {
        let mut bytes = valid_image();
        // A length field claiming ~4 GiB must not drive a pre-sized
        // allocation; the record reads as a damaged tail.
        bytes[CHECKPOINT_HEADER_LEN + 1..CHECKPOINT_HEADER_LEN + 5]
            .copy_from_slice(&u32::MAX.to_le_bytes());
        let recovered = parse_checkpoint(&bytes).expect("header is intact");
        assert_eq!(recovered.buckets.len(), 0);
        assert_eq!(recovered.valid_len, CHECKPOINT_HEADER_LEN as u64);
        assert!(recovered.damaged_tail_bytes > 0);
    }

    #[test]
    fn fnv64_is_the_documented_fnv1a() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
