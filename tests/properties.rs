//! Property-based tests over the core data structures and invariants,
//! using arbitrary element streams and interval sets.

use proptest::prelude::*;

use opd::baseline::CallLoopForest;
use opd::core::{
    AnalyzerPolicy, AnchorPolicy, DetectorConfig, ModelPolicy, PhaseDetector, ResizePolicy,
    TwPolicy, Windows,
};
use opd::microvm::{ArgExpr, Interpreter, ProgramBuilder, TakenDist, Trip};
use opd::scoring::{correlation, match_phases, score_intervals};
use opd::trace::{
    boundaries_of, decode_trace, decode_trace_resync, encode_trace, intervals_of,
    states_from_intervals, BranchTrace, ExecutionTrace, MethodId, PhaseInterval, PhaseState,
    ProfileElement, StateSeq, TraceSink, BRANCH_RECORD_LEN,
};

fn arb_element() -> impl Strategy<Value = ProfileElement> {
    (0u32..8, 0u32..6, any::<bool>())
        .prop_map(|(m, o, t)| ProfileElement::new(MethodId::new(m), o, t))
}

fn arb_trace(max_len: usize) -> impl Strategy<Value = BranchTrace> {
    prop::collection::vec(arb_element(), 0..max_len).prop_map(BranchTrace::from)
}

fn arb_config() -> impl Strategy<Value = DetectorConfig> {
    (
        1usize..40,
        1usize..40,
        1usize..20,
        prop_oneof![Just(TwPolicy::Constant), Just(TwPolicy::Adaptive)],
        prop_oneof![
            Just(AnchorPolicy::RightmostNoisy),
            Just(AnchorPolicy::LeftmostNonNoisy)
        ],
        prop_oneof![Just(ResizePolicy::Slide), Just(ResizePolicy::Move)],
        prop_oneof![
            Just(ModelPolicy::UnweightedSet),
            Just(ModelPolicy::WeightedSet)
        ],
        prop_oneof![
            (0.0f64..=1.0).prop_map(AnalyzerPolicy::Threshold),
            (0.0f64..=1.0).prop_map(|delta| AnalyzerPolicy::Average { delta }),
        ],
    )
        .prop_map(|(cw, tw, skip, twp, anchor, resize, model, analyzer)| {
            DetectorConfig::builder()
                .current_window(cw)
                .trailing_window(tw)
                .skip_factor(skip)
                .tw_policy(twp)
                .anchor(anchor)
                .resize(resize)
                .model(model)
                .analyzer(analyzer)
                .build()
                .expect("generated parameters are valid")
        })
}

/// Sorted, disjoint intervals within [0, total).
fn arb_intervals(total: u64) -> impl Strategy<Value = Vec<PhaseInterval>> {
    prop::collection::vec((0u64..total, 1u64..20), 0..12).prop_map(move |raw| {
        let mut out: Vec<PhaseInterval> = Vec::new();
        let mut cursor = 0u64;
        for (gap, len) in raw {
            let start = cursor + gap % 17 + 1;
            let end = (start + len).min(total);
            if start < end {
                out.push(PhaseInterval::new(start, end));
                cursor = end;
            }
        }
        out
    })
}

/// A trace length together with one interval set inside it.
fn arb_sized_intervals() -> impl Strategy<Value = (u64, Vec<PhaseInterval>)> {
    (50u64..400).prop_flat_map(|total| (Just(total), arb_intervals(total)))
}

/// A trace length together with two independent interval sets.
fn arb_interval_pair() -> impl Strategy<Value = (u64, Vec<PhaseInterval>, Vec<PhaseInterval>)> {
    (50u64..400).prop_flat_map(|total| (Just(total), arb_intervals(total), arb_intervals(total)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn detector_never_panics_and_labels_everything(
        trace in arb_trace(600),
        config in arb_config(),
    ) {
        let mut detector = PhaseDetector::new(config);
        let states = detector.run(&trace);
        prop_assert_eq!(states.len(), trace.len());
        // Detected phases are sorted, disjoint, and within bounds.
        let phases = opd::core::detected_intervals(
            detector.detected_phases(), trace.len() as u64);
        for w in phases.windows(2) {
            prop_assert!(w[0].end() <= w[1].start());
        }
        for p in &phases {
            prop_assert!(p.end() <= trace.len() as u64);
        }
    }

    #[test]
    fn similarity_values_are_bounded(
        sites in prop::collection::vec(0u32..12, 1..400),
        cw in 1usize..20,
        tw in 1usize..20,
    ) {
        let mut w = Windows::new(cw, tw);
        for (i, &s) in sites.iter().enumerate() {
            w.push(s, i % 3 == 0);
            let u = w.unweighted_similarity();
            let wt = w.weighted_similarity();
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "{u}");
            prop_assert!((0.0..=1.0 + 1e-9).contains(&wt), "{wt}");
        }
    }

    #[test]
    fn unweighted_is_one_when_cw_subset_of_tw(
        sites in prop::collection::vec(0u32..4, 40..80),
    ) {
        // Push enough elements that every site occurs in both windows.
        let mut w = Windows::new(8, 8);
        for _ in 0..4 {
            for &s in &sites {
                w.push(s, false);
            }
        }
        let distinct_cw = w.distinct_cw();
        let in_tw = (0..4).filter(|&s| w.tw_count(s) > 0 && w.cw_count(s) > 0).count();
        if in_tw == distinct_cw {
            prop_assert!((w.unweighted_similarity() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn states_intervals_roundtrip(states in prop::collection::vec(
        prop_oneof![Just(PhaseState::Phase), Just(PhaseState::Transition)], 0..200)) {
        let seq: StateSeq = states.into_iter().collect();
        let intervals = intervals_of(&seq);
        let back = states_from_intervals(&intervals, seq.len() as u64);
        prop_assert_eq!(back, seq);
    }

    #[test]
    fn boundaries_count_is_twice_intervals((_total, intervals) in arb_sized_intervals()) {
        prop_assert_eq!(boundaries_of(&intervals).len(), intervals.len() * 2);
    }

    #[test]
    fn correlation_is_symmetric_and_bounded(
        (total, a, b) in arb_interval_pair(),
    ) {
        let ab = correlation(&a, &b, total);
        let ba = correlation(&b, &a, total);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((correlation(&a, &a, total) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matching_respects_the_papers_constraints(
        (_total, detected, baseline) in arb_interval_pair(),
    ) {
        let outcome = match_phases(&detected, &baseline);
        for &(di, bi) in &outcome.pairs {
            let d = detected[di];
            let b = baseline[bi];
            // Constraint 1: start within the baseline phase.
            prop_assert!(b.start() <= d.start() && d.start() < b.end());
            // Constraint 2: end at/after the baseline end, before the
            // next baseline phase.
            prop_assert!(d.end() >= b.end());
            if let Some(next) = baseline.get(bi + 1) {
                prop_assert!(d.end() < next.start());
            }
        }
        // At most one match per baseline phase and per detected phase.
        let mut bs: Vec<_> = outcome.pairs.iter().map(|p| p.1).collect();
        bs.sort_unstable();
        bs.dedup();
        prop_assert_eq!(bs.len(), outcome.pairs.len());
    }

    #[test]
    fn scores_are_always_in_unit_range(
        (total, detected, baseline_iv) in arb_interval_pair(),
    ) {
        // Build a real BaselineSolution through a synthetic trace.
        let mut t = ExecutionTrace::new();
        let mut off = 0u64;
        for (i, p) in baseline_iv.iter().enumerate() {
            while off < p.start() {
                t.record_branch(ProfileElement::new(MethodId::new(0), (off % 7) as u32, true));
                off += 1;
            }
            t.record_loop_enter(opd::trace::LoopId::new(i as u32));
            while off < p.end() {
                t.record_branch(ProfileElement::new(MethodId::new(0), (off % 7) as u32, true));
                off += 1;
            }
            t.record_loop_exit(opd::trace::LoopId::new(i as u32));
        }
        while off < total {
            t.record_branch(ProfileElement::new(MethodId::new(0), (off % 7) as u32, true));
            off += 1;
        }
        let oracle = opd::baseline::BaselineSolution::compute(&t, 1).expect("well nested");
        let score = score_intervals(&detected, &oracle);
        prop_assert!((0.0..=1.0).contains(&score.combined()), "{}", score);
        prop_assert!((0.0..=1.0).contains(&score.correlation));
        prop_assert!((0.0..=1.0).contains(&score.sensitivity));
        prop_assert!((0.0..=1.0).contains(&score.false_positives));
    }

    #[test]
    fn codec_roundtrips_arbitrary_traces(trace in arb_trace(300)) {
        let mut t = ExecutionTrace::new();
        for e in &trace {
            t.record_branch(*e);
        }
        let bytes = encode_trace(&t);
        prop_assert_eq!(decode_trace(&bytes).expect("round trip"), t);
    }

    #[test]
    fn microvm_traces_always_balance(
        trips in prop::collection::vec(1u32..6, 1..5),
        depth in 0u32..6,
        fuel in 1u64..2_000,
        seed in 0u64..100,
    ) {
        let mut b = ProgramBuilder::new();
        let rec = b.declare("rec");
        let main = b.declare("main");
        b.define(rec, |f| {
            f.branch(TakenDist::Bernoulli(0.5));
            f.if_arg_positive(|g| {
                g.call(rec, ArgExpr::Dec);
            });
        });
        b.define(main, |f| {
            for &n in &trips {
                f.repeat(Trip::Fixed(n), |l| {
                    l.branches(2, TakenDist::Alternating);
                    l.call(rec, ArgExpr::Const(depth));
                });
            }
        });
        b.entry(main);
        let program = b.build().expect("valid program");
        let mut trace = ExecutionTrace::new();
        Interpreter::new(&program, seed)
            .with_fuel(fuel)
            .run(&mut trace)
            .expect("bounded recursion");
        // Balanced events: the forest builds without error even for
        // fuel-truncated traces.
        let forest = CallLoopForest::build(&trace).expect("balanced");
        prop_assert_eq!(forest.total_branches(), trace.branches().len() as u64);
        // Labels from any MPL cover only in-phase elements.
        let sol = forest.solve(10);
        prop_assert!(sol.in_phase_elements() <= sol.total_elements());
    }
}

// Panic-freedom over untrusted input: the trace decoders and the
// MicroVM program parser must reject (or lossily recover from)
// arbitrary bytes with typed results, never a panic. These run at a
// much higher case count than the structural properties above —
// they are the regression net for the error-handling paths.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10_000))]

    #[test]
    fn trace_decoders_never_panic_on_byte_soup(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // Strict decoding: typed error or success, never a panic.
        let strict = decode_trace(&bytes);
        // Lossy decoding: always yields a trace plus a report.
        let (decoded, report) = decode_trace_resync(&bytes);
        if report.is_clean() {
            // A clean report promises the strict decoder agrees.
            prop_assert_eq!(strict.expect("clean input"), decoded);
        } else {
            prop_assert!(strict.is_err());
        }
    }

    #[test]
    fn resync_never_panics_on_corrupted_encodings(
        trace in arb_trace(64),
        corruptions in prop::collection::vec((any::<u16>(), any::<u8>()), 1..8),
    ) {
        let mut t = ExecutionTrace::new();
        for e in &trace {
            t.record_branch(*e);
        }
        let mut bytes = encode_trace(&t).to_vec();
        for (pos, mask) in corruptions {
            if !bytes.is_empty() {
                let i = pos as usize % bytes.len();
                bytes[i] ^= mask;
            }
        }
        let (decoded, _report) = decode_trace_resync(&bytes);
        // Every decoded branch record consumed 8 bytes of input (a
        // corrupt header count cannot conjure records from nothing).
        prop_assert!(decoded.branches().len() * BRANCH_RECORD_LEN <= bytes.len());
    }

    #[test]
    fn microvm_parser_never_panics_on_arbitrary_text(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = opd::microvm::parse_program(&text);
    }

    #[test]
    fn microvm_parser_never_panics_on_keyword_soup(
        fragments in prop::collection::vec(
            prop_oneof![
                Just("fn "), Just("main"), Just("(f0)"), Just("// entry"),
                Just("{"), Just("}"), Just("\n"), Just(" "),
                Just("branch @"), Just("p="), Just("0.5"), Just("call "),
                Just("repeat "), Just("x"), Just("7"), Just("-1"),
            ],
            0..64,
        ),
    ) {
        // Near-miss programs built from real grammar tokens reach much
        // deeper into the parser than raw byte soup does.
        let text: String = fragments.concat();
        let _ = opd::microvm::parse_program(&text);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn corruption_is_confined_to_the_corrupted_session(
        streams in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(arb_element(), 10..80), 2..4),
            2..5,
        ),
        victim_seed in proptest::prelude::any::<u32>(),
        corruptions in prop::collection::vec(
            (proptest::prelude::any::<u16>(), proptest::prelude::any::<u16>(), 1u8..=255),
            1..16,
        ),
    ) {
        use opd::serve::{run_service, MemorySource, SeededHazards, ServeConfig, ServiceOptions};

        // Two identical multi-tenant sources, except one client's
        // frames are arbitrarily corrupted in the second. Corruption
        // must degrade only that session: every other session's
        // terminal report (including its phase-stream digest) must be
        // bit-identical — even with supervised crash/restart hazards
        // firing across the fleet.
        let config = DetectorConfig::builder()
            .current_window(16)
            .trailing_window(16)
            .skip_factor(4)
            .build()
            .expect("static test config is valid");
        let victim = victim_seed as usize % streams.len();
        let mut clean = MemorySource::new();
        let mut dirty = MemorySource::new();
        for (c, frame_elements) in streams.iter().enumerate() {
            let frames: Vec<Vec<u8>> = frame_elements
                .iter()
                .map(|elements| {
                    let mut t = ExecutionTrace::new();
                    for e in elements {
                        t.record_branch(*e);
                    }
                    encode_trace(&t).to_vec()
                })
                .collect();
            clean.push_client(config, frames.clone());
            let frames = if c == victim {
                let count = frames.len();
                frames
                    .into_iter()
                    .enumerate()
                    .map(|(f, mut buf)| {
                        for &(frame_sel, pos, mask) in &corruptions {
                            if frame_sel as usize % count == f && !buf.is_empty() {
                                let i = pos as usize % buf.len();
                                buf[i] ^= mask;
                            }
                        }
                        buf
                    })
                    .collect()
            } else {
                frames
            };
            dirty.push_client(config, frames);
        }

        let serve_config = ServeConfig {
            vshards: 2,
            hazards: SeededHazards {
                seed: 0xBAD_F00D,
                kill_rate: 0.05,
                wedge_rate: 0.02,
                poison_rate: 0.0,
            },
            ..ServeConfig::default()
        };
        let options = ServiceOptions::default();
        let clean_report = run_service(&serve_config, &clean, &options)
            .expect("clean fleet runs");
        let dirty_report = run_service(&serve_config, &dirty, &options)
            .expect("corrupted fleet runs");
        prop_assert_eq!(clean_report.sessions.len(), dirty_report.sessions.len());
        for (a, b) in clean_report.sessions.iter().zip(&dirty_report.sessions) {
            prop_assert_eq!(a.client, b.client);
            if a.client as usize != victim {
                prop_assert_eq!(
                    a, b,
                    "client {}'s session changed when client {} was corrupted",
                    a.client, victim
                );
            }
        }
        // And the corrupted fleet still upholds the global invariants.
        prop_assert_eq!(dirty_report.verify_failures(), 0);
        prop_assert!(dirty_report.conservation_holds());
    }
}
