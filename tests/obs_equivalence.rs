//! The observer-equivalence suite: for every workload and every
//! default-grid config (plus adaptive-TW extras), the instrumented
//! detector twins must (a) run bit-identically to the uninstrumented
//! paths under a `NullObserver`, and (b) emit an event stream from
//! which an external observer reconstructs exactly the phase
//! transitions the detector reports — the guard that keeps
//! `finish_step_observed` a faithful mirror of `finish_step`.

use opd_core::{DetectorConfig, InternedTrace, PhaseDetector};
use opd_experiments::grid::{default_plan_grid, policy_grid, TwKind};
use opd_microvm::workloads::Workload;
use opd_obs::{DetectorEvent, NullObserver, RecordingObserver};

const FUEL: u64 = 12_000;

fn interned(workload: Workload) -> InternedTrace {
    let program = workload.program(1);
    let mut execution = opd_trace::ExecutionTrace::new();
    opd_microvm::Interpreter::new(&program, workload.default_seed())
        .with_fuel(FUEL)
        .run(&mut execution)
        .expect("workload executes");
    InternedTrace::from_elements(execution.branches().iter().copied())
}

/// The default 28-config sweep grid plus adaptive-TW extras, so both
/// the shared-window and the private resize/flush paths are covered.
fn configs_under_test() -> Vec<DetectorConfig> {
    let mut configs = default_plan_grid();
    configs.extend(policy_grid(TwKind::Adaptive, 400));
    configs
}

#[test]
fn null_observed_runs_are_bit_identical_to_uninstrumented() {
    let configs = configs_under_test();
    for &workload in &Workload::ALL {
        let trace = interned(workload);
        for &config in &configs {
            let mut plain = PhaseDetector::new(config);
            let _ = plain.run_interned_phases_only(&trace);

            let mut observed = PhaseDetector::new(config);
            let _ = observed.run_interned_phases_observed(&trace, &mut NullObserver);

            assert_eq!(
                plain.detected_phases(),
                observed.detected_phases(),
                "{workload:?} {config:?}"
            );
            assert_eq!(plain.state(), observed.state(), "{workload:?} {config:?}");
            assert_eq!(
                plain.last_similarity(),
                observed.last_similarity(),
                "{workload:?} {config:?}"
            );
            assert_eq!(
                plain.elements_consumed(),
                observed.elements_consumed(),
                "{workload:?} {config:?}"
            );
        }
    }
}

#[test]
fn recorded_events_reconstruct_the_detector_phases() {
    let configs = configs_under_test();
    for &workload in &Workload::ALL {
        let trace = interned(workload);
        for &config in &configs {
            let mut detector = PhaseDetector::new(config);
            let mut recorder = RecordingObserver::new();
            let _ = detector.run_interned_phases_observed(&trace, &mut recorder);

            let recorded = recorder.phases();
            let actual = detector.detected_phases();
            assert_eq!(
                recorded.len(),
                actual.len(),
                "{workload:?} {config:?}: phase count"
            );
            for (r, p) in recorded.iter().zip(actual) {
                assert_eq!(r.start, p.start, "{workload:?} {config:?}");
                assert_eq!(
                    r.anchored_start, p.anchored_start,
                    "{workload:?} {config:?}"
                );
                // The run emits a final phase_end for a trace-end open
                // phase, so every recorded end must be present and
                // match the (closed) detector record.
                assert_eq!(r.end, p.end, "{workload:?} {config:?}");
                assert!(
                    r.end.is_some(),
                    "{workload:?} {config:?}: open recorded end"
                );
            }
        }
    }
}

#[test]
fn decision_events_match_the_per_element_state_sequence() {
    // The per-step decision stream must agree with the per-element
    // labels the uninstrumented `run_interned` produces: every element
    // of step i carries the state of decision i.
    let configs = default_plan_grid();
    for &workload in &[Workload::Lexgen, Workload::Querydb] {
        let trace = interned(workload);
        for &config in &configs {
            let seq = PhaseDetector::new(config).run_interned(&trace);

            let mut detector = PhaseDetector::new(config);
            let mut recorder = RecordingObserver::new();
            let _ = detector.run_interned_phases_observed(&trace, &mut recorder);

            let skip = config.skip_factor();
            let steps = trace.len().div_ceil(skip);
            let decisions = recorder.decisions();
            assert_eq!(decisions.len(), steps, "{workload:?} {config:?}");
            for (i, &(step, is_phase)) in decisions.iter().enumerate() {
                assert_eq!(step, i as u64);
                let element_state = seq.get(i * skip).expect("chunk start is labelled");
                assert_eq!(
                    is_phase,
                    element_state.is_phase(),
                    "{workload:?} {config:?} step {i}"
                );
            }
        }
    }
}

#[test]
fn event_stream_is_well_ordered() {
    // Structural invariants of the stream itself: steps are dense and
    // monotone, similarity/decision events follow their step, and
    // phase starts/ends alternate.
    let trace = interned(Workload::Lexgen);
    let config = default_plan_grid()[0];
    let mut detector = PhaseDetector::new(config);
    let mut recorder = RecordingObserver::new();
    let _ = detector.run_interned_phases_observed(&trace, &mut recorder);

    let mut current_step = None::<u64>;
    let mut open_phase = false;
    for event in &recorder.events {
        match *event {
            DetectorEvent::Step { step, .. } => {
                let expected = current_step.map_or(0, |s| s + 1);
                assert_eq!(step, expected, "steps are dense and monotone");
                current_step = Some(step);
            }
            DetectorEvent::Similarity { step, .. } | DetectorEvent::Decision { step, .. } => {
                assert_eq!(Some(step), current_step, "event outside its step");
            }
            DetectorEvent::PhaseStart { .. } => {
                assert!(!open_phase, "phase started twice");
                open_phase = true;
            }
            DetectorEvent::PhaseEnd { .. } => {
                assert!(open_phase, "phase ended without a start");
                open_phase = false;
            }
            DetectorEvent::WindowResize { .. } | DetectorEvent::WindowFlush { .. } => {}
        }
    }
    assert!(!open_phase, "trace-end phase_end missing");
    assert!(recorder.events.iter().any(|e| e.kind() == "similarity"));
}
