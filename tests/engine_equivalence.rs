//! Tier-1 equivalence: the shared-window sweep engine must produce
//! results bit-identical to sequential per-config detector runs —
//! detected and anchored intervals alike — for the paper's full
//! policy grid (all three trailing-window strategies) on multiple
//! workloads, and for mixed multi-shape grids that exercise unit
//! planning and threaded distribution.

use opd_core::{anchored_intervals, detected_intervals, DetectorConfig, SweepEngine};
use opd_experiments::grid::{policy_grid, TwKind};
use opd_experiments::runner::{prepare_all, run_detector, sweep, sweep_many, PreparedWorkload};
use opd_microvm::workloads::Workload;

/// The paper's 20-config model × analyzer grid for every strategy:
/// Adaptive TW (the forking shared scan), Constant TW (the plain
/// shared scan), and Fixed Interval (shared windows with skip = cw).
fn full_policy_grid(cw: usize) -> Vec<DetectorConfig> {
    let mut configs = Vec::new();
    for kind in TwKind::ALL {
        configs.extend(policy_grid(kind, cw));
    }
    configs
}

fn workloads() -> Vec<PreparedWorkload> {
    prepare_all(
        &[Workload::Lexgen, Workload::Blockcomp],
        1,
        &[1_000],
        40_000,
    )
}

#[test]
fn engine_matches_sequential_over_full_policy_grid() {
    let prepared = workloads();
    let configs = full_policy_grid(500);
    let engine = SweepEngine::new(&configs);
    // Every sub-grid (20 configs each) must collapse into one shared
    // scan apiece: the Adaptive one through the forking scan, the
    // Constant and FixedInterval ones through the plain shared scan.
    assert_eq!(engine.total_scans(), 1 + 1 + 1);
    for p in &prepared {
        let total = p.interned().len() as u64;
        let all = engine.run_all(p.interned());
        for (i, &config) in configs.iter().enumerate() {
            let expected = run_detector(config, p.interned());
            assert_eq!(
                detected_intervals(&all[i], total),
                expected.detected,
                "{:?} config {i}: {config:?}",
                p.workload()
            );
            assert_eq!(
                anchored_intervals(&all[i], total),
                expected.anchored,
                "{:?} config {i}: {config:?}",
                p.workload()
            );
        }
    }
}

#[test]
fn threaded_sweep_equals_single_threaded_and_sequential() {
    let prepared = workloads();
    let configs = full_policy_grid(250);
    for p in &prepared {
        let one = sweep(p, &configs, 1);
        let four = sweep(p, &configs, 4);
        assert_eq!(one.len(), configs.len());
        for ((a, b), &config) in one.iter().zip(&four).zip(&configs) {
            let expected = run_detector(config, p.interned());
            assert_eq!(a.detected, b.detected, "{config:?}");
            assert_eq!(a.detected, expected.detected, "{config:?}");
            assert_eq!(a.anchored, b.anchored, "{config:?}");
            assert_eq!(a.anchored, expected.anchored, "{config:?}");
        }
    }
}

#[test]
fn multi_shape_multi_workload_distribution_is_exact() {
    let prepared = workloads();
    // Mixed shapes: two CW sizes per strategy, so the planner builds
    // several shared groups plus private units, and sweep_many spreads
    // (workload × unit) items over the thread pool.
    let mut configs = Vec::new();
    for cw in [200usize, 500] {
        configs.extend(full_policy_grid(cw));
    }
    let many = sweep_many(&prepared, &configs, 4);
    assert_eq!(many.len(), prepared.len());
    for (p, runs) in prepared.iter().zip(&many) {
        for (run, &config) in runs.iter().zip(&configs) {
            let expected = run_detector(config, p.interned());
            assert_eq!(run.detected, expected.detected, "{config:?}");
            assert_eq!(run.anchored, expected.anchored, "{config:?}");
        }
    }
}
