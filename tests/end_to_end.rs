//! End-to-end integration: workload -> detector -> oracle -> score,
//! across the crate boundaries the way a downstream user would drive
//! them.

use opd::baseline::{BaselineSolution, CallLoopForest};
use opd::core::{
    AnalyzerPolicy, DetectorConfig, InternedTrace, ModelPolicy, PhaseDetector, TwPolicy,
};
use opd::microvm::workloads::Workload;
use opd::scoring::score_states;
use opd::trace::{decode_trace, encode_trace, intervals_of, TraceStats};

/// Truncated trace so the suite stays fast on one core.
fn trace_of(w: Workload, fuel: u64) -> opd::trace::ExecutionTrace {
    let program = w.program(1);
    let mut trace = opd::trace::ExecutionTrace::new();
    opd::microvm::Interpreter::new(&program, w.default_seed())
        .with_fuel(fuel)
        .run(&mut trace)
        .expect("workloads terminate");
    trace
}

#[test]
fn full_pipeline_produces_sane_scores() {
    for w in [Workload::Lexgen, Workload::Audiodec] {
        let trace = trace_of(w, 120_000);
        let oracle = BaselineSolution::compute(&trace, 5_000).expect("well-nested trace");
        let config = DetectorConfig::builder()
            .current_window(2_500)
            .tw_policy(TwPolicy::Adaptive)
            .analyzer(AnalyzerPolicy::Threshold(0.6))
            .build()
            .expect("valid config");
        let mut detector = PhaseDetector::new(config);
        let states = detector.run(trace.branches());
        assert_eq!(states.len(), trace.branches().len());
        let score = score_states(&states, &oracle);
        let combined = score.combined();
        assert!((0.0..=1.0).contains(&combined), "{w}: {score}");
        // A reasonable detector on these well-phased workloads clears
        // a low bar comfortably.
        assert!(combined > 0.35, "{w}: {score}");
    }
}

#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let trace = trace_of(Workload::Ruleng, 80_000);
        let oracle = BaselineSolution::compute(&trace, 10_000).expect("well-nested");
        let mut detector = PhaseDetector::new(
            DetectorConfig::builder()
                .current_window(1_000)
                .build()
                .expect("valid"),
        );
        let states = detector.run(trace.branches());
        score_states(&states, &oracle)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn detector_states_match_detected_phase_records() {
    // The detector's DetectedPhase list and its state sequence are two
    // views of the same output.
    let trace = trace_of(Workload::Querydb, 100_000);
    let config = DetectorConfig::builder()
        .current_window(1_000)
        .build()
        .expect("valid");
    let mut detector = PhaseDetector::new(config);
    let states = detector.run(trace.branches());
    let from_states = intervals_of(&states);
    let from_records =
        opd::core::detected_intervals(detector.detected_phases(), trace.branches().len() as u64);
    assert_eq!(from_states, from_records);
}

#[test]
fn interned_and_direct_runs_agree_end_to_end() {
    let trace = trace_of(Workload::Parsegen, 90_000);
    let config = DetectorConfig::builder()
        .current_window(2_000)
        .model(ModelPolicy::WeightedSet)
        .build()
        .expect("valid");
    let direct = PhaseDetector::new(config).run(trace.branches());
    let interned = InternedTrace::from(trace.branches());
    let fast = PhaseDetector::new(config).run_interned(&interned);
    assert_eq!(direct, fast);
}

#[test]
fn codec_roundtrips_a_full_workload_trace() {
    let trace = trace_of(Workload::Tracer, 50_000);
    let bytes = encode_trace(&trace);
    let back = decode_trace(&bytes).expect("well-formed buffer");
    assert_eq!(back, trace);
    // The decoded trace is fully usable downstream.
    let stats = TraceStats::measure(&back);
    assert_eq!(stats.dynamic_branches, 50_000);
    let forest = CallLoopForest::build(&back).expect("well nested");
    assert!(forest.node_count() > 0);
}

#[test]
fn oracle_states_and_phase_lists_agree() {
    let trace = trace_of(Workload::Srccomp, 100_000);
    let oracle = BaselineSolution::compute(&trace, 5_000).expect("well nested");
    let states = oracle.states();
    assert_eq!(states.len() as u64, oracle.total_elements());
    assert_eq!(intervals_of(&states), oracle.phases());
    assert_eq!(states.phase_count() as u64, oracle.in_phase_elements());
}

#[test]
fn skip_factor_variants_cover_whole_trace() {
    let trace = trace_of(Workload::Blockcomp, 60_000);
    for skip in [1usize, 7, 500, 1_024] {
        let config = DetectorConfig::builder()
            .current_window(500)
            .skip_factor(skip)
            .build()
            .expect("valid");
        let states = PhaseDetector::new(config).run(trace.branches());
        assert_eq!(states.len(), 60_000, "skip {skip}");
    }
}
