//! Thread-count independence of the sweep: results and the
//! deterministic BENCH-artifact fields must be bit-identical across
//! `--threads 1`, `2`, and `8`. This is the regression test backing
//! the claim the concurrency audit verifies in the model — workers own
//! disjoint result buckets and every bucket's content depends only on
//! its `(workload, unit)` inputs, so the thread plan cannot leak into
//! the output.

use opd_core::DetectorConfig;
use opd_experiments::checkpoint::{run_fingerprint, sweep_many_checkpointed};
use opd_experiments::grid::{policy_grid, TwKind};
use opd_experiments::obs::sweep_many_profiled;
use opd_experiments::runner::{prepare_all, sweep_many, ConfigRun};
use opd_microvm::workloads::Workload;

const THREADS: [usize; 3] = [1, 2, 8];

fn grid() -> Vec<DetectorConfig> {
    // Mixes shared-eligible Constant-TW configs with private adaptive
    // ones, so both engine paths cross thread boundaries.
    let mut configs = policy_grid(TwKind::Constant, 500);
    configs.extend(policy_grid(TwKind::Adaptive, 250));
    configs
}

fn assert_runs_identical(a: &[Vec<ConfigRun>], b: &[Vec<ConfigRun>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: workload count");
    for (wa, wb) in a.iter().zip(b) {
        assert_eq!(wa.len(), wb.len(), "{what}: config count");
        for (ra, rb) in wa.iter().zip(wb) {
            assert_eq!(ra.detected, rb.detected, "{what}: {:?}", ra.config);
            assert_eq!(ra.anchored, rb.anchored, "{what}: {:?}", ra.config);
        }
    }
}

#[test]
fn sweep_results_are_bit_identical_across_thread_counts() {
    let ws = [Workload::Lexgen, Workload::Blockcomp];
    let prepared = prepare_all(&ws, 1, &[1_000], 50_000);
    let configs = grid();
    let baseline = sweep_many(&prepared, &configs, THREADS[0]);
    for &threads in &THREADS[1..] {
        let runs = sweep_many(&prepared, &configs, threads);
        assert_runs_identical(&baseline, &runs, &format!("threads={threads}"));
    }
}

#[test]
fn profiled_sweep_artifact_fields_are_thread_count_independent() {
    // The deterministic BENCH_obs.json fields: per-bucket and total
    // counters must not depend on which worker ran which bucket.
    let ws = [Workload::Lexgen];
    let prepared = prepare_all(&ws, 1, &[1_000], 50_000);
    let configs = grid();
    let (base_runs, base_profile) = sweep_many_profiled(&prepared, &configs, THREADS[0]);
    for &threads in &THREADS[1..] {
        let (runs, profile) = sweep_many_profiled(&prepared, &configs, threads);
        assert_runs_identical(&base_runs, &runs, &format!("profiled threads={threads}"));
        assert_eq!(profile.buckets.len(), base_profile.buckets.len());
        for (b, base) in profile.buckets.iter().zip(&base_profile.buckets) {
            assert_eq!(b.workload, base.workload);
            assert_eq!(b.unit_index, base.unit_index);
            assert_eq!(b.shared, base.shared);
            assert_eq!(b.members, base.members);
            for (key, got, want) in [
                ("scans", b.metrics.scans, base.metrics.scans),
                ("steps", b.metrics.steps, base.metrics.steps),
                (
                    "judged_steps",
                    b.metrics.judged_steps,
                    base.metrics.judged_steps,
                ),
                (
                    "compare_ops",
                    b.metrics.compare_ops,
                    base.metrics.compare_ops,
                ),
                ("elements", b.metrics.elements, base.metrics.elements),
            ] {
                assert_eq!(
                    got, want,
                    "threads={threads}: `{key}` drifted for {} unit {}",
                    b.workload, b.unit_index
                );
            }
            assert_eq!(b.static_compare_bound, base.static_compare_bound);
        }
        let (t, bt) = (profile.totals(), base_profile.totals());
        assert_eq!(
            (t.scans, t.steps, t.judged_steps, t.compare_ops, t.elements),
            (
                bt.scans,
                bt.steps,
                bt.judged_steps,
                bt.compare_ops,
                bt.elements
            ),
            "threads={threads}: sweep totals drifted"
        );
    }
}

#[test]
fn checkpointed_sweep_is_thread_count_independent_and_resumable_across_counts() {
    let dir = std::env::temp_dir().join(format!("opd_runner_determinism_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let ws = [Workload::Lexgen];
    let prepared = prepare_all(&ws, 1, &[1_000], 50_000);
    let configs = grid();
    let fingerprint = run_fingerprint(&configs, &ws, 1, 50_000);
    let baseline = sweep_many(&prepared, &configs, 1);

    for &threads in &THREADS {
        let path = dir.join(format!("sweep_t{threads}.ckpt"));
        let (runs, summary) =
            sweep_many_checkpointed(&prepared, &configs, threads, &path, fingerprint, false)
                .expect("checkpointed sweep succeeds");
        assert_runs_identical(&baseline, &runs, &format!("checkpoint threads={threads}"));
        assert_eq!(summary.restored_buckets, 0);
        assert!(summary.computed_buckets > 0);

        // A checkpoint written at one thread count restores bit-identical
        // results at another: record order in the file may differ, but
        // bucket content cannot.
        let resume_threads = THREADS[(THREADS.iter().position(|&t| t == threads).unwrap() + 1) % 3];
        let (restored, summary) = sweep_many_checkpointed(
            &prepared,
            &configs,
            resume_threads,
            &path,
            fingerprint,
            true,
        )
        .expect("resume succeeds");
        assert_runs_identical(
            &baseline,
            &restored,
            &format!("resume threads={threads}->{resume_threads}"),
        );
        assert_eq!(summary.computed_buckets, 0, "everything restores");
        assert_eq!(summary.damaged_tail_bytes, 0);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
