//! The committed `BENCH_sched.json` artifact: structural validity and
//! freshness. Unlike the timing artifacts, *every* field here is
//! deterministic (seeded DFS over a serialized runtime), so freshness
//! is byte-for-byte: the regenerated document must equal the committed
//! one exactly.

mod common;

use common::{parse_json, Json};

use opd_experiments::sched::{
    audit_lints, audit_subsystems, mutant_audits, sched_json, AUDIT_SEED,
};

fn committed_text() -> String {
    std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_sched.json"))
        .expect("BENCH_sched.json is committed at the repository root")
}

fn committed() -> Json {
    parse_json(&committed_text()).expect("BENCH_sched.json parses as one JSON document")
}

#[test]
fn committed_artifact_is_byte_identical_to_a_fresh_audit() {
    let audits = audit_subsystems();
    let mutants = mutant_audits();
    let lints = audit_lints(&audits);
    let fresh = sched_json(&audits, &mutants, &lints);
    assert_eq!(
        committed_text(),
        fresh,
        "stale BENCH_sched.json; regenerate with `cargo run --bin opd -- audit --write`"
    );
}

#[test]
fn committed_artifact_is_structurally_valid() {
    let doc = committed();
    assert_eq!(doc.get("schema").str(), "opd-bench-sched-v1");
    assert_eq!(doc.get("seed").as_u64(), AUDIT_SEED);
    assert_eq!(doc.get("lint_warnings").as_u64(), 0);

    let subsystems = doc.get("subsystems").arr();
    let names: Vec<&str> = subsystems.iter().map(|s| s.get("name").str()).collect();
    assert_eq!(names, ["metrics", "runner", "checkpoint"]);
    for s in subsystems {
        assert_eq!(s.get("verdict").str(), "clean");
        let executions = s.get("executions").as_u64();
        let naive = s.get("naive_executions").as_u64();
        assert!(executions >= 1);
        assert!(
            naive >= executions,
            "{}: DPOR explored more schedules than the naive search",
            s.get("name").str()
        );
        assert!(s.get("pruning_ratio").num() >= 1.0);
        assert!(s.get("transitions").as_u64() >= s.get("max_depth").as_u64());
    }

    let mutants = doc.get("mutants").arr();
    assert_eq!(mutants.len(), 4);
    for m in mutants {
        assert!(
            m.get("caught").boolean(),
            "mutant `{}` escaped the auditor",
            m.get("name").str()
        );
        assert!(
            !m.get("schedule").arr().is_empty(),
            "mutant `{}` has no replay witness",
            m.get("name").str()
        );
    }
}
