#!/usr/bin/env bash
# The full local gate: release build, every workspace test suite, warning-free clippy across the
# whole workspace, formatting, warning-free rustdoc, a deny-warnings
# static lint of every built-in workload, an `opd plan` smoke run on
# the default grid, the fault-injection smoke pass (injector ledgers
# vs decoder reports), an `opd trace` smoke run, an `opd audit` smoke
# run (DPOR exploration + mutant suite + OPD-R lints), an
# `opd serve` smoke run (supervised multi-tenant streaming under
# aggressive hazards), an observability smoke pass (`opd top`,
# `opd metrics-dump`, and the traced-serve → `opd flight` loop), an
# `opd certify` smoke run (resource certificates + OPD-A30x lints +
# BENCH_cert.json freshness), a release-mode kernel-equivalence
# smoke, the BENCH_kernel.json acceptance/freshness tests, the
# feature-gate guards keeping opd-core free of opd-obs when `obs` is
# off, opd-obs free of opd-sched when `sched` is off, and
# portable-simd out of default builds, plus an optional
# ThreadSanitizer pass when a nightly toolchain is available.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
RUST_BACKTRACE=1 cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
# Rustdoc is part of the API surface: broken intra-doc links and bad
# code fences fail the gate, not just clutter the docs.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q
cargo run --release -q --bin opd -- lint --deny-warnings
cargo run --release -q --bin opd -- plan --json > /dev/null
cargo run --release -q --bin opd -- faults --smoke > /dev/null
cargo run --release -q --bin opd -- trace lexgen --limit 5 --fuel 20000 > /dev/null
# Serve smoke: the multi-tenant streaming layer under aggressive
# hazards — restarts, timeouts, poison quarantine, and shedding all
# fire, frames are conserved, and every completed session's phase
# stream is bit-identical to the offline detector. (The
# BENCH_serve.json freshness test runs in the workspace suite above.)
cargo run --release -q --bin opd -- serve --smoke > /dev/null
# Observability smoke: the dashboard renders one service view with
# every SLO met (exit 0), the Prometheus exposition emits, and a
# traced smoke soak dumps post-mortems that `opd flight` replays.
# (BENCH_dash.json freshness, the null-span allocation gate, and the
# span-log thread-invariance tests run in the workspace suite above.)
cargo run --release -q --bin opd -- top --once --json > /dev/null
cargo run --release -q --bin opd -- metrics-dump --clients 48 > /dev/null
flight_dir="$(mktemp -d)"
cargo run --release -q --bin opd -- serve --smoke --postmortem-dir "$flight_dir" > /dev/null
first_pm="$(find "$flight_dir" -name '*.pm' | sort | head -n 1)"
cargo run --release -q --bin opd -- flight "$first_pm" > /dev/null
rm -rf "$flight_dir"
# Concurrency audit smoke: every modeled subsystem explores clean,
# every seeded mutant is caught, and no OPD-R lint fires. (The
# BENCH_sched.json freshness test runs in the workspace suite above.)
cargo run --release -q --bin opd -- audit --deny-warnings > /dev/null
# Certificate smoke: every (config × workload) pair of the default
# grid certifies without a single OPD-A30x finding at the full static
# bound. (The BENCH_cert.json byte-for-byte freshness test and the
# 224-pair differential soundness suite run in the workspace tests.)
cargo run --release -q --bin opd -- certify --deny-warnings > /dev/null
RUST_BACKTRACE=1 cargo test -q -p opd --test cert_artifact
# Kernel equivalence smoke: the SWAR and scalar kernels must agree
# bit-for-bit under release codegen too (the workspace run above
# exercises the same differential + proptest suite in debug; release
# is where the SWAR closed forms actually vectorise).
RUST_BACKTRACE=1 cargo test -q --release -p opd --test kernel_equivalence kernels_agree
# The committed kernel benchmark artifact must be structurally valid,
# meet the acceptance lines (budget, speedup, identical results), and
# be fresh for the current grid and workload.
RUST_BACKTRACE=1 cargo test -q -p opd --test kernel_artifact
# Zero-overhead-when-off also means zero-dependency-when-off: opd-core
# without its `obs` feature must not pull in opd-obs at all. (The
# BENCH_obs.json freshness/overhead acceptance tests run in the
# workspace test suite above.)
if (cd crates/core && cargo tree -e features) | grep -q "opd-obs"; then
    echo "check.sh: opd-core depends on opd-obs without the obs feature" >&2
    exit 1
fi
# Same discipline for the sched instrumentation: opd-obs without its
# `sched` feature must not pull in opd-sched, so release binaries
# carry plain std atomics and zero model-checking code.
if (cd crates/obs && cargo tree -e features) | grep -q "opd-sched"; then
    echo "check.sh: opd-obs depends on opd-sched without the sched feature" >&2
    exit 1
fi
# The `portable-simd` feature is nightly-only scaffolding: the default
# build must never enable it, and stable CI must not try to compile it.
if (cd crates/core && cargo tree -e features -f '{f}') | tr ',' '\n' | grep -q "portable-simd"; then
    echo "check.sh: portable-simd must stay off in default builds (nightly-only)" >&2
    exit 1
fi
# Optional: cross-check the model-level audit with ThreadSanitizer on
# the real std-atomics build. Needs a nightly toolchain with -Z
# sanitizer support; skip gracefully when it (or the network) is
# absent.
if rustup toolchain list 2>/dev/null | grep -q nightly; then
    if RUSTFLAGS="-Zsanitizer=thread" RUST_TEST_THREADS=1 \
        cargo +nightly test -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')" \
        -q -p opd-obs metrics 2>/dev/null; then
        echo "check.sh: ThreadSanitizer pass ok"
    else
        echo "check.sh: ThreadSanitizer pass unavailable (offline or no -Zbuild-std); skipped" >&2
    fi
else
    echo "check.sh: no nightly toolchain; ThreadSanitizer pass skipped" >&2
fi
echo "check.sh: all gates passed"
