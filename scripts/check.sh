#!/usr/bin/env bash
# The full local gate: release build, default test tier (includes the
# sweep-engine equivalence tests), and warning-free clippy.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
echo "check.sh: all gates passed"
