#!/usr/bin/env bash
# The full local gate: release build, every workspace test suite, warning-free clippy across the
# whole workspace, formatting, a deny-warnings static lint of every
# built-in workload, an `opd plan` smoke run on the default grid, and
# the fault-injection smoke pass (injector ledgers vs decoder reports).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
RUST_BACKTRACE=1 cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
cargo run --release -q --bin opd -- lint --deny-warnings
cargo run --release -q --bin opd -- plan --json > /dev/null
cargo run --release -q --bin opd -- faults --smoke > /dev/null
echo "check.sh: all gates passed"
