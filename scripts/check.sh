#!/usr/bin/env bash
# The full local gate: release build, every workspace test suite, warning-free clippy across the
# whole workspace, formatting, a deny-warnings static lint of every
# built-in workload, an `opd plan` smoke run on the default grid, the
# fault-injection smoke pass (injector ledgers vs decoder reports), an
# `opd trace` smoke run, and the feature-gate guard keeping opd-core
# free of opd-obs when `obs` is off.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
RUST_BACKTRACE=1 cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
cargo run --release -q --bin opd -- lint --deny-warnings
cargo run --release -q --bin opd -- plan --json > /dev/null
cargo run --release -q --bin opd -- faults --smoke > /dev/null
cargo run --release -q --bin opd -- trace lexgen --limit 5 --fuel 20000 > /dev/null
# Zero-overhead-when-off also means zero-dependency-when-off: opd-core
# without its `obs` feature must not pull in opd-obs at all. (The
# BENCH_obs.json freshness/overhead acceptance tests run in the
# workspace test suite above.)
if (cd crates/core && cargo tree -e features) | grep -q "opd-obs"; then
    echo "check.sh: opd-core depends on opd-obs without the obs feature" >&2
    exit 1
fi
echo "check.sh: all gates passed"
