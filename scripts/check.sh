#!/usr/bin/env bash
# The full local gate: release build, default test tier (includes the
# sweep-engine equivalence tests), warning-free clippy, and a
# deny-warnings static lint of every built-in workload.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo run --release -q --bin opd -- lint --deny-warnings
echo "check.sh: all gates passed"
