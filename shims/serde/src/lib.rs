//! Offline stand-in for `serde`: marker traits and the derive macro
//! re-export, enough for `#[cfg_attr(feature = "serde", derive(...))]`
//! annotations to compile. No actual serialization machinery.

#![forbid(unsafe_code)]

/// Marker for types that can (in real serde) be serialized.
pub trait Serialize {}

/// Marker for types that can (in real serde) be deserialized.
pub trait Deserialize<'de>: Sized {}

/// Owned-deserialization alias mirroring serde's helper trait.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
