//! Offline stand-in for `serde_derive`: the derive macros expand to
//! nothing, so `#[derive(serde::Serialize)]` compiles without
//! generating impls. This is compile-gating only; actual
//! serialization is unsupported offline.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (accepts and ignores `#[serde(...)]`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (accepts and ignores `#[serde(...)]`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
