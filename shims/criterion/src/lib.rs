//! Offline stand-in for `criterion`: the macro/entry-point surface
//! this workspace's benches use, backed by a real (if simple)
//! measurement loop — warmup, calibrated iteration counts, and a
//! median over `sample_size` samples — following the spirit of the
//! warmup cautions in Barrett et al. (no statistics beyond the
//! median, no plots, no persistence).

#![forbid(unsafe_code)]

use std::time::Instant;

pub use core::hint::black_box;

/// Wall-clock budget per sample during calibration.
const TARGET_SAMPLE_NANOS: u128 = 25_000_000; // 25 ms
/// Hard cap on iterations per sample (guards tiny routines).
const MAX_ITERS_PER_SAMPLE: u64 = 1 << 20;

/// Per-sample throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched inputs are sized; the shim treats all variants alike.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark harness context.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 12 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates throughput reporting for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            median_nanos: None,
        };
        f(&mut bencher);
        report(
            &self.name,
            &id.into(),
            bencher.median_nanos,
            self.throughput,
        );
        self
    }

    /// Ends the group (the shim reports eagerly, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Runs and times one routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    median_nanos: Option<f64>,
}

impl Bencher {
    /// Times `routine`, amortizing over a calibrated iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibration doubles the iteration count until one sample
        // costs enough wall-clock time to be measurable.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos();
            if elapsed >= TARGET_SAMPLE_NANOS || iters >= MAX_ITERS_PER_SAMPLE {
                break;
            }
            iters = iters.saturating_mul(2).min(MAX_ITERS_PER_SAMPLE);
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos();
            samples.push(elapsed as f64 / iters as f64);
        }
        self.median_nanos = Some(median(&mut samples));
    }

    /// Times `routine` over inputs produced by `setup`; setup cost is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Keep batches small: batched routines in this workspace are
        // not micro-operations.
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed().as_nanos();
            if elapsed >= TARGET_SAMPLE_NANOS || iters >= 256 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed().as_nanos();
            samples.push(elapsed as f64 / iters as f64);
        }
        self.median_nanos = Some(median(&mut samples));
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 0 {
        (samples[mid - 1] + samples[mid]) / 2.0
    } else {
        samples[mid]
    }
}

fn report(group: &str, id: &str, median_nanos: Option<f64>, throughput: Option<Throughput>) {
    let Some(nanos) = median_nanos else {
        println!("{group}/{id}: no measurement recorded");
        return;
    };
    let time = format_nanos(nanos);
    match throughput {
        Some(Throughput::Elements(n)) if nanos > 0.0 => {
            let rate = n as f64 / (nanos / 1e9);
            println!("{group}/{id}  time: [{time}]  thrpt: [{} elem/s]", format_rate(rate));
        }
        Some(Throughput::Bytes(n)) if nanos > 0.0 => {
            let rate = n as f64 / (nanos / 1e9);
            println!("{group}/{id}  time: [{time}]  thrpt: [{} B/s]", format_rate(rate));
        }
        _ => println!("{group}/{id}  time: [{time}]"),
    }
}

fn format_nanos(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.4} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.4} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.4} us", nanos / 1e3)
    } else {
        format!("{nanos:.2} ns")
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.3}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; the shim has
            // no CLI surface, so arguments are ignored.
            $( $group(); )+
        }
    };
}
