//! Offline stand-in for `proptest`: a small but *functional*
//! property-testing engine covering the subset of the proptest API
//! this workspace uses.
//!
//! Differences from real proptest:
//!
//! - Values are generated from a deterministic per-test seed (derived
//!   from the test name), so runs are reproducible without a
//!   persistence file.
//! - There is no shrinking: a failing case reports its case number
//!   and message, not a minimized input.
//! - Only the strategy combinators used in this repository are
//!   provided (`prop_map`, `prop_flat_map`, `prop_recursive`,
//!   `boxed`, tuples, ranges, `Just`, unions, collection `vec`).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares deterministic property tests.
///
/// Supports the `#![proptest_config(...)]` inner attribute and any
/// number of `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(
                    ::core::stringify!($name),
                    &($config),
                    |__proptest_rng| {
                        $(
                            let $pat = $crate::strategy::Strategy::generate(
                                &($strat),
                                __proptest_rng,
                            );
                        )+
                        let __proptest_result: ::core::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > = (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                        __proptest_result
                    },
                );
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Fails the current property-test case unless `$cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!(
            $cond,
            ::core::concat!("assertion failed: ", ::core::stringify!($cond))
        )
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property-test case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
            ::std::format!($($fmt)+),
            __left,
            __right
        );
    }};
}

/// Fails the current property-test case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __left
        );
    }};
}

/// Picks among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((
                $weight as u32,
                $crate::strategy::Strategy::boxed($strat),
            )),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
