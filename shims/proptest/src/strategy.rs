//! Value-generation strategies: the combinator subset this workspace
//! uses, generating directly from a [`TestRng`] (no value trees).

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// Generates pseudo-random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `self` is the leaf; `recurse` wraps an
    /// inner strategy into a branch. `_desired_size` and `_branch`
    /// are accepted for API compatibility; nesting is bounded by
    /// `depth` levels.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            // At each level prefer branching, but keep a real chance
            // of stopping early so sizes vary.
            strat = Union::new(vec![(1, strat.clone()), (2, recurse(strat).boxed())]).boxed();
        }
        strat
    }

    /// Type-erases this strategy behind an `Arc`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn ErasedStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.erased_generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice among type-erased strategies (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// A union of `(weight, strategy)` options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or all weights are zero.
    #[must_use]
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs a positive total weight");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.options {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick is below the total weight")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(0) as u64;
                // An empty range degenerates to its start (the real
                // proptest rejects; tests here never use empty ranges).
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let start = *self.start() as i128;
                let span = (*self.end() as i128 - start + 1).max(1) as u64;
                (start + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Closed upper bound: scale by the next representable step.
        let lo = *self.start();
        let hi = *self.end();
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
