//! Deterministic case runner: fixed per-test seeds, reproducible
//! failures, no shrinking.

use std::fmt;

/// A case failure raised by `prop_assert!` (or returned manually).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration; only `cases` is meaningful in this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A small deterministic generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded sampling; bias is negligible for
        // test-data generation.
        let wide = u128::from(self.next_u64()) * u128::from(bound);
        (wide >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn seed_for(name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Runs `config.cases` deterministic cases of `body`, panicking (like
/// a failed `assert!`) on the first case that returns an error.
///
/// # Panics
///
/// Panics when a case fails; the message includes the case number so
/// the failure is reproducible.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for case in 0..config.cases {
        let mut rng = TestRng::from_seed(seed_for(name, case));
        if let Err(err) = body(&mut rng) {
            panic!("property '{name}' failed at case {case}/{}: {err}", config.cases);
        }
    }
}
