//! `any::<T>()` support for the primitive types the tests use.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (`any::<bool>()`, ...).
#[must_use]
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-range strategy for one primitive type.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_prims {
    ($($t:ty => |$rng:ident| $gen:expr;)*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, $rng: &mut TestRng) -> $t {
                $gen
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_prims! {
    bool => |rng| rng.gen_bool();
    u8 => |rng| rng.next_u64() as u8;
    u16 => |rng| rng.next_u64() as u16;
    u32 => |rng| rng.next_u64() as u32;
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
    i32 => |rng| rng.next_u64() as i32;
    i64 => |rng| rng.next_u64() as i64;
}
