//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Vec`s with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A vector of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
