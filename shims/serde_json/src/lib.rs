//! Offline stand-in for `serde_json`: the entry points exist so code
//! and tests compile, but they return errors at runtime because the
//! serde shim has no real serialization machinery.

#![forbid(unsafe_code)]

use std::fmt;

/// JSON error (always "unsupported" in this shim).
#[derive(Debug, Clone)]
pub struct Error(&'static str);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Stub: always errors (no serialization support offline).
///
/// # Errors
///
/// Always returns [`Error`].
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Err(Error("serde_json shim: serialization unsupported offline"))
}

/// Stub: always errors (no deserialization support offline).
///
/// # Errors
///
/// Always returns [`Error`].
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error("serde_json shim: deserialization unsupported offline"))
}
