//! Offline stand-in for the `bytes` crate: just enough of `Buf`,
//! `BufMut`, `Bytes`, and `BytesMut` for little-endian length-prefixed
//! codecs over contiguous buffers.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// Read access to a contiguous buffer, consuming from the front.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Drops `cnt` bytes from the front.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Consumes a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }
    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }
    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Append-only write access to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
    /// An empty buffer with `cap` bytes preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }
    /// Buffer length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vec.len()
    }
    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }
    /// Freezes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { vec: self.vec }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

/// An immutable byte buffer; dereferences to `[u8]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    vec: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Self {
        Bytes { vec }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"OPDT");
        b.put_u8(7);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(0x0102_0304_0506_0708);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(&frozen[..4], b"OPDT");
        r.advance(4);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 0);
    }
}
