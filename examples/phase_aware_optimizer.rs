//! A complete phase-aware optimization client: derives its MPL from
//! its cost model, drives an online detector, simulates the net
//! benefit, and adapts the MPL from the phase lengths it observes —
//! the full loop the paper's Section 7 sketches as future work.
//!
//! ```sh
//! cargo run --release --example phase_aware_optimizer
//! ```

use opd::baseline::BaselineSolution;
use opd::client::{
    break_even_mpl, recommended_mpl, simulate, simulate_intervals, AdaptiveMplController, CostModel,
};
use opd::core::{DetectorConfig, PhaseDetector, TwPolicy};
use opd::microvm::workloads::Workload;
use opd::trace::intervals_of;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::Ruleng;
    let trace = workload.trace(1);
    let total = trace.branches().len() as u64;

    // 1. The client knows its own economics.
    let model = CostModel::new(2_000, 1.3, 200)?;
    let mpl = recommended_mpl(&model);
    println!("client: {model}");
    println!(
        "break-even phase length {} -> requesting MPL {}",
        break_even_mpl(&model),
        mpl
    );

    // 2. Configure a detector for that granularity (CW = MPL/2).
    let config = DetectorConfig::builder()
        .current_window((mpl / 2) as usize)
        .tw_policy(TwPolicy::Adaptive)
        .build()?;
    let mut detector = PhaseDetector::new(config);
    let states = detector.run(trace.branches());

    // 3. What did phase-guided optimization buy? Speedup only applies
    //    to elements that were *genuinely* stable (the oracle's
    //    phases); optimizing transition elements earns nothing.
    let oracle = BaselineSolution::compute(&trace, mpl)?;
    let outcome = simulate(&states, oracle.phases(), &model);
    println!("\nwith the online detector: {outcome}");

    let reference = simulate_intervals(oracle.phases(), oracle.phases(), total, &model);
    println!("oracle client reference:  {reference}");
    if reference.net_benefit() > 0.0 {
        println!(
            "captured {:.0}% of the oracle client's benefit",
            100.0 * outcome.net_benefit() / reference.net_benefit()
        );
    }

    // 4. Adapt the MPL from the phases actually seen.
    let mut controller = AdaptiveMplController::new(&model);
    for phase in intervals_of(&states) {
        controller.observe_phase(phase.len());
    }
    println!("\nafter one run the controller proposes: {controller}");
    let retuned_mpl = controller.current_mpl();
    if retuned_mpl != mpl {
        let retuned = DetectorConfig::builder()
            .current_window(controller.current_window())
            .tw_policy(TwPolicy::Adaptive)
            .build()?;
        let retuned_oracle = BaselineSolution::compute(&trace, retuned_mpl)?;
        let states2 = PhaseDetector::new(retuned).run(trace.branches());
        let outcome2 = simulate(&states2, retuned_oracle.phases(), &model);
        println!("re-running with the adapted MPL: {outcome2}");
    }
    Ok(())
}
