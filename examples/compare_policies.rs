//! Compares the three trailing-window strategies of the paper —
//! Fixed Interval (the prior-art default), Constant TW with skip
//! factor 1, and Adaptive TW — on one workload across MPL values.
//!
//! ```sh
//! cargo run --release --example compare_policies
//! ```

use opd::experiments::grid::{half_mpl_cw, policy_grid, TwKind};
use opd::experiments::report::{fmt_mpl, fmt_score, Table};
use opd::experiments::runner::{best_combined, default_threads, sweep, PreparedWorkload};
use opd::microvm::workloads::Workload;

/// A representative subset of the paper's MPL values, to keep the
/// example quick; the `fig4` binary sweeps the full range.
const MPLS: [u64; 3] = [1_000, 10_000, 100_000];

fn main() {
    let workload = Workload::Audiodec;
    println!(
        "workload: {workload} (analogue of {})",
        workload.paper_benchmark()
    );

    let prepared = PreparedWorkload::prepare(workload, 1, &MPLS);
    println!("trace: {} branches\n", prepared.total_elements());

    let mut table = Table::new(
        "Best combined score per trailing-window strategy (CW = 1/2 MPL)",
        &["MPL", "Fixed Interval", "Constant TW", "Adaptive TW"],
    );
    for &mpl in &MPLS {
        let cw = half_mpl_cw(mpl);
        let mut cells = vec![fmt_mpl(mpl)];
        for kind in [TwKind::FixedInterval, TwKind::Constant, TwKind::Adaptive] {
            let runs = sweep(&prepared, &policy_grid(kind, cw), default_threads());
            cells.push(fmt_score(best_combined(&runs, prepared.oracle(mpl))));
        }
        table.row(cells);
    }
    println!("{table}");
    println!("A skip factor of 1 (Constant/Adaptive) responds to changes");
    println!("within an interval; the fixed-interval policy only compares");
    println!("whole adjacent intervals and misses misaligned boundaries.");
}
