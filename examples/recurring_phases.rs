//! Recurring-phase detection: the paper's first future-work item.
//! A dynamic optimizer can memoize an optimization decision per phase
//! *class* and reuse it whenever the phase recurs.
//!
//! ```sh
//! cargo run --release --example recurring_phases
//! ```

use std::collections::HashMap;

use opd::core::{
    AnalyzerPolicy, DetectorConfig, ModelPolicy, PhaseId, PhasePredictor, RecurringPhaseDetector,
};
use opd::microvm::workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // blockcomp alternates compress and expand blocks: two phase
    // classes, each recurring six times. Their working *sets* are
    // identical — only frequencies differ — so both the detector and
    // the signature matching use weighted similarity.
    let trace = Workload::Blockcomp.trace(1);

    let config = DetectorConfig::builder()
        .current_window(500)
        .model(ModelPolicy::WeightedSet)
        .analyzer(AnalyzerPolicy::Threshold(0.6))
        .build()?;
    let mut detector = RecurringPhaseDetector::new(config, 0.7)?;
    let _states = detector.run(trace.branches());

    println!(
        "{} phase occurrences across {} distinct classes\n",
        detector.phases().len(),
        detector.registry().class_count()
    );

    // A memoization client: pretend each first occurrence costs an
    // expensive analysis, and each recurrence reuses it.
    let mut memo: HashMap<PhaseId, u64> = HashMap::new();
    let mut analyses = 0u32;
    let mut reuses = 0u32;
    for phase in detector.phases() {
        if phase.recurrence {
            reuses += 1;
            let expected = memo.get(&phase.class);
            if let Some(&len) = expected {
                let drift = (phase.end - phase.start).abs_diff(len);
                if drift * 10 > len {
                    // The phase changed shape; a real client would
                    // re-analyze here.
                }
            }
        } else {
            analyses += 1;
            memo.insert(phase.class, phase.end - phase.start);
        }
    }
    println!("optimization analyses performed: {analyses}");
    println!("memoized decisions reused:       {reuses}");

    println!("\nfirst ten occurrences:");
    for p in detector.phases().iter().take(10) {
        println!(
            "  [{:>7}, {:>7}) {} {}",
            p.start,
            p.end,
            p.class,
            if p.recurrence {
                "(recurrence)"
            } else {
                "(new)"
            }
        );
    }
    // A predictor on top of the class sequence: after the alternation
    // is learned, the client knows the next phase before it starts.
    let mut predictor = PhasePredictor::new();
    for p in detector.phases() {
        let _ = predictor.predict_next();
        predictor.observe(p.class, p.end - p.start);
    }
    println!(
        "\npredictor: {:.0}% of next-phase predictions correct ({} scored)",
        100.0 * predictor.accuracy(),
        predictor.predictions_made()
    );
    if let Some(next) = predictor.predict_next() {
        println!(
            "prediction for what follows: {} (~{} elements, {:.0}% confidence)",
            next.class,
            next.length,
            100.0 * next.confidence
        );
    }

    for id in 0..detector.registry().class_count() as u32 {
        let id = detector
            .phases()
            .iter()
            .map(|p| p.class)
            .find(|c| c.index() == id)
            .expect("class ids are dense");
        println!(
            "class {id}: {} occurrences",
            detector.registry().occurrences(id)
        );
    }
    Ok(())
}
