//! Inspects the baseline solution's view of one execution: the
//! call-loop forest, the recursion roots, and how the selected phases
//! change with the minimum phase length.
//!
//! ```sh
//! cargo run --release --example oracle_inspect
//! ```

use opd::baseline::{CallLoopForest, RepNode};
use opd::microvm::workloads::Workload;

fn print_node(node: &RepNode, depth: usize, budget: &mut usize) {
    if *budget == 0 {
        return;
    }
    *budget -= 1;
    println!(
        "{:indent$}{} [{}, {}) len={}{}",
        "",
        node.construct(),
        node.start(),
        node.end(),
        node.len(),
        if node.is_recursion_root() {
            "  <recursion root>"
        } else {
            ""
        },
        indent = depth * 2
    );
    for child in node.children().iter().take(3) {
        print_node(child, depth + 1, budget);
    }
    if node.children().len() > 3 && *budget > 0 {
        *budget -= 1;
        println!(
            "{:indent$}... {} more children",
            "",
            node.children().len() - 3,
            indent = (depth + 1) * 2
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::Srccomp;
    let trace = workload.trace(1);
    let forest = CallLoopForest::build(&trace)?;
    println!(
        "{workload}: {} construct executions over {} branches\n",
        forest.node_count(),
        forest.total_branches()
    );

    println!("top of the call-loop forest:");
    let mut budget = 24;
    for root in forest.roots() {
        print_node(root, 0, &mut budget);
    }

    println!("\nphases per MPL:");
    for mpl in [1_000u64, 5_000, 10_000, 25_000, 50_000, 100_000] {
        let sol = forest.solve(mpl);
        println!("  {sol}");
    }

    // The same forest solves for any client-specific MPL without
    // re-reading the trace.
    let custom = forest.solve(33_000);
    println!("\na client needing 33K-branch phases would see:");
    for p in custom.phases().iter().take(6) {
        println!("  {p}");
    }
    Ok(())
}
