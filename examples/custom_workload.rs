//! Builds a custom MicroVM program — a three-stage pipeline with a
//! recursive middle stage — traces it, and watches an online detector
//! track its phases.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use opd::baseline::BaselineSolution;
use opd::core::{DetectorConfig, PhaseDetector};
use opd::microvm::{ArgExpr, Interpreter, ProgramBuilder, TakenDist, Trip};
use opd::scoring::score_states;
use opd::trace::{intervals_of, ExecutionTrace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program with three distinct stages: parse (flat loop), solve
    // (bounded recursion), and emit (flat loop with a different
    // working set).
    let mut b = ProgramBuilder::new();
    let solve = b.declare("solve");
    let main_fn = b.declare("main");

    b.define(solve, |f| {
        f.branches(3, TakenDist::Bernoulli(0.5));
        f.repeat(Trip::Uniform(2, 6), |work| {
            work.branches(2, TakenDist::Bernoulli(0.7));
        });
        f.if_arg_positive(|rec| {
            rec.call(solve, ArgExpr::Dec);
            rec.call(solve, ArgExpr::Dec);
        });
    });

    b.define(main_fn, |f| {
        // Stage 1: parse.
        f.repeat(Trip::Fixed(4_000), |parse| {
            parse.branches(2, TakenDist::Bernoulli(0.6));
        });
        // Stage 2: a burst of recursive solves.
        f.repeat(Trip::Fixed(120), |burst| {
            burst.branch(TakenDist::Bernoulli(0.5));
            burst.call(solve, ArgExpr::Draw(3, 6));
        });
        // Stage 3: emit.
        f.repeat(Trip::Fixed(5_000), |emit| {
            emit.branches(2, TakenDist::Bernoulli(0.8));
        });
    });
    b.entry(main_fn);
    let program = b.build()?;
    println!("{program}");

    let mut trace = ExecutionTrace::new();
    let summary = Interpreter::new(&program, 2024).run(&mut trace)?;
    println!(
        "executed: {} branches, deepest call stack {}",
        summary.branches, summary.max_depth
    );

    let oracle = BaselineSolution::compute(&trace, 5_000)?;
    println!("oracle phases (MPL 5K):");
    for p in oracle.phases() {
        println!("  {p}");
    }

    let config = DetectorConfig::builder().current_window(2_500).build()?;
    let mut detector = PhaseDetector::new(config);
    let states = detector.run(trace.branches());
    println!("detected phases:");
    for p in intervals_of(&states) {
        println!("  {p}");
    }
    println!("{}", score_states(&states, &oracle));
    Ok(())
}
