//! Drives a phase detector the way a VM's dynamic optimizer would:
//! online, one profile element at a time, reacting to phase starts and
//! ends as they are reported.
//!
//! ```sh
//! cargo run --release --example streaming_detector
//! ```

use opd::core::{AnalyzerPolicy, DetectorConfig, PhaseDetector, TwPolicy};
use opd::microvm::workloads::Workload;
use opd::trace::PhaseState;

/// A toy optimization client: specializes code while a phase is
/// stable and deoptimizes when the phase ends.
#[derive(Default)]
struct OptimizerClient {
    specializations: u32,
    deoptimizations: u32,
    longest_phase: u64,
    current_start: Option<u64>,
}

impl OptimizerClient {
    fn on_state(&mut self, offset: u64, prev: PhaseState, now: PhaseState) {
        match (prev, now) {
            (PhaseState::Transition, PhaseState::Phase) => {
                self.specializations += 1;
                self.current_start = Some(offset);
                if self.specializations <= 5 {
                    println!("  [client] phase started at element {offset}: specializing");
                }
            }
            (PhaseState::Phase, PhaseState::Transition) => {
                self.deoptimizations += 1;
                if let Some(start) = self.current_start.take() {
                    self.longest_phase = self.longest_phase.max(offset - start);
                }
                if self.deoptimizations <= 5 {
                    println!("  [client] phase ended at element {offset}: deoptimizing");
                }
            }
            _ => {}
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = Workload::Querydb.trace(1);
    let config = DetectorConfig::builder()
        .current_window(2_000)
        .tw_policy(TwPolicy::Adaptive)
        .analyzer(AnalyzerPolicy::Average { delta: 0.05 })
        .build()?;
    let mut detector = PhaseDetector::new(config);
    let mut client = OptimizerClient::default();

    // The online loop: the instrumented program hands the detector one
    // element at a time (skip factor 1); the client reacts to edges.
    let mut prev = PhaseState::Transition;
    for (i, &element) in trace.branches().iter().enumerate() {
        let now = detector.process(&[element]);
        client.on_state(i as u64, prev, now);
        prev = now;
    }

    println!("\nprocessed {} elements", detector.elements_consumed());
    println!(
        "client actions: {} specializations, {} deoptimizations",
        client.specializations, client.deoptimizations
    );
    println!("longest stable phase: {} elements", client.longest_phase);
    if let Some(sim) = detector.last_similarity() {
        println!("final similarity value: {sim:.3}");
    }
    Ok(())
}
