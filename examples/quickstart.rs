//! Quickstart: execute a workload, run one online phase detector over
//! its branch profile, and score it against the baseline oracle.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use opd::baseline::BaselineSolution;
use opd::core::{AnalyzerPolicy, DetectorConfig, ModelPolicy, PhaseDetector, TwPolicy};
use opd::microvm::workloads::Workload;
use opd::scoring::score_states;
use opd::trace::{intervals_of, TraceStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Execute the JLex-analogue workload, recording both the
    //    conditional-branch trace and the call-loop trace.
    let trace = Workload::Lexgen.trace(1);
    println!("trace: {}", TraceStats::measure(&trace));

    // 2. Compute the baseline (oracle) phases for a client that needs
    //    phases of at least 10,000 branches.
    let mpl = 10_000;
    let oracle = BaselineSolution::compute(&trace, mpl)?;
    println!("oracle: {oracle}");

    // 3. Configure an online detector: CW = half the MPL, adaptive
    //    trailing window, unweighted model, threshold analyzer.
    let config = DetectorConfig::builder()
        .current_window((mpl / 2) as usize)
        .tw_policy(TwPolicy::Adaptive)
        .model(ModelPolicy::UnweightedSet)
        .analyzer(AnalyzerPolicy::Threshold(0.6))
        .build()?;
    let mut detector = PhaseDetector::new(config);
    let states = detector.run(trace.branches());

    // 4. Inspect what it found and score it.
    let detected = intervals_of(&states);
    println!("detector found {} phases:", detected.len());
    for phase in detected.iter().take(8) {
        println!("  {phase} ({} branches)", phase.len());
    }
    if detected.len() > 8 {
        println!("  ... and {} more", detected.len() - 8);
    }

    let score = score_states(&states, &oracle);
    println!("{score}");
    Ok(())
}
