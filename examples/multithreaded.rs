//! Multi-threaded phase detection: the Section 4.1 extension.
//!
//! A time-sliced VM emits one merged, thread-tagged profile stream;
//! demultiplexing it yields one ordinary trace per thread, and phases
//! are detected (and oracled) per thread.
//!
//! ```sh
//! cargo run --release --example multithreaded
//! ```

use opd::baseline::BaselineSolution;
use opd::core::{DetectorConfig, PhaseDetector};
use opd::microvm::workloads::Workload;
use opd::scoring::score_states;
use opd::trace::interleave;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three "threads" running different workloads.
    let threads = [Workload::Lexgen, Workload::Querydb, Workload::Ruleng];
    let traces: Vec<_> = threads.iter().map(|w| w.trace(1)).collect();

    // The VM merges their profile streams with a 256-record quantum.
    let merged = interleave(traces, 256);
    println!(
        "merged stream: {} records from {} threads\n",
        merged.len(),
        merged.threads().len()
    );

    // Demux and run the usual single-threaded pipeline per thread.
    let mpl = 10_000;
    for (thread, trace) in merged.demux() {
        let workload = threads[thread.index() as usize];
        let oracle = BaselineSolution::compute(&trace, mpl)?;
        let config = DetectorConfig::builder()
            .current_window((mpl / 2) as usize)
            .build()?;
        let mut detector = PhaseDetector::new(config);
        let states = detector.run(trace.branches());
        let score = score_states(&states, &oracle);
        println!(
            "{thread} ({workload:>8}): {} branches, {} oracle phases, {score}",
            trace.branches().len(),
            oracle.phase_count(),
        );
    }
    Ok(())
}
