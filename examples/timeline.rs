//! Visual comparison of a detector's output against the oracle: one
//! ASCII track per MPL value, `#` = in phase, `.` = transition.
//!
//! ```sh
//! cargo run --release --example timeline
//! ```

use opd::baseline::CallLoopForest;
use opd::core::{AnalyzerPolicy, DetectorConfig, ModelPolicy, PhaseDetector, TwPolicy};
use opd::experiments::report::timeline;
use opd::microvm::workloads::Workload;
use opd::scoring::score_intervals;
use opd::trace::intervals_of;

const WIDTH: usize = 96;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // blockcomp's compress/expand alternation is clearly visible: the
    // weighted model tracks the oracle closely because the phases
    // differ only in their frequency mix.
    let workload = Workload::Blockcomp;
    let trace = workload.trace(1);
    let total = trace.branches().len() as u64;
    let forest = CallLoopForest::build(&trace)?;
    println!("{workload}: {total} branches\n");

    for mpl in [1_000u64, 10_000, 100_000] {
        let oracle = forest.solve(mpl);
        let config = DetectorConfig::builder()
            .current_window((mpl / 2) as usize)
            .tw_policy(TwPolicy::Adaptive)
            .model(ModelPolicy::WeightedSet)
            .analyzer(AnalyzerPolicy::Threshold(0.6))
            .build()?;
        let mut detector = PhaseDetector::new(config);
        let states = detector.run(trace.branches());
        let detected = intervals_of(&states);
        let score = score_intervals(&detected, &oracle);

        println!("MPL {mpl:>6}  (score {:.3})", score.combined());
        println!("  oracle   {}", timeline(oracle.phases(), total, WIDTH));
        println!("  detector {}", timeline(&detected, total, WIDTH));
        println!();
    }
    println!("legend: '#' in phase, '.' transition, '-' mixed cell");
    Ok(())
}
