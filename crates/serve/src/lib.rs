//! The fault-tolerant multi-tenant streaming session layer: thousands
//! of concurrent detector *sessions* over live trace streams.
//!
//! Everything below this crate is batch — a trace is fully
//! materialized, then swept. `opd-serve` turns the detector into a
//! *service*: each client is a [`Session`](session::Session) consuming
//! encoded trace frames through a bounded ingest queue, and the
//! robustness primitives built by earlier layers are composed into a
//! supervision loop:
//!
//! * **Backpressure** — per-session bounded queues with three
//!   overload disciplines ([`BackpressureMode`]): block the producer,
//!   shed the oldest queued frame, or reject the incoming one. Every
//!   dropped or deferred frame lands in an exact [`ShedLedger`],
//!   mirroring the `opd-faults` ledger discipline.
//! * **Supervision** — sessions that crash or wedge are restarted
//!   with bounded exponential backoff and a per-frame retry budget
//!   ([`SupervisionPolicy`]); a frame that keeps killing its session
//!   is quarantined as a poison pill, and a session that accumulates
//!   too many poison frames is quarantined wholesale.
//! * **Crash recovery** — a session's detector state is rebuilt by
//!   replaying its accepted-element log, so a restarted session's
//!   phase stream is bit-identical to an uninterrupted one.
//! * **Graceful degradation** — certificate-based admission control
//!   (`opd-analyze`'s `ResourceCertificate::admits`) refuses sessions
//!   whose certified memory high-water mark exceeds the budget before
//!   they consume anything.
//! * **Dirty ingest** — every frame decodes through the panic-free
//!   `decode_trace_resync` path: corrupt bytes degrade one session's
//!   accuracy, never the process.
//!
//! The engine ([`run_service`]) is a *deterministic simulation*:
//! sessions are partitioned into virtual shards, each shard advances
//! in virtual-time ticks, and every hazard (crash, wedge, poison) is
//! a stateless keyed draw — so a run's outcome is a pure function of
//! its configuration, independent of thread count, and resumable from
//! an OPDK checkpoint after a hard kill ([`checkpoint`]).
//!
//! # Examples
//!
//! ```
//! use opd_serve::{run_service, MemorySource, ServeConfig, ServiceOptions};
//!
//! let source = MemorySource::synthetic(4, 6, 40);
//! let report = run_service(
//!     &ServeConfig::default(),
//!     &source,
//!     &ServiceOptions::default(),
//! )
//! .unwrap();
//! assert_eq!(report.completed(), 4);
//! assert_eq!(report.verify_failures(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod checkpoint;
pub mod flight;
mod ledger;
pub mod service;
pub mod session;
mod supervisor;

pub use flight::{Postmortem, PostmortemReason, SessionTracer, TraceConfig, POSTMORTEM_HEADER};
pub use ledger::ShedLedger;
pub use service::{
    run_service, run_service_traced, run_service_with, FrameSource, MemorySource, NullSubscriber,
    ServeConfig, ServeError, ServiceMetrics, ServiceOptions, ServiceReport, ServiceTrace,
    Subscriber,
};
pub use session::{BackpressureMode, IngestPolicy, SessionReport, SessionStats, SessionStatus};
pub use supervisor::{keyed_hash, HazardPolicy, NoHazards, SeededHazards, SupervisionPolicy};
