//! The service engine: virtual shards of sessions advanced by a
//! deterministic tick loop, in parallel across OS threads.
//!
//! Sessions are partitioned by `client % vshards` into *virtual
//! shards*. Each vshard is a single-threaded simulation — delivery,
//! backpressure, hazards, supervision all advance in virtual-time
//! ticks, and every random decision is a stateless keyed draw — so a
//! vshard's outcome is a pure function of the configuration and the
//! [`FrameSource`]. OS threads pick up whole vshards (the same
//! disjoint-ownership shape as the sweep runner's buckets), which
//! makes the full service report **bit-identical across thread
//! counts** and resumable: completed vshards persist to an OPDK
//! checkpoint and a restarted run recomputes only the missing ones.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use opd_analyze::ResourceCertificate;
use opd_core::DetectorConfig;
use opd_obs::{
    render_span_log, CounterId, DetectorEvent, HistogramId, MetricsRegistry, Span, SpanRecorder,
};
use opd_trace::{encode_trace, ExecutionTrace, MethodId, ProfileElement, TraceSink};

use crate::checkpoint::{CheckpointError, ServeCheckpointWriter};
use crate::flight::{Postmortem, SessionTracer, TraceConfig};
use crate::ledger::ShedLedger;
use crate::session::{Session, SessionReport, SessionStatus};
use crate::supervisor::{keyed_hash, SeededHazards};
use crate::{IngestPolicy, SupervisionPolicy};

/// Where a session's frames come from.
///
/// Implementations must be cheap to call repeatedly and **pure**: the
/// same `(client, index)` must always yield the same bytes, because a
/// retried or resumed run fetches frames again.
pub trait FrameSource: Sync {
    /// Number of clients (sessions) this source drives.
    fn clients(&self) -> u32;

    /// Number of frames in `client`'s stream.
    fn frames(&self, client: u32) -> u32;

    /// The encoded bytes of frame `index` of `client`'s stream
    /// (`index < self.frames(client)`). May be arbitrarily corrupt —
    /// sessions decode through the resync path.
    fn frame(&self, client: u32, index: u32) -> Vec<u8>;

    /// The detector configuration `client`'s session runs.
    fn detector_config(&self, client: u32) -> DetectorConfig;

    /// A resource certificate for `client`'s session, if the source
    /// can certify it — the input to admission control.
    fn certificate(&self, _client: u32) -> Option<&ResourceCertificate> {
        None
    }

    /// A stable fingerprint of everything that determines the
    /// streams, folded into the checkpoint fingerprint.
    fn fingerprint(&self) -> u64;
}

/// A subscriber for phase-boundary notifications.
///
/// Sessions push [`DetectorEvent::PhaseStart`] /
/// [`DetectorEvent::PhaseEnd`] exactly once per boundary (replays
/// dedupe against a high-water mark).
pub trait Subscriber: Sync {
    /// Called for every phase boundary of every session.
    fn on_event(&self, client: u32, event: DetectorEvent);
}

/// Discards all notifications.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSubscriber;

impl Subscriber for NullSubscriber {
    fn on_event(&self, _: u32, _: DetectorEvent) {}
}

/// The service configuration: ingest, supervision, hazards,
/// admission, and sharding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Queue bound and backpressure mode.
    pub ingest: IngestPolicy,
    /// Restart, backoff, deadline, and quarantine policy.
    pub supervision: SupervisionPolicy,
    /// The injected fault model (rates zero for production ingest).
    pub hazards: SeededHazards,
    /// Per-session memory budget for certificate admission control;
    /// `None` admits everyone.
    pub admission_budget_bytes: Option<u64>,
    /// Virtual shards (the unit of parallelism, checkpointing, and
    /// resume). Independent of thread count.
    pub vshards: u32,
    /// Re-run every completed session offline and compare phase
    /// streams (the bit-identity acceptance check).
    pub verify: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            ingest: IngestPolicy::default(),
            supervision: SupervisionPolicy::default(),
            hazards: SeededHazards::none(0xD15E),
            admission_budget_bytes: None,
            vshards: 64,
            verify: true,
        }
    }
}

impl ServeConfig {
    /// Fingerprints this configuration against a source, so a
    /// checkpoint is only ever resumed by the run that wrote it.
    #[must_use]
    pub fn fingerprint(&self, source: &dyn FrameSource) -> u64 {
        keyed_hash(&[
            u64::from(self.vshards),
            self.ingest.queue_capacity as u64,
            self.ingest.mode.name().len() as u64,
            u64::from(self.ingest.mode.name().as_bytes()[0]),
            u64::from(self.ingest.arrivals_per_tick),
            u64::from(self.supervision.retry_budget),
            self.supervision.backoff_base_ticks,
            self.supervision.backoff_cap_ticks,
            self.supervision.deadline_ticks,
            u64::from(self.supervision.max_poison_frames),
            self.hazards.seed,
            self.hazards.kill_rate.to_bits(),
            self.hazards.wedge_rate.to_bits(),
            self.hazards.poison_rate.to_bits(),
            self.admission_budget_bytes.map_or(u64::MAX, |b| b),
            u64::from(self.admission_budget_bytes.is_some()),
            u64::from(self.verify),
            source.fingerprint(),
        ])
    }
}

/// Engine options orthogonal to the simulated behavior: parallelism
/// and persistence. None of them can change a run's outcome.
#[derive(Debug, Clone, Default)]
pub struct ServiceOptions {
    /// Worker threads; `0` uses the host's available parallelism.
    pub threads: usize,
    /// Checkpoint file for crash-safe progress.
    pub checkpoint: Option<PathBuf>,
    /// Resume from the checkpoint if it exists (otherwise start it).
    pub resume: bool,
}

/// Errors from the service engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The configuration is unusable.
    Config(String),
    /// The checkpoint file could not be used.
    Checkpoint(CheckpointError),
    /// A vshard exceeded its virtual-time budget — the simulation
    /// stopped making progress (a bug guard, not an expected outcome).
    Stalled {
        /// The stalled shard.
        vshard: u32,
        /// Ticks it had consumed.
        ticks: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "serve config: {msg}"),
            ServeError::Checkpoint(e) => write!(f, "serve checkpoint: {e}"),
            ServeError::Stalled { vshard, ticks } => {
                write!(f, "vshard {vshard} stalled after {ticks} ticks")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

/// Metric ids for the service dashboard, registered once against an
/// `opd-obs` registry. Counters are tagged by vshard.
#[derive(Debug, Clone, Copy)]
pub struct ServiceMetrics {
    frames: CounterId,
    elements: CounterId,
    restarts: CounterId,
    timeouts: CounterId,
    shed: CounterId,
    corrupt_records: CounterId,
    completed: CounterId,
    quarantined: CounterId,
    step_ns: HistogramId,
    session_phases: HistogramId,
    frame_latency: HistogramId,
}

impl ServiceMetrics {
    /// Registers the dashboard's counters and histograms.
    pub fn register(registry: &mut MetricsRegistry) -> ServiceMetrics {
        ServiceMetrics {
            frames: registry.counter("serve.frames_processed"),
            elements: registry.counter("serve.elements_accepted"),
            restarts: registry.counter("serve.restarts"),
            timeouts: registry.counter("serve.timeouts"),
            shed: registry.counter("serve.shed_frames"),
            corrupt_records: registry.counter("serve.corrupt_records_lost"),
            completed: registry.counter("serve.sessions_completed"),
            quarantined: registry.counter("serve.sessions_quarantined"),
            step_ns: registry.histogram("serve.step_ns"),
            session_phases: registry.histogram("serve.session_phases"),
            frame_latency: registry.histogram("serve.frame_latency_ticks"),
        }
    }

    fn observe_session(&self, registry: &MetricsRegistry, vshard: u32, report: &SessionReport) {
        let tag = u64::from(vshard);
        let s = &report.stats;
        registry.add_tagged(self.frames, tag, s.frames_processed);
        registry.add_tagged(self.elements, tag, s.elements_accepted);
        registry.add_tagged(self.restarts, tag, s.restarts);
        registry.add_tagged(self.timeouts, tag, s.timeouts);
        registry.add_tagged(self.shed, tag, s.shed.lost_frames());
        registry.add_tagged(self.corrupt_records, tag, s.corrupt_records_lost);
        match report.status {
            SessionStatus::Completed => registry.add_tagged(self.completed, tag, 1),
            SessionStatus::Quarantined => registry.add_tagged(self.quarantined, tag, 1),
            SessionStatus::Rejected => {}
        }
        registry.record_tagged(self.session_phases, tag, s.phase_count);
    }
}

/// The full outcome of a service run: one terminal report per
/// session, in client order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceReport {
    /// Virtual shards the run was partitioned into.
    pub vshards: u32,
    /// The run's fingerprint (configuration × source).
    pub fingerprint: u64,
    /// Vshards restored from a checkpoint instead of recomputed.
    pub restored_vshards: u32,
    /// Terminal session reports, ascending by client.
    pub sessions: Vec<SessionReport>,
}

impl ServiceReport {
    fn count(&self, status: SessionStatus) -> u64 {
        self.sessions.iter().filter(|r| r.status == status).count() as u64
    }

    /// Sessions that drained their stream.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.count(SessionStatus::Completed)
    }

    /// Sessions quarantined by the supervisor.
    #[must_use]
    pub fn quarantined(&self) -> u64 {
        self.count(SessionStatus::Quarantined)
    }

    /// Sessions refused by admission control.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.count(SessionStatus::Rejected)
    }

    /// All shed ledgers, merged.
    #[must_use]
    pub fn shed(&self) -> ShedLedger {
        let mut total = ShedLedger::new();
        for r in &self.sessions {
            total.merge(&r.stats.shed);
        }
        total
    }

    /// Supervisor restarts, summed.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.sessions.iter().map(|r| r.stats.restarts).sum()
    }

    /// Deadline kills, summed.
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.sessions.iter().map(|r| r.stats.timeouts).sum()
    }

    /// Injected crashes, summed.
    #[must_use]
    pub fn crashes(&self) -> u64 {
        self.sessions.iter().map(|r| r.stats.crashes).sum()
    }

    /// Frames processed, summed.
    #[must_use]
    pub fn frames_processed(&self) -> u64 {
        self.sessions.iter().map(|r| r.stats.frames_processed).sum()
    }

    /// Elements accepted, summed.
    #[must_use]
    pub fn elements_accepted(&self) -> u64 {
        self.sessions
            .iter()
            .map(|r| r.stats.elements_accepted)
            .sum()
    }

    /// Corrupt frames seen by the resync decoder, summed.
    #[must_use]
    pub fn corrupt_frames(&self) -> u64 {
        self.sessions.iter().map(|r| r.stats.corrupt_frames).sum()
    }

    /// Records lost to corruption, summed.
    #[must_use]
    pub fn corrupt_records_lost(&self) -> u64 {
        self.sessions
            .iter()
            .map(|r| r.stats.corrupt_records_lost)
            .sum()
    }

    /// Phase boundaries detected, summed.
    #[must_use]
    pub fn phases(&self) -> u64 {
        self.sessions.iter().map(|r| r.stats.phase_count).sum()
    }

    /// Completed sessions whose phase stream did **not** match the
    /// offline detector — the acceptance gate requires zero.
    #[must_use]
    pub fn verify_failures(&self) -> u64 {
        self.sessions
            .iter()
            .filter(|r| r.status == SessionStatus::Completed && !r.stats.verified)
            .count() as u64
    }

    /// `true` if every terminal session accounts for every frame of
    /// its stream.
    #[must_use]
    pub fn conservation_holds(&self) -> bool {
        self.sessions.iter().all(|r| r.stats.conservation_holds())
    }

    /// A digest over every session's terminal phase stream (client,
    /// status, digest, count) — two runs with equal digests produced
    /// bit-identical phase streams for every session.
    #[must_use]
    pub fn aggregate_digest(&self) -> u64 {
        let mut words = Vec::with_capacity(self.sessions.len() * 4 + 1);
        words.push(self.sessions.len() as u64);
        for r in &self.sessions {
            words.push(u64::from(r.client));
            words.push(u64::from(r.status.code()));
            words.push(r.stats.phase_digest);
            words.push(r.stats.phase_count);
        }
        keyed_hash(&words)
    }
}

/// Runs the service to completion with no subscriber and no metrics.
///
/// # Errors
///
/// Returns [`ServeError`] on an unusable configuration, a checkpoint
/// that cannot be read or written, or a stalled shard.
pub fn run_service(
    config: &ServeConfig,
    source: &dyn FrameSource,
    options: &ServiceOptions,
) -> Result<ServiceReport, ServeError> {
    run_service_with(config, source, options, &NullSubscriber, None)
}

/// Runs the service with phase-boundary notifications pushed to
/// `subscriber` and dashboard metrics recorded through `metrics`.
///
/// # Errors
///
/// Returns [`ServeError`] on an unusable configuration, a checkpoint
/// that cannot be read or written, or a stalled shard.
pub fn run_service_with(
    config: &ServeConfig,
    source: &dyn FrameSource,
    options: &ServiceOptions,
    subscriber: &dyn Subscriber,
    metrics: Option<(&MetricsRegistry, &ServiceMetrics)>,
) -> Result<ServiceReport, ServeError> {
    if config.vshards == 0 {
        return Err(ServeError::Config("vshards must be at least 1".into()));
    }
    if config.ingest.queue_capacity == 0 {
        return Err(ServeError::Config(
            "queue capacity must be at least 1".into(),
        ));
    }
    if config.ingest.arrivals_per_tick == 0 {
        return Err(ServeError::Config(
            "arrivals per tick must be at least 1".into(),
        ));
    }
    if config.supervision.retry_budget == 0 {
        return Err(ServeError::Config("retry budget must be at least 1".into()));
    }

    let fingerprint = config.fingerprint(source);
    let mut restored: BTreeMap<u32, Vec<SessionReport>> = BTreeMap::new();
    let writer = match &options.checkpoint {
        Some(path) if options.resume && path.exists() => {
            let (w, map) = ServeCheckpointWriter::resume(path, fingerprint)?;
            restored = map;
            Some(Mutex::new(w))
        }
        Some(path) => Some(Mutex::new(ServeCheckpointWriter::create(
            path,
            fingerprint,
        )?)),
        None => None,
    };
    let restored_vshards = restored.len() as u32;

    let pending: Vec<u32> = (0..config.vshards)
        .filter(|v| !restored.contains_key(v))
        .collect();
    let threads = if options.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        options.threads
    }
    .min(pending.len().max(1));

    let done: Mutex<BTreeMap<u32, Vec<SessionReport>>> = Mutex::new(restored);
    let next = AtomicUsize::new(0);
    let failure: Mutex<Option<ServeError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if failure.lock().expect("no panics in workers").is_some() {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&vshard) = pending.get(i) else { break };
                match run_vshard(vshard, config, source, subscriber, metrics) {
                    Ok(reports) => {
                        if let Some(w) = &writer {
                            let mut w = w.lock().expect("no panics in workers");
                            if let Err(e) = w.append(vshard, &reports) {
                                *failure.lock().expect("no panics in workers") =
                                    Some(ServeError::Checkpoint(CheckpointError::Io(e)));
                                break;
                            }
                        }
                        done.lock()
                            .expect("no panics in workers")
                            .insert(vshard, reports);
                    }
                    Err(e) => {
                        *failure.lock().expect("no panics in workers") = Some(e);
                        break;
                    }
                }
            });
        }
    });

    if let Some(e) = failure.into_inner().expect("no panics in workers") {
        return Err(e);
    }
    let map = done.into_inner().expect("no panics in workers");
    let mut sessions: Vec<SessionReport> = map.into_values().flatten().collect();
    sessions.sort_by_key(|r| r.client);
    Ok(ServiceReport {
        vshards: config.vshards,
        fingerprint,
        restored_vshards,
        sessions,
    })
}

/// A generous upper bound on the virtual ticks a vshard can need:
/// exceeded only by a livelocked state machine, never by a legal run.
fn tick_budget_for(max_frames: u64, config: &ServeConfig) -> u64 {
    let worst_frame = u64::from(config.supervision.retry_budget)
        * (config.supervision.deadline_ticks + config.supervision.backoff_cap_ticks + 4);
    1_000 + 4 * (max_frames + 1) * (worst_frame + 2)
}

fn tick_budget(sessions: &[Session], config: &ServeConfig) -> u64 {
    let max_frames = sessions
        .iter()
        .map(|s| s.stats().frames_total)
        .max()
        .unwrap_or(0);
    tick_budget_for(max_frames, config)
}

fn run_vshard(
    vshard: u32,
    config: &ServeConfig,
    source: &dyn FrameSource,
    subscriber: &dyn Subscriber,
    metrics: Option<(&MetricsRegistry, &ServiceMetrics)>,
) -> Result<Vec<SessionReport>, ServeError> {
    let mut reports = Vec::new();
    let mut sessions = Vec::new();
    let mut client = vshard;
    while client < source.clients() {
        let frames = source.frames(client);
        let admitted = match (config.admission_budget_bytes, source.certificate(client)) {
            (Some(budget), Some(cert)) => cert.admits(budget),
            _ => true,
        };
        if admitted {
            sessions.push(Session::new(
                client,
                source.detector_config(client),
                frames,
                config.ingest,
                config.supervision,
                config.verify,
            ));
        } else {
            reports.push(SessionReport::rejected(client, frames));
        }
        match client.checked_add(config.vshards) {
            Some(next_client) => client = next_client,
            None => break,
        }
    }

    let budget = tick_budget(&sessions, config);
    let mut live = sessions.len();
    let mut tick = 0u64;
    while live > 0 {
        tick += 1;
        if tick > budget {
            return Err(ServeError::Stalled {
                vshard,
                ticks: tick,
            });
        }
        for s in &mut sessions {
            if !s.is_live() {
                continue;
            }
            s.deliver(source, tick);
            let before = s.stats().frames_processed;
            let t0 = metrics.map(|_| Instant::now());
            s.step(tick, &config.hazards, subscriber);
            if let (Some((registry, m)), Some(t0)) = (metrics, t0) {
                if s.stats().frames_processed > before {
                    registry.record_tagged(
                        m.step_ns,
                        u64::from(vshard),
                        u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    );
                }
                if let Some(latency) = s.take_last_latency() {
                    registry.record_tagged(m.frame_latency, u64::from(vshard), latency);
                }
            }
            if !s.is_live() {
                live -= 1;
            }
        }
    }

    for s in sessions {
        let report = s.into_report();
        if let Some((registry, m)) = metrics {
            m.observe_session(registry, vshard, &report);
        }
        reports.push(report);
    }
    reports.sort_by_key(|r| r.client);
    Ok(reports)
}

/// Everything a traced run observed beyond the report: the full span
/// log (ascending by client, per-session emission order within a
/// client — deterministic and thread-count invariant) and every
/// post-mortem dumped along the way.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceTrace {
    /// All recorded spans, sorted by client then emission order.
    pub spans: Vec<Span>,
    /// All post-mortems, sorted by `(client, tick)`.
    pub postmortems: Vec<Postmortem>,
}

impl ServiceTrace {
    /// The canonical span-log document (`# opd-spans-v1`) — the
    /// byte-identical-across-threads artifact.
    #[must_use]
    pub fn span_log(&self) -> String {
        render_span_log(&self.spans)
    }

    /// Span counts per kind, in [`opd_obs::SpanKind::ALL`] order.
    #[must_use]
    pub fn counts_by_kind(&self) -> Vec<(opd_obs::SpanKind, u64)> {
        opd_obs::SpanKind::ALL
            .into_iter()
            .map(|k| (k, self.spans.iter().filter(|s| s.kind == k).count() as u64))
            .collect()
    }
}

/// [`run_service_with`], with causal-span tracing: every session runs
/// the `*_traced` twin paths under a [`SessionTracer`] whose recorder
/// type `R` decides the cost — [`opd_obs::SpanLog`] collects the full
/// trace, [`opd_obs::NullSpanRecorder`] monomorphizes the traced
/// paths back to the plain machine code (the overhead-gate arm).
///
/// Checkpointing is not supported under tracing (a resumed run would
/// have no spans for restored vshards).
///
/// # Errors
///
/// Returns [`ServeError`] on an unusable configuration, a checkpoint
/// option, or a stalled shard.
pub fn run_service_traced<R: SpanRecorder + Default>(
    config: &ServeConfig,
    source: &dyn FrameSource,
    options: &ServiceOptions,
    subscriber: &dyn Subscriber,
    metrics: Option<(&MetricsRegistry, &ServiceMetrics)>,
    trace: &TraceConfig,
) -> Result<(ServiceReport, ServiceTrace), ServeError> {
    if config.vshards == 0 {
        return Err(ServeError::Config("vshards must be at least 1".into()));
    }
    if config.ingest.queue_capacity == 0 {
        return Err(ServeError::Config(
            "queue capacity must be at least 1".into(),
        ));
    }
    if config.ingest.arrivals_per_tick == 0 {
        return Err(ServeError::Config(
            "arrivals per tick must be at least 1".into(),
        ));
    }
    if config.supervision.retry_budget == 0 {
        return Err(ServeError::Config("retry budget must be at least 1".into()));
    }
    if options.checkpoint.is_some() {
        return Err(ServeError::Config(
            "tracing does not support checkpoints".into(),
        ));
    }

    let fingerprint = config.fingerprint(source);
    let pending: Vec<u32> = (0..config.vshards).collect();
    let threads = if options.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        options.threads
    }
    .min(pending.len().max(1));

    let done: Mutex<BTreeMap<u32, VshardTrace>> = Mutex::new(BTreeMap::new());
    let next = AtomicUsize::new(0);
    let failure: Mutex<Option<ServeError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if failure.lock().expect("no panics in workers").is_some() {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&vshard) = pending.get(i) else { break };
                match run_vshard_traced::<R>(vshard, config, source, subscriber, metrics, trace) {
                    Ok(result) => {
                        done.lock()
                            .expect("no panics in workers")
                            .insert(vshard, result);
                    }
                    Err(e) => {
                        *failure.lock().expect("no panics in workers") = Some(e);
                        break;
                    }
                }
            });
        }
    });

    if let Some(e) = failure.into_inner().expect("no panics in workers") {
        return Err(e);
    }
    let map = done.into_inner().expect("no panics in workers");
    let mut sessions = Vec::new();
    let mut client_spans: Vec<(u32, Vec<Span>)> = Vec::new();
    let mut postmortems = Vec::new();
    for (_, (reports, spans, pms)) in map {
        sessions.extend(reports);
        client_spans.extend(spans);
        postmortems.extend(pms);
    }
    sessions.sort_by_key(|r| r.client);
    client_spans.sort_by_key(|&(client, _)| client);
    postmortems.sort_by_key(|p| (p.client, p.tick));
    let spans = client_spans.into_iter().flat_map(|(_, s)| s).collect();
    Ok((
        ServiceReport {
            vshards: config.vshards,
            fingerprint,
            restored_vshards: 0,
            sessions,
        },
        ServiceTrace { spans, postmortems },
    ))
}

/// One traced vshard's output: session reports, per-client span
/// logs, and post-mortems.
type VshardTrace = (Vec<SessionReport>, Vec<(u32, Vec<Span>)>, Vec<Postmortem>);

/// [`run_vshard`], traced: a line-for-line mirror driving the
/// `*_traced` session paths with one [`SessionTracer`] per session.
fn run_vshard_traced<R: SpanRecorder + Default>(
    vshard: u32,
    config: &ServeConfig,
    source: &dyn FrameSource,
    subscriber: &dyn Subscriber,
    metrics: Option<(&MetricsRegistry, &ServiceMetrics)>,
    trace: &TraceConfig,
) -> Result<VshardTrace, ServeError> {
    let mut reports = Vec::new();
    // Sessions and their tracers live in parallel vectors: with
    // tracing compiled out the tracer vector stays empty and a single
    // inert tracer serves every session, so the disabled path's
    // allocations match the plain engine's element-for-element
    // (pinned by tests/span_alloc.rs).
    let mut sessions: Vec<Session> = Vec::new();
    let mut tracers: Vec<SessionTracer<R>> = Vec::new();
    let mut inert_tracer = SessionTracer::new(0, vshard, trace, R::default());
    let mut client = vshard;
    while client < source.clients() {
        let frames = source.frames(client);
        let admitted = match (config.admission_budget_bytes, source.certificate(client)) {
            (Some(budget), Some(cert)) => cert.admits(budget),
            _ => true,
        };
        if admitted {
            if R::ACTIVE {
                tracers.push(SessionTracer::new(client, vshard, trace, R::default()));
            }
            sessions.push(Session::new(
                client,
                source.detector_config(client),
                frames,
                config.ingest,
                config.supervision,
                config.verify,
            ));
        } else {
            reports.push(SessionReport::rejected(client, frames));
        }
        match client.checked_add(config.vshards) {
            Some(next_client) => client = next_client,
            None => break,
        }
    }

    let budget = tick_budget(&sessions, config);
    let mut live = sessions.len();
    let mut tick = 0u64;
    while live > 0 {
        tick += 1;
        if tick > budget {
            return Err(ServeError::Stalled {
                vshard,
                ticks: tick,
            });
        }
        for (i, s) in sessions.iter_mut().enumerate() {
            if !s.is_live() {
                continue;
            }
            let tracer = if R::ACTIVE {
                &mut tracers[i]
            } else {
                &mut inert_tracer
            };
            s.deliver(source, tick);
            let before = s.stats().frames_processed;
            let t0 = metrics.map(|_| Instant::now());
            s.step_traced(tick, &config.hazards, subscriber, tracer);
            if let (Some((registry, m)), Some(t0)) = (metrics, t0) {
                if s.stats().frames_processed > before {
                    registry.record_tagged(
                        m.step_ns,
                        u64::from(vshard),
                        u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    );
                }
                if let Some(latency) = s.take_last_latency() {
                    registry.record_tagged(m.frame_latency, u64::from(vshard), latency);
                }
            }
            if !s.is_live() {
                live -= 1;
            }
        }
    }

    let mut spans = Vec::new();
    let mut postmortems = Vec::new();
    for (i, s) in sessions.into_iter().enumerate() {
        let report = s.into_report();
        if let Some((registry, m)) = metrics {
            m.observe_session(registry, vshard, &report);
        }
        // With tracing compiled out nothing was recorded; skipping the
        // pushes keeps the disabled path free of span allocations
        // (pinned by tests/span_alloc.rs).
        if R::ACTIVE {
            let tracer = &mut tracers[i];
            spans.push((report.client, tracer.recorder.drain()));
            postmortems.append(&mut tracer.postmortems);
        }
        reports.push(report);
    }
    reports.sort_by_key(|r| r.client);
    Ok((reports, spans, postmortems))
}

/// An in-memory [`FrameSource`] — the unit-test and property-test
/// harness, and the shape external ingest adapters materialize into.
#[derive(Debug, Clone, Default)]
pub struct MemorySource {
    streams: Vec<(DetectorConfig, Vec<Vec<u8>>)>,
    fingerprint: u64,
}

impl MemorySource {
    /// An empty source; add clients with
    /// [`push_client`](MemorySource::push_client).
    #[must_use]
    pub fn new() -> MemorySource {
        MemorySource {
            streams: Vec::new(),
            fingerprint: 0,
        }
    }

    /// Appends one client's stream and returns its client id.
    pub fn push_client(&mut self, config: DetectorConfig, frames: Vec<Vec<u8>>) -> u32 {
        let mut words = vec![self.fingerprint, frames.len() as u64];
        for f in &frames {
            words.push(keyed_hash(&[f.len() as u64]));
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for &b in f {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            words.push(h);
        }
        self.fingerprint = keyed_hash(&words);
        self.streams.push((config, frames));
        (self.streams.len() - 1) as u32
    }

    /// The detector configuration of one client (panics on an unknown
    /// client — this is a test harness).
    #[must_use]
    pub fn config_of(&self, client: u32) -> DetectorConfig {
        self.streams[client as usize].0
    }

    /// A deterministic phasey workload: every client gets `frames`
    /// frames of `elements_per_frame` elements whose branch alphabet
    /// shifts every few frames, so the detector sees real phase
    /// boundaries.
    #[must_use]
    pub fn synthetic(clients: u32, frames: u32, elements_per_frame: u32) -> MemorySource {
        let config = DetectorConfig::builder()
            .current_window(24)
            .trailing_window(24)
            .skip_factor(6)
            .build()
            .expect("static synthetic config is valid");
        let mut source = MemorySource::new();
        for c in 0..clients {
            let mut stream = Vec::with_capacity(frames as usize);
            for f in 0..frames {
                let mut t = ExecutionTrace::new();
                let regime = (u64::from(c) * 17 + u64::from(f) / 3) % 5;
                for i in 0..elements_per_frame {
                    let site = (regime * 11 + u64::from(i % 4)) as u32;
                    t.record_branch(ProfileElement::new(MethodId::new(1), site, i % 2 == 0));
                }
                stream.push(encode_trace(&t).to_vec());
            }
            source.push_client(config, stream);
        }
        source
    }
}

impl FrameSource for MemorySource {
    fn clients(&self) -> u32 {
        self.streams.len() as u32
    }

    fn frames(&self, client: u32) -> u32 {
        self.streams
            .get(client as usize)
            .map_or(0, |(_, f)| f.len() as u32)
    }

    fn frame(&self, client: u32, index: u32) -> Vec<u8> {
        self.streams
            .get(client as usize)
            .and_then(|(_, f)| f.get(index as usize))
            .cloned()
            .unwrap_or_default()
    }

    fn detector_config(&self, client: u32) -> DetectorConfig {
        self.config_of(client)
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn clean_service_completes_everyone_identically_across_threads() {
        let source = MemorySource::synthetic(23, 7, 36);
        let config = ServeConfig {
            vshards: 5,
            ..ServeConfig::default()
        };
        let one = run_service(
            &config,
            &source,
            &ServiceOptions {
                threads: 1,
                ..ServiceOptions::default()
            },
        )
        .expect("clean run");
        let many = run_service(
            &config,
            &source,
            &ServiceOptions {
                threads: 8,
                ..ServiceOptions::default()
            },
        )
        .expect("clean run");
        assert_eq!(one, many, "outcome must not depend on thread count");
        assert_eq!(one.completed(), 23);
        assert_eq!(one.verify_failures(), 0);
        assert!(one.conservation_holds());
        assert!(one.phases() > 0);
        assert_ne!(one.aggregate_digest(), 0);
    }

    #[test]
    fn faulted_service_survives_and_stays_bit_identical() {
        let source = MemorySource::synthetic(30, 10, 30);
        let config = ServeConfig {
            vshards: 7,
            hazards: SeededHazards {
                seed: 77,
                kill_rate: 0.08,
                wedge_rate: 0.02,
                poison_rate: 0.01,
            },
            ..ServeConfig::default()
        };
        let report = run_service(&config, &source, &ServiceOptions::default()).expect("soak");
        assert_eq!(report.sessions.len(), 30);
        assert!(report.restarts() > 0, "hazards must actually fire");
        assert_eq!(report.verify_failures(), 0, "every survivor bit-identical");
        assert!(report.conservation_holds());
        let again = run_service(&config, &source, &ServiceOptions::default()).expect("soak");
        assert_eq!(report, again, "seeded soak is reproducible");
    }

    struct CountingSubscriber {
        starts: AtomicU64,
        ends: AtomicU64,
    }

    impl Subscriber for CountingSubscriber {
        fn on_event(&self, _client: u32, event: DetectorEvent) {
            match event {
                DetectorEvent::PhaseStart { .. } => {
                    self.starts.fetch_add(1, Ordering::Relaxed);
                }
                DetectorEvent::PhaseEnd { .. } => {
                    self.ends.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn subscribers_see_each_phase_boundary_exactly_once() {
        let source = MemorySource::synthetic(6, 9, 40);
        let config = ServeConfig {
            vshards: 3,
            hazards: SeededHazards {
                seed: 5,
                kill_rate: 0.1,
                wedge_rate: 0.0,
                poison_rate: 0.0,
            },
            ..ServeConfig::default()
        };
        let sub = CountingSubscriber {
            starts: AtomicU64::new(0),
            ends: AtomicU64::new(0),
        };
        let report = run_service_with(&config, &source, &ServiceOptions::default(), &sub, None)
            .expect("run");
        assert!(report.restarts() > 0, "restarts must occur to test dedup");
        let starts = sub.starts.load(Ordering::Relaxed);
        let ends = sub.ends.load(Ordering::Relaxed);
        assert_eq!(starts, report.phases(), "one PhaseStart per detected phase");
        assert_eq!(ends, report.phases(), "every phase closes at completion");
    }

    #[test]
    fn metrics_dashboard_matches_the_report() {
        let source = MemorySource::synthetic(8, 6, 30);
        let mut registry = MetricsRegistry::new(4);
        let metrics = ServiceMetrics::register(&mut registry);
        let config = ServeConfig {
            vshards: 4,
            ..ServeConfig::default()
        };
        let report = run_service_with(
            &config,
            &source,
            &ServiceOptions::default(),
            &NullSubscriber,
            Some((&registry, &metrics)),
        )
        .expect("run");
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("serve.frames_processed"),
            Some(report.frames_processed())
        );
        assert_eq!(
            snap.counter("serve.sessions_completed"),
            Some(report.completed())
        );
        assert_eq!(
            snap.counter("serve.elements_accepted"),
            Some(report.elements_accepted())
        );
        let h = snap
            .histogram("serve.step_ns")
            .expect("step latency histogram registered");
        assert_eq!(h.count(), report.frames_processed());
    }

    #[test]
    fn traced_runs_match_plain_runs_bit_for_bit() {
        use opd_obs::{NullSpanRecorder, SpanLog};
        // The traced-twins equivalence gate: the same faulted soak
        // through the plain path, the disabled-tracer path, and the
        // recording path must produce identical reports.
        let source = MemorySource::synthetic(24, 8, 32);
        let config = ServeConfig {
            vshards: 6,
            hazards: SeededHazards {
                seed: 99,
                kill_rate: 0.06,
                wedge_rate: 0.02,
                poison_rate: 0.01,
            },
            ..ServeConfig::default()
        };
        let plain = run_service(&config, &source, &ServiceOptions::default()).expect("plain");
        let (null_traced, null_trace) = run_service_traced::<NullSpanRecorder>(
            &config,
            &source,
            &ServiceOptions::default(),
            &NullSubscriber,
            None,
            &TraceConfig::default(),
        )
        .expect("null-traced");
        let (recorded, trace) = run_service_traced::<SpanLog>(
            &config,
            &source,
            &ServiceOptions::default(),
            &NullSubscriber,
            None,
            &TraceConfig::default(),
        )
        .expect("recorded");
        assert_eq!(
            plain, null_traced,
            "disabled tracer must not change outcomes"
        );
        assert_eq!(plain, recorded, "recording must not change outcomes");
        assert!(null_trace.spans.is_empty(), "null recorder keeps nothing");
        assert!(null_trace.postmortems.is_empty());
        assert!(!trace.spans.is_empty());
        assert!(plain.restarts() > 0, "hazards must fire for a real test");
        assert!(
            !trace.postmortems.is_empty(),
            "hazard kills must dump post-mortems"
        );
    }

    #[test]
    fn span_logs_are_thread_invariant_and_causally_closed() {
        use opd_obs::{SpanKind, SpanLog};
        let source = MemorySource::synthetic(18, 7, 30);
        let config = ServeConfig {
            vshards: 5,
            hazards: SeededHazards {
                seed: 41,
                kill_rate: 0.08,
                wedge_rate: 0.03,
                poison_rate: 0.01,
            },
            ..ServeConfig::default()
        };
        let run = |threads: usize| {
            run_service_traced::<SpanLog>(
                &config,
                &source,
                &ServiceOptions {
                    threads,
                    ..ServiceOptions::default()
                },
                &NullSubscriber,
                None,
                &TraceConfig::default(),
            )
            .expect("traced run")
        };
        let (_, one) = run(1);
        let (_, many) = run(8);
        assert_eq!(
            one.span_log(),
            many.span_log(),
            "span logs must be byte-identical across thread counts"
        );
        assert_eq!(one.postmortems, many.postmortems);

        // Causal closure: every non-root parent id names a span of the
        // same session, and children never precede their parent's
        // start tick.
        use std::collections::{BTreeMap, BTreeSet};
        let mut ids: BTreeMap<u32, BTreeSet<u64>> = BTreeMap::new();
        for s in &one.spans {
            ids.entry(s.client).or_default().insert(s.id);
        }
        for s in &one.spans {
            assert!(s.end >= s.start, "{s}");
            if s.parent != 0 {
                assert!(ids[&s.client].contains(&s.parent), "dangling parent: {s}");
            }
        }
        // The causal chain exists: frames have decode and detect
        // children, and ingest roots are present.
        let count = |k: SpanKind| one.spans.iter().filter(|s| s.kind == k).count();
        assert!(count(SpanKind::FrameIngest) > 0);
        assert_eq!(count(SpanKind::FrameIngest), count(SpanKind::Decode));
        assert!(count(SpanKind::Backoff) > 0, "hazards must cause backoffs");
        assert_eq!(count(SpanKind::Backoff), count(SpanKind::Retry));
    }

    #[test]
    fn postmortems_capture_quarantine_with_recent_spans() {
        use crate::flight::PostmortemReason;
        use opd_obs::SpanLog;
        // Poison every frame of a small stream with no poison
        // allowance: the session must quarantine and dump a
        // self-contained post-mortem whose ring ends in the
        // quarantine span.
        let source = MemorySource::synthetic(2, 4, 24);
        let config = ServeConfig {
            vshards: 1,
            supervision: SupervisionPolicy {
                max_poison_frames: 0,
                ..SupervisionPolicy::default()
            },
            hazards: SeededHazards {
                seed: 7,
                kill_rate: 0.0,
                wedge_rate: 0.0,
                poison_rate: 1.0,
            },
            ..ServeConfig::default()
        };
        let (report, trace) = run_service_traced::<SpanLog>(
            &config,
            &source,
            &ServiceOptions::default(),
            &NullSubscriber,
            None,
            &TraceConfig::default(),
        )
        .expect("run");
        assert_eq!(report.quarantined(), 2);
        let quarantines: Vec<_> = trace
            .postmortems
            .iter()
            .filter(|p| p.reason == PostmortemReason::Quarantined)
            .collect();
        assert_eq!(quarantines.len(), 2);
        for pm in quarantines {
            assert!(!pm.recent.is_empty());
            assert_eq!(
                pm.recent.last().unwrap().kind,
                opd_obs::SpanKind::Quarantine
            );
            let parsed = Postmortem::parse(&pm.render()).expect("roundtrip");
            assert_eq!(&parsed, pm);
        }
    }

    #[test]
    fn traced_runs_refuse_checkpoints() {
        use opd_obs::SpanLog;
        let source = MemorySource::synthetic(1, 1, 10);
        let err = run_service_traced::<SpanLog>(
            &ServeConfig::default(),
            &source,
            &ServiceOptions {
                checkpoint: Some(std::path::PathBuf::from("/tmp/never.opdk")),
                ..ServiceOptions::default()
            },
            &NullSubscriber,
            None,
            &TraceConfig::default(),
        );
        assert!(matches!(err, Err(ServeError::Config(_))));
    }

    #[test]
    fn bad_configs_are_refused() {
        let source = MemorySource::synthetic(1, 1, 10);
        for config in [
            ServeConfig {
                vshards: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                ingest: IngestPolicy {
                    queue_capacity: 0,
                    ..IngestPolicy::default()
                },
                ..ServeConfig::default()
            },
            ServeConfig {
                supervision: SupervisionPolicy {
                    retry_budget: 0,
                    ..SupervisionPolicy::default()
                },
                ..ServeConfig::default()
            },
        ] {
            assert!(matches!(
                run_service(&config, &source, &ServiceOptions::default()),
                Err(ServeError::Config(_))
            ));
        }
    }
}
