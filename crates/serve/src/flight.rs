//! Per-session flight recorders: the span tracer threaded through the
//! traced session paths, and the post-mortem documents it dumps when
//! a session is quarantined, deadline-killed, or killed by a hazard.
//!
//! A [`SessionTracer`] owns three things: the session's monotonic
//! span-id sequence (so `(client, id)` is deterministic and globally
//! unique), a [`FlightRing`] of the most recent spans, and the
//! generic [`SpanRecorder`] the service run collects full logs
//! through. Everything is guarded by `R::ACTIVE` at the call sites in
//! `session.rs`, so a [`NullSpanRecorder`](opd_obs::NullSpanRecorder)
//! tracer compiles the traced paths back to the plain machine code.
//!
//! A [`Postmortem`] is self-contained: session identity, the reason
//! and virtual tick of death, the exact counters at that instant, and
//! the flight ring's recent spans — rendered as a versioned,
//! line-oriented text document (`opd-postmortem-v1`) that
//! `opd flight` parses back without any JSON machinery.

use std::fmt;

use opd_obs::{FlightRing, Span, SpanKind, SpanRecorder};

use crate::session::SessionStats;

/// First line of every post-mortem document.
pub const POSTMORTEM_HEADER: &str = "# opd-postmortem-v1";

/// Why a post-mortem was dumped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostmortemReason {
    /// The session was quarantined (terminal).
    Quarantined,
    /// A wedged frame was killed at the supervisor deadline.
    DeadlineKill,
    /// A crash or poison hazard killed the running attempt.
    HazardKill,
}

impl PostmortemReason {
    /// Every reason, in severity order.
    pub const ALL: [PostmortemReason; 3] = [
        PostmortemReason::Quarantined,
        PostmortemReason::DeadlineKill,
        PostmortemReason::HazardKill,
    ];

    /// Stable snake_case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PostmortemReason::Quarantined => "quarantined",
            PostmortemReason::DeadlineKill => "deadline_kill",
            PostmortemReason::HazardKill => "hazard_kill",
        }
    }

    /// Inverse of [`name`](PostmortemReason::name).
    #[must_use]
    pub fn from_name(name: &str) -> Option<PostmortemReason> {
        PostmortemReason::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for PostmortemReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A self-contained session post-mortem: who died, why, when (in
/// virtual ticks), the exact counters at death, and the flight ring's
/// recent spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Postmortem {
    /// The session's client id.
    pub client: u32,
    /// The virtual shard it ran in.
    pub vshard: u32,
    /// What killed it (or its attempt).
    pub reason: PostmortemReason,
    /// Virtual tick of the event.
    pub tick: u64,
    /// The attempt counter at the event.
    pub attempt: u32,
    /// Frames in the client's stream.
    pub frames_total: u64,
    /// Frames fully processed before the event.
    pub frames_processed: u64,
    /// Elements accepted into the session log.
    pub elements_accepted: u64,
    /// Injected crashes so far.
    pub crashes: u64,
    /// Deadline kills so far.
    pub timeouts: u64,
    /// Supervisor restarts so far.
    pub restarts: u64,
    /// Frames whose decode reported corruption.
    pub corrupt_frames: u64,
    /// Queue depth at the event.
    pub queue_depth: u64,
    /// Poison frames quarantined so far.
    pub poison_frames: u32,
    /// Spans ever recorded by this session (including ones the ring
    /// evicted).
    pub spans_recorded: u64,
    /// The flight ring's retained spans, oldest first.
    pub recent: Vec<Span>,
}

impl Postmortem {
    /// A deterministic, filesystem-safe stem for the dump file.
    #[must_use]
    pub fn file_stem(&self) -> String {
        format!(
            "pm-c{:06}-t{:08}-{}",
            self.client,
            self.tick,
            self.reason.name()
        )
    }

    /// Renders the versioned text document `opd flight` consumes.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(256 + self.recent.len() * 80);
        out.push_str(POSTMORTEM_HEADER);
        out.push('\n');
        out.push_str(&format!(
            "client={} vshard={} reason={} tick={} attempt={}\n",
            self.client, self.vshard, self.reason, self.tick, self.attempt
        ));
        out.push_str(&format!(
            "frames_total={} frames_processed={} elements_accepted={} crashes={} \
             timeouts={} restarts={} corrupt_frames={} queue_depth={} poison_frames={} \
             spans_recorded={}\n",
            self.frames_total,
            self.frames_processed,
            self.elements_accepted,
            self.crashes,
            self.timeouts,
            self.restarts,
            self.corrupt_frames,
            self.queue_depth,
            self.poison_frames,
            self.spans_recorded
        ));
        for s in &self.recent {
            out.push_str("span ");
            out.push_str(&s.to_line());
            out.push('\n');
        }
        out
    }

    /// Parses a [`render`](Postmortem::render) document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed line or missing field.
    pub fn parse(text: &str) -> Result<Postmortem, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(POSTMORTEM_HEADER) => {}
            _ => return Err(format!("post-mortem must start with `{POSTMORTEM_HEADER}`")),
        }
        let mut fields: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        let mut reason = None;
        let mut recent = Vec::new();
        for line in lines.filter(|l| !l.trim().is_empty()) {
            if let Some(span_line) = line.strip_prefix("span ") {
                recent.push(Span::parse_line(span_line)?);
                continue;
            }
            for field in line.split_ascii_whitespace() {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| format!("post-mortem field `{field}` is not key=value"))?;
                if key == "reason" {
                    reason = Some(
                        PostmortemReason::from_name(value)
                            .ok_or_else(|| format!("unknown post-mortem reason `{value}`"))?,
                    );
                } else {
                    let n: u64 = value.parse().map_err(|_| format!("bad {key} `{value}`"))?;
                    fields.insert(key.to_owned(), n);
                }
            }
        }
        let get = |k: &str| -> Result<u64, String> {
            fields
                .get(k)
                .copied()
                .ok_or_else(|| format!("post-mortem is missing `{k}`"))
        };
        let narrow = |k: &str| -> Result<u32, String> {
            u32::try_from(get(k)?).map_err(|_| format!("{k} out of range"))
        };
        Ok(Postmortem {
            client: narrow("client")?,
            vshard: narrow("vshard")?,
            reason: reason.ok_or_else(|| "post-mortem is missing `reason`".to_owned())?,
            tick: get("tick")?,
            attempt: narrow("attempt")?,
            frames_total: get("frames_total")?,
            frames_processed: get("frames_processed")?,
            elements_accepted: get("elements_accepted")?,
            crashes: get("crashes")?,
            timeouts: get("timeouts")?,
            restarts: get("restarts")?,
            corrupt_frames: get("corrupt_frames")?,
            queue_depth: get("queue_depth")?,
            poison_frames: narrow("poison_frames")?,
            spans_recorded: get("spans_recorded")?,
            recent,
        })
    }

    /// One-object JSON rendering for `opd flight --json`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self.recent.iter().map(Span::to_json).collect();
        format!(
            "{{\n \"schema\": \"opd-postmortem-v1\",\n \"client\": {},\n \"vshard\": {},\n \
             \"reason\": \"{}\",\n \"tick\": {},\n \"attempt\": {},\n \"frames_total\": {},\n \
             \"frames_processed\": {},\n \"elements_accepted\": {},\n \"crashes\": {},\n \
             \"timeouts\": {},\n \"restarts\": {},\n \"corrupt_frames\": {},\n \
             \"queue_depth\": {},\n \"poison_frames\": {},\n \"spans_recorded\": {},\n \
             \"recent\": [{}]\n}}",
            self.client,
            self.vshard,
            self.reason,
            self.tick,
            self.attempt,
            self.frames_total,
            self.frames_processed,
            self.elements_accepted,
            self.crashes,
            self.timeouts,
            self.restarts,
            self.corrupt_frames,
            self.queue_depth,
            self.poison_frames,
            self.spans_recorded,
            spans.join(", ")
        )
    }
}

/// Tracing knobs for a traced service run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Spans each session's flight ring retains for post-mortems.
    pub flight_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            flight_capacity: 32,
        }
    }
}

/// The per-session span tracer threaded through the `*_traced`
/// session paths. All methods are cheap bookkeeping; the traced call
/// sites guard every use with `R::ACTIVE`.
#[derive(Debug)]
pub struct SessionTracer<R> {
    client: u32,
    vshard: u32,
    next_id: u64,
    ring: FlightRing,
    /// Where completed spans go (drained by the service run).
    pub recorder: R,
    /// Post-mortems dumped by this session, in event order.
    pub postmortems: Vec<Postmortem>,
    /// Tick the current backoff began (set at `fail`, consumed at the
    /// restart that emits the `backoff` span).
    pub(crate) backoff_since: u64,
    /// Tick the current wedge began (consumed by the deadline kill).
    pub(crate) wedge_since: u64,
}

impl<R: SpanRecorder> SessionTracer<R> {
    /// A tracer for one session.
    #[must_use]
    pub fn new(client: u32, vshard: u32, trace: &TraceConfig, recorder: R) -> SessionTracer<R> {
        SessionTracer {
            client,
            vshard,
            next_id: 0,
            // With tracing compiled out the ring is never pushed to;
            // skipping its pre-allocation keeps the disabled path
            // allocation-identical to the plain engine (pinned by
            // tests/span_alloc.rs).
            ring: if R::ACTIVE {
                FlightRing::new(trace.flight_capacity)
            } else {
                FlightRing::inert(trace.flight_capacity)
            },
            recorder,
            postmortems: Vec::new(),
            backoff_since: 0,
            wedge_since: 0,
        }
    }

    /// Reserves the next span id without emitting — used when a
    /// parent's id must be known before its children are recorded.
    pub(crate) fn alloc_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Emits a span under a pre-allocated id (see
    /// [`alloc_id`](SessionTracer::alloc_id)).
    pub(crate) fn emit_with_id(
        &mut self,
        id: u64,
        parent: u64,
        kind: SpanKind,
        start: u64,
        end: u64,
        detail: u64,
    ) {
        let span = Span {
            id,
            parent,
            kind,
            client: self.client,
            vshard: self.vshard,
            start,
            end,
            detail,
        };
        self.ring.push(span);
        self.recorder.record(&span);
    }

    /// Emits a span under a freshly allocated id and returns the id.
    pub(crate) fn emit(
        &mut self,
        parent: u64,
        kind: SpanKind,
        start: u64,
        end: u64,
        detail: u64,
    ) -> u64 {
        let id = self.alloc_id();
        self.emit_with_id(id, parent, kind, start, end, detail);
        id
    }

    /// Dumps a post-mortem from the session's current counters and
    /// the flight ring's retained spans.
    pub(crate) fn dump(
        &mut self,
        reason: PostmortemReason,
        tick: u64,
        attempt: u32,
        stats: &SessionStats,
        queue_depth: u64,
        poison_frames: u32,
    ) {
        let recent: Vec<Span> = self.ring.spans().copied().collect();
        self.postmortems.push(Postmortem {
            client: self.client,
            vshard: self.vshard,
            reason,
            tick,
            attempt,
            frames_total: stats.frames_total,
            frames_processed: stats.frames_processed,
            elements_accepted: stats.elements_accepted,
            crashes: stats.crashes,
            timeouts: stats.timeouts,
            restarts: stats.restarts,
            corrupt_frames: stats.corrupt_frames,
            queue_depth,
            poison_frames,
            spans_recorded: self.ring.total_recorded(),
            recent,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_obs::SpanLog;

    fn sample() -> Postmortem {
        Postmortem {
            client: 42,
            vshard: 10,
            reason: PostmortemReason::Quarantined,
            tick: 999,
            attempt: 3,
            frames_total: 8,
            frames_processed: 2,
            elements_accepted: 96,
            crashes: 4,
            timeouts: 1,
            restarts: 5,
            corrupt_frames: 0,
            queue_depth: 2,
            poison_frames: 1,
            spans_recorded: 57,
            recent: vec![Span {
                id: 57,
                parent: 0,
                kind: SpanKind::Quarantine,
                client: 42,
                vshard: 10,
                start: 999,
                end: 999,
                detail: 1,
            }],
        }
    }

    #[test]
    fn postmortem_roundtrips_through_its_text_form() {
        let pm = sample();
        let doc = pm.render();
        assert!(doc.starts_with(POSTMORTEM_HEADER));
        assert_eq!(Postmortem::parse(&doc), Ok(pm));
    }

    #[test]
    fn postmortem_parse_rejects_malformed_documents() {
        assert!(Postmortem::parse("not a postmortem").is_err());
        assert!(Postmortem::parse(POSTMORTEM_HEADER).is_err());
        let doc = sample()
            .render()
            .replace("reason=quarantined", "reason=gremlins");
        assert!(Postmortem::parse(&doc).is_err());
    }

    #[test]
    fn reason_names_roundtrip() {
        for r in PostmortemReason::ALL {
            assert_eq!(PostmortemReason::from_name(r.name()), Some(r));
        }
        assert_eq!(PostmortemReason::from_name("boredom"), None);
    }

    #[test]
    fn file_stem_is_deterministic_and_safe() {
        assert_eq!(sample().file_stem(), "pm-c000042-t00000999-quarantined");
    }

    #[test]
    fn tracer_ids_are_monotone_and_spans_reach_both_sinks() {
        let mut t = SessionTracer::new(1, 0, &TraceConfig::default(), SpanLog::default());
        let parent = t.alloc_id();
        let child = t.emit(parent, SpanKind::Decode, 5, 5, 0);
        t.emit_with_id(parent, 0, SpanKind::FrameIngest, 4, 5, 0);
        assert_eq!((parent, child), (1, 2));
        let spans = t.recorder.drain();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].parent, parent);
        assert_eq!(spans[1].id, parent);
        assert_eq!(t.ring.total_recorded(), 2);
    }
}
