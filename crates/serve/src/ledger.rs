//! The exact record of what overload handling did to a session's
//! ingest stream.

use core::fmt;

/// Per-category counts of every frame the serving layer deferred,
/// dropped, or quarantined — the service-side sibling of
/// `opd_faults::FaultLedger`.
///
/// Each category is filled by exactly one mechanism; ledgers compose
/// with [`ShedLedger::merge`]. Seeded soaks assert conservation
/// against these counts: every generated frame is either processed,
/// or accounted for in exactly one category here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ShedLedger {
    /// Frames evicted from the queue *front* to admit a newer one
    /// ([`BackpressureMode::ShedOldest`](crate::BackpressureMode)).
    pub shed_oldest_frames: u64,
    /// Frames refused at the queue *tail*
    /// ([`BackpressureMode::Reject`](crate::BackpressureMode)).
    pub rejected_frames: u64,
    /// Ticks the producer spent stalled on a full queue
    /// ([`BackpressureMode::Block`](crate::BackpressureMode)) — a
    /// latency cost, never a loss.
    pub blocked_ticks: u64,
    /// Poison-pill frames quarantined after exhausting the retry
    /// budget.
    pub quarantined_frames: u64,
    /// Frames never delivered because their session was quarantined
    /// first (both queued and still-upstream frames).
    pub undelivered_frames: u64,
}

impl ShedLedger {
    /// A ledger with nothing shed.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if the session's whole stream went through
    /// untouched and unstalled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Frames *lost* to overload handling (blocked ticks defer, they
    /// do not lose).
    #[must_use]
    pub fn lost_frames(&self) -> u64 {
        self.shed_oldest_frames
            + self.rejected_frames
            + self.quarantined_frames
            + self.undelivered_frames
    }

    /// Total ledger entries, over all categories.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.lost_frames() + self.blocked_ticks
    }

    /// Folds another ledger into this one, category by category.
    pub fn merge(&mut self, other: &ShedLedger) {
        self.shed_oldest_frames += other.shed_oldest_frames;
        self.rejected_frames += other.rejected_frames;
        self.blocked_ticks += other.blocked_ticks;
        self.quarantined_frames += other.quarantined_frames;
        self.undelivered_frames += other.undelivered_frames;
    }
}

impl fmt::Display for ShedLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("nothing shed");
        }
        write!(
            f,
            "{} entr(ies): {} shed-oldest, {} rejected, {} blocked tick(s), \
             {} quarantined, {} undelivered",
            self.total(),
            self.shed_oldest_frames,
            self.rejected_frames,
            self.blocked_ticks,
            self.quarantined_frames,
            self.undelivered_frames,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_per_category() {
        let mut a = ShedLedger {
            shed_oldest_frames: 2,
            blocked_ticks: 7,
            ..ShedLedger::default()
        };
        let b = ShedLedger {
            rejected_frames: 3,
            quarantined_frames: 1,
            undelivered_frames: 4,
            ..ShedLedger::default()
        };
        a.merge(&b);
        assert_eq!(a.total(), 17);
        assert_eq!(a.lost_frames(), 10);
        assert!(!a.is_empty());
        assert!(a.to_string().contains("17 entr(ies)"));
        assert_eq!(ShedLedger::new().to_string(), "nothing shed");
    }
}
