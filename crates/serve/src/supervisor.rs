//! Supervision policy and hazard models.
//!
//! The supervisor's decisions (when to back off, when to give up on a
//! frame, when to quarantine a session) live in
//! [`SupervisionPolicy`]; *what goes wrong* is abstracted behind
//! [`HazardPolicy`] so the same session machine runs under no faults
//! (production ingest), seeded faults (soaks), or a test's scripted
//! failures.
//!
//! Seeded hazards are **stateless keyed draws**: each decision hashes
//! `(seed, kind, client, frame, attempt)` to a unit float, so a
//! resumed or replayed run sees exactly the same failures without any
//! RNG stream state to persist.

/// When and how hard the supervisor retries a failed session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionPolicy {
    /// Attempts per frame before it is declared a poison pill and
    /// quarantined (must be at least 1).
    pub retry_budget: u32,
    /// Backoff after the first failure of a frame, in ticks; doubles
    /// per subsequent attempt.
    pub backoff_base_ticks: u64,
    /// Upper bound on any single backoff, in ticks.
    pub backoff_cap_ticks: u64,
    /// Ticks a session may spend on one frame before the supervisor
    /// declares it wedged and kills it.
    pub deadline_ticks: u64,
    /// Quarantined frames a session survives before the session
    /// itself is quarantined.
    pub max_poison_frames: u32,
}

impl Default for SupervisionPolicy {
    fn default() -> Self {
        SupervisionPolicy {
            retry_budget: 3,
            backoff_base_ticks: 2,
            backoff_cap_ticks: 16,
            deadline_ticks: 8,
            max_poison_frames: 2,
        }
    }
}

impl SupervisionPolicy {
    /// Backoff before retry number `attempt` (1-based): exponential
    /// from the base, saturating at the cap.
    #[must_use]
    pub fn backoff_ticks(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        self.backoff_base_ticks
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap_ticks)
            .max(1)
    }
}

/// What goes wrong, and when: the fault model a soak injects into the
/// session machine.
///
/// All three draws are per `(client, frame)` — `crash` and `wedge`
/// additionally per attempt, so a retry can succeed where the first
/// attempt failed. `poison` is attempt-independent by design: a
/// poison frame kills *every* attempt, which is what exhausts the
/// retry budget and exercises quarantine.
pub trait HazardPolicy: Sync {
    /// The session dies mid-frame (state lost, frame unconsumed).
    fn crash(&self, client: u32, frame: u32, attempt: u32) -> bool;
    /// The session stops making progress on this frame until the
    /// supervisor's deadline kills it.
    fn wedge(&self, client: u32, frame: u32, attempt: u32) -> bool;
    /// This frame kills the session on every attempt.
    fn poison(&self, client: u32, frame: u32) -> bool;
}

/// The no-fault hazard model: nothing ever goes wrong.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHazards;

impl HazardPolicy for NoHazards {
    fn crash(&self, _: u32, _: u32, _: u32) -> bool {
        false
    }
    fn wedge(&self, _: u32, _: u32, _: u32) -> bool {
        false
    }
    fn poison(&self, _: u32, _: u32) -> bool {
        false
    }
}

/// Seeded, stateless hazard draws at configured rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeededHazards {
    /// Seed all draws are keyed under.
    pub seed: u64,
    /// Per-(frame, attempt) transient crash probability.
    pub kill_rate: f64,
    /// Per-(frame, attempt) wedge probability.
    pub wedge_rate: f64,
    /// Per-frame poison probability.
    pub poison_rate: f64,
}

impl SeededHazards {
    /// A hazard model that injects nothing (rates all zero).
    #[must_use]
    pub fn none(seed: u64) -> Self {
        SeededHazards {
            seed,
            kill_rate: 0.0,
            wedge_rate: 0.0,
            poison_rate: 0.0,
        }
    }

    fn draw(&self, kind: u64, client: u32, frame: u32, attempt: u32) -> f64 {
        let key = keyed_hash(&[
            self.seed,
            kind,
            u64::from(client),
            u64::from(frame),
            u64::from(attempt),
        ]);
        // 53 mantissa bits → a uniform unit double.
        (key >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl HazardPolicy for SeededHazards {
    fn crash(&self, client: u32, frame: u32, attempt: u32) -> bool {
        self.kill_rate > 0.0 && self.draw(1, client, frame, attempt) < self.kill_rate
    }

    fn wedge(&self, client: u32, frame: u32, attempt: u32) -> bool {
        self.wedge_rate > 0.0 && self.draw(2, client, frame, attempt) < self.wedge_rate
    }

    fn poison(&self, client: u32, frame: u32) -> bool {
        self.poison_rate > 0.0 && self.draw(3, client, frame, 0) < self.poison_rate
    }
}

/// A stateless keyed hash over a word sequence (FNV-1a over the LE
/// bytes, finished with a 64-bit avalanche) — the basis of every
/// seeded draw in this crate.
#[must_use]
pub fn keyed_hash(words: &[u64]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    // splitmix64 finalizer: FNV alone is too linear for rate draws.
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = SupervisionPolicy {
            backoff_base_ticks: 2,
            backoff_cap_ticks: 12,
            ..SupervisionPolicy::default()
        };
        assert_eq!(p.backoff_ticks(1), 2);
        assert_eq!(p.backoff_ticks(2), 4);
        assert_eq!(p.backoff_ticks(3), 8);
        assert_eq!(p.backoff_ticks(4), 12);
        assert_eq!(p.backoff_ticks(40), 12);
    }

    #[test]
    fn backoff_is_never_zero() {
        let p = SupervisionPolicy {
            backoff_base_ticks: 0,
            backoff_cap_ticks: 0,
            ..SupervisionPolicy::default()
        };
        assert_eq!(p.backoff_ticks(1), 1);
    }

    #[test]
    fn seeded_draws_are_deterministic_and_rate_scaled() {
        let h = SeededHazards {
            seed: 9,
            kill_rate: 0.3,
            wedge_rate: 0.0,
            poison_rate: 0.05,
        };
        let mut kills = 0;
        for f in 0..10_000 {
            assert_eq!(h.crash(1, f, 0), h.crash(1, f, 0));
            if h.crash(1, f, 0) {
                kills += 1;
            }
            assert!(!h.wedge(1, f, 0));
        }
        // ~3000 expected; generous tolerance, this is a seeded hash.
        assert!((2500..3500).contains(&kills), "{kills}");
    }

    #[test]
    fn poison_is_attempt_independent() {
        let h = SeededHazards {
            seed: 4,
            kill_rate: 0.0,
            wedge_rate: 0.0,
            poison_rate: 0.5,
        };
        let p = h.poison(7, 3);
        // Same frame, any attempt context: same verdict.
        assert_eq!(h.poison(7, 3), p);
    }

    #[test]
    fn keyed_hash_separates_nearby_keys() {
        assert_ne!(keyed_hash(&[1, 2, 3]), keyed_hash(&[1, 2, 4]));
        assert_ne!(keyed_hash(&[0]), keyed_hash(&[0, 0]));
    }
}
