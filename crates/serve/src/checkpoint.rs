//! Crash-safe service checkpoints: OPDK format, version 2.
//!
//! The serve engine's unit of work — one virtual shard — is
//! deterministic and order-independent, exactly like the sweep
//! runner's buckets, so the same append-only record discipline from
//! the sweep checkpoint (format version 1) carries over:
//!
//! ```text
//! magic  b"OPDK"
//! version u16 LE           (2 for service checkpoints)
//! fingerprint u64 LE       (hash of serve config + frame source)
//! then, per completed vshard (append-only):
//!   marker 0xA5
//!   payload_len u32 LE
//!   payload                (vshard id + session reports, see below)
//!   checksum u64 LE        (FNV-1a 64 of the payload)
//! ```
//!
//! Payloads hold exact integer counters only — no floats — so a
//! restored vshard is bit-identical to a recomputed one by
//! construction. Appends are one `write_all` of a fully built record
//! followed by a flush; a SIGKILL mid-write leaves a partial record
//! at the tail, which the resuming reader detects (marker, length
//! bound, checksum, full decode) and truncates away.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::ledger::ShedLedger;
use crate::session::{SessionReport, SessionStats, SessionStatus};

/// The four magic bytes opening every checkpoint file.
pub const SERVE_CHECKPOINT_MAGIC: &[u8; 4] = b"OPDK";
/// The OPDK format version service checkpoints use (the sweep
/// checkpoint owns version 1).
pub const SERVE_CHECKPOINT_VERSION: u16 = 2;
/// Header length: magic, version, fingerprint.
pub const SERVE_CHECKPOINT_HEADER_LEN: usize = 4 + 2 + 8;
const RECORD_MARKER: u8 = 0xA5;
/// Sanity cap on a record's declared payload length: anything larger
/// is a corrupted length field, not a real vshard.
const MAX_RECORD_LEN: u32 = 64 << 20;

/// Errors reading or writing a service checkpoint.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The file does not start with the `OPDK` magic.
    BadMagic,
    /// The file's format version is not a service checkpoint's.
    BadVersion(u16),
    /// The file was written by a run with a different configuration
    /// or frame source.
    FingerprintMismatch {
        /// Fingerprint of the current run.
        expected: u64,
        /// Fingerprint stored in the file.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
            CheckpointError::BadMagic => f.write_str("not a checkpoint file (missing OPDK magic)"),
            CheckpointError::BadVersion(v) => {
                write!(f, "not a service checkpoint (format version {v})")
            }
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different run (fingerprint {found:#x}, \
                 this run is {expected:#x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// FNV-1a 64-bit over a payload: torn-write detection, not
/// adversarial integrity.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A cursor over a payload that refuses to read past the end.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn encode_report(out: &mut Vec<u8>, r: &SessionReport) {
    put_u32(out, r.client);
    out.push(r.status.code());
    out.push(u8::from(r.stats.verified));
    let s = &r.stats;
    for v in [
        s.frames_total,
        s.frames_delivered,
        s.frames_processed,
        s.elements_accepted,
        s.steps,
        s.crashes,
        s.timeouts,
        s.restarts,
        s.replayed_elements,
        s.corrupt_frames,
        s.corrupt_records_lost,
        s.phase_count,
        s.phase_digest,
        s.ticks,
        s.shed.shed_oldest_frames,
        s.shed.rejected_frames,
        s.shed.blocked_ticks,
        s.shed.quarantined_frames,
        s.shed.undelivered_frames,
    ] {
        put_u64(out, v);
    }
}

fn decode_report(r: &mut Reader<'_>) -> Option<SessionReport> {
    let client = r.u32()?;
    let status = SessionStatus::from_code(r.u8()?)?;
    let verified = match r.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let mut vals = [0u64; 19];
    for v in &mut vals {
        *v = r.u64()?;
    }
    Some(SessionReport {
        client,
        status,
        stats: SessionStats {
            frames_total: vals[0],
            frames_delivered: vals[1],
            frames_processed: vals[2],
            elements_accepted: vals[3],
            steps: vals[4],
            crashes: vals[5],
            timeouts: vals[6],
            restarts: vals[7],
            replayed_elements: vals[8],
            corrupt_frames: vals[9],
            corrupt_records_lost: vals[10],
            phase_count: vals[11],
            phase_digest: vals[12],
            ticks: vals[13],
            shed: ShedLedger {
                shed_oldest_frames: vals[14],
                rejected_frames: vals[15],
                blocked_ticks: vals[16],
                quarantined_frames: vals[17],
                undelivered_frames: vals[18],
            },
            verified,
        },
    })
}

fn encode_vshard(vshard: u32, reports: &[SessionReport]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + reports.len() * (6 + 19 * 8));
    put_u32(&mut payload, vshard);
    put_u32(&mut payload, reports.len() as u32);
    for r in reports {
        encode_report(&mut payload, r);
    }
    payload
}

fn decode_vshard(payload: &[u8]) -> Option<(u32, Vec<SessionReport>)> {
    let mut r = Reader::new(payload);
    let vshard = r.u32()?;
    let n = r.u32()? as usize;
    if n > payload.len() {
        return None;
    }
    let mut reports = Vec::with_capacity(n);
    for _ in 0..n {
        reports.push(decode_report(&mut r)?);
    }
    r.exhausted().then_some((vshard, reports))
}

/// Appends completed vshards to a service checkpoint.
#[derive(Debug)]
pub struct ServeCheckpointWriter {
    file: File,
}

impl ServeCheckpointWriter {
    /// Creates (or truncates) a checkpoint for a run with the given
    /// fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the file cannot be written.
    pub fn create(path: &Path, fingerprint: u64) -> Result<ServeCheckpointWriter, CheckpointError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = Vec::with_capacity(SERVE_CHECKPOINT_HEADER_LEN);
        header.extend_from_slice(SERVE_CHECKPOINT_MAGIC);
        header.extend_from_slice(&SERVE_CHECKPOINT_VERSION.to_le_bytes());
        header.extend_from_slice(&fingerprint.to_le_bytes());
        file.write_all(&header)?;
        file.flush()?;
        Ok(ServeCheckpointWriter { file })
    }

    /// Opens an existing checkpoint, validates its header against
    /// this run's fingerprint, returns every intact vshard record,
    /// and truncates away a torn tail so appends continue cleanly.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] if the file cannot be read, is not
    /// a version-2 OPDK file, or belongs to a different run.
    pub fn resume(
        path: &Path,
        fingerprint: u64,
    ) -> Result<(ServeCheckpointWriter, BTreeMap<u32, Vec<SessionReport>>), CheckpointError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.len() < SERVE_CHECKPOINT_HEADER_LEN || &bytes[..4] != SERVE_CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != SERVE_CHECKPOINT_VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let found = u64::from_le_bytes(
            bytes[6..14]
                .try_into()
                .expect("slice of exactly eight bytes"),
        );
        if found != fingerprint {
            return Err(CheckpointError::FingerprintMismatch {
                expected: fingerprint,
                found,
            });
        }

        let mut map = BTreeMap::new();
        let mut pos = SERVE_CHECKPOINT_HEADER_LEN;
        let mut valid_end = pos;
        while pos < bytes.len() {
            // marker + len
            if bytes[pos] != RECORD_MARKER || pos + 5 > bytes.len() {
                break;
            }
            let len = u32::from_le_bytes(
                bytes[pos + 1..pos + 5]
                    .try_into()
                    .expect("slice of exactly four bytes"),
            );
            if len > MAX_RECORD_LEN {
                break;
            }
            let len = len as usize;
            let payload_start = pos + 5;
            let checksum_start = match payload_start.checked_add(len) {
                Some(s) => s,
                None => break,
            };
            if checksum_start + 8 > bytes.len() {
                break;
            }
            let payload = &bytes[payload_start..checksum_start];
            let stored = u64::from_le_bytes(
                bytes[checksum_start..checksum_start + 8]
                    .try_into()
                    .expect("slice of exactly eight bytes"),
            );
            if fnv64(payload) != stored {
                break;
            }
            let Some((vshard, reports)) = decode_vshard(payload) else {
                break;
            };
            map.insert(vshard, reports);
            pos = checksum_start + 8;
            valid_end = pos;
        }

        // Truncate tail damage so the next append starts clean.
        file.set_len(valid_end as u64)?;
        file.seek(SeekFrom::End(0))?;
        Ok((ServeCheckpointWriter { file }, map))
    }

    /// Appends one completed vshard as a single flushed record.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the append fails.
    pub fn append(&mut self, vshard: u32, reports: &[SessionReport]) -> io::Result<()> {
        let payload = encode_vshard(vshard, reports);
        let mut record = Vec::with_capacity(payload.len() + 13);
        record.push(RECORD_MARKER);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&payload);
        record.extend_from_slice(&fnv64(&payload).to_le_bytes());
        self.file.write_all(&record)?;
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_reports(base: u32) -> Vec<SessionReport> {
        (0..3)
            .map(|i| SessionReport {
                client: base + i * 7,
                status: if i == 2 {
                    SessionStatus::Quarantined
                } else {
                    SessionStatus::Completed
                },
                stats: SessionStats {
                    frames_total: 10 + u64::from(i),
                    frames_processed: 9,
                    elements_accepted: 800 + u64::from(base),
                    phase_digest: 0xDEAD_0000 + u64::from(i),
                    phase_count: 4,
                    verified: i != 2,
                    shed: ShedLedger {
                        rejected_frames: u64::from(i),
                        ..ShedLedger::default()
                    },
                    ..SessionStats::default()
                },
            })
            .collect()
    }

    #[test]
    fn roundtrip_restores_every_record_bit_identically() {
        let dir =
            std::env::temp_dir().join(format!("opd_serve_ckpt_roundtrip_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("serve.opdk");
        let fp = 0xABCD_EF01;
        {
            let mut w = ServeCheckpointWriter::create(&path, fp).expect("create");
            w.append(3, &sample_reports(100)).expect("append");
            w.append(1, &sample_reports(200)).expect("append");
        }
        let (_w, map) = ServeCheckpointWriter::resume(&path, fp).expect("resume");
        assert_eq!(map.len(), 2);
        assert_eq!(map[&3], sample_reports(100));
        assert_eq!(map[&1], sample_reports(200));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = std::env::temp_dir().join(format!("opd_serve_ckpt_torn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("serve.opdk");
        let fp = 7;
        {
            let mut w = ServeCheckpointWriter::create(&path, fp).expect("create");
            w.append(0, &sample_reports(1)).expect("append");
            w.append(5, &sample_reports(2)).expect("append");
        }
        // Tear the second record: chop bytes off the end.
        let full = std::fs::read(&path).expect("read");
        std::fs::write(&path, &full[..full.len() - 11]).expect("tear");

        let (mut w, map) = ServeCheckpointWriter::resume(&path, fp).expect("resume");
        assert_eq!(map.len(), 1, "torn record dropped");
        assert!(map.contains_key(&0));
        w.append(5, &sample_reports(2)).expect("append after heal");
        drop(w);

        let (_w, healed) = ServeCheckpointWriter::resume(&path, fp).expect("resume again");
        assert_eq!(healed.len(), 2);
        assert_eq!(healed[&5], sample_reports(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_fingerprint_and_version_are_refused() {
        let dir =
            std::env::temp_dir().join(format!("opd_serve_ckpt_refuse_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("serve.opdk");
        {
            let _w = ServeCheckpointWriter::create(&path, 10).expect("create");
        }
        assert!(matches!(
            ServeCheckpointWriter::resume(&path, 11),
            Err(CheckpointError::FingerprintMismatch {
                expected: 11,
                found: 10
            })
        ));
        // A version-1 (sweep) header must be refused, not misread.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[4] = 1;
        bytes[5] = 0;
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            ServeCheckpointWriter::resume(&path, 10),
            Err(CheckpointError::BadVersion(1))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_payload_checksum_is_tail_damage() {
        let dir = std::env::temp_dir().join(format!("opd_serve_ckpt_sum_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("serve.opdk");
        {
            let mut w = ServeCheckpointWriter::create(&path, 3).expect("create");
            w.append(2, &sample_reports(9)).expect("append");
        }
        let mut bytes = std::fs::read(&path).expect("read");
        let flip = SERVE_CHECKPOINT_HEADER_LEN + 9;
        bytes[flip] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write");
        let (_w, map) = ServeCheckpointWriter::resume(&path, 3).expect("resume");
        assert!(map.is_empty(), "corrupt record must not be restored");
        std::fs::remove_file(&path).ok();
    }
}
