//! One detector session: a bounded ingest queue, an incremental
//! detector, and the state machine the supervisor drives it through.
//!
//! A session consumes *frames* — encoded trace slices — through the
//! panic-free resync decoder, feeds the decoded elements to a
//! [`PhaseDetector`] in exact `skip_factor` steps, and keeps an
//! append-only log of every element it accepted. That log is the
//! crash-recovery story: a restarted session replays it into a fresh
//! detector, which restores *exactly* the state an uninterrupted
//! session would have — incremental steps over the log equal one
//! offline run over its concatenation, so the phase stream is
//! bit-identical by construction (and re-checked per session when
//! verification is on).
//!
//! The lifecycle:
//!
//! ```text
//!            ┌──────────────────────────────────────────┐
//!            v                                          │ backoff elapsed
//! Running ──crash/poison──> BackingOff ─────────────────┘   (replay log)
//!   │ │
//!   │ └──wedge──> Wedged ──deadline──> BackingOff (as crash)
//!   │
//!   ├── retry budget exhausted: head frame quarantined (poison pill)
//!   │     too many poison frames ──> Quarantined (terminal)
//!   └── stream drained ──> Completed (terminal)
//! ```

use std::collections::VecDeque;

use opd_core::{DetectedPhase, DetectorConfig, PhaseDetector};
use opd_obs::{DetectorEvent, SpanKind, SpanRecorder};
use opd_trace::{decode_trace_resync, BranchTrace, ProfileElement};

use crate::flight::{PostmortemReason, SessionTracer};
use crate::ledger::ShedLedger;
use crate::service::{FrameSource, Subscriber};
use crate::supervisor::{keyed_hash, HazardPolicy, SupervisionPolicy};

/// What a session does when a frame arrives at a full queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackpressureMode {
    /// Stall the producer: the frame is delivered later, never lost.
    Block,
    /// Evict the oldest queued frame to admit the new one.
    ShedOldest,
    /// Refuse the incoming frame.
    Reject,
}

impl BackpressureMode {
    /// Every mode, in sweep order.
    pub const ALL: [BackpressureMode; 3] = [
        BackpressureMode::Block,
        BackpressureMode::ShedOldest,
        BackpressureMode::Reject,
    ];

    /// Stable lowercase name, as used by the `opd serve` CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackpressureMode::Block => "block",
            BackpressureMode::ShedOldest => "shed-oldest",
            BackpressureMode::Reject => "reject",
        }
    }
}

impl core::fmt::Display for BackpressureMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BackpressureMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BackpressureMode::ALL
            .into_iter()
            .find(|m| m.name() == s)
            .ok_or_else(|| format!("unknown backpressure mode `{s}`"))
    }
}

/// How frames flow into a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestPolicy {
    /// Bounded queue capacity, in frames (at least 1).
    pub queue_capacity: usize,
    /// What happens when the queue is full.
    pub mode: BackpressureMode,
    /// Frames the producer offers per tick while the stream lasts.
    pub arrivals_per_tick: u32,
}

impl Default for IngestPolicy {
    fn default() -> Self {
        IngestPolicy {
            queue_capacity: 8,
            mode: BackpressureMode::Block,
            arrivals_per_tick: 2,
        }
    }
}

/// Where a session is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lifecycle {
    /// Processing frames; `attempt` counts failures of the in-flight
    /// frame so far.
    Running {
        /// Failed attempts of the current in-flight frame.
        attempt: u32,
    },
    /// Crashed; the supervisor restarts it at `until`.
    BackingOff {
        /// First tick at which the restart fires.
        until: u64,
        /// Attempt counter carried into the restarted run.
        attempt: u32,
    },
    /// Stuck on a frame; the supervisor's deadline fires at `until`.
    Wedged {
        /// Tick at which the deadline kill fires.
        until: u64,
        /// Failed attempts of the in-flight frame before the wedge.
        attempt: u32,
    },
    /// Terminal: the stream drained cleanly.
    Completed,
    /// Terminal: too many poison frames.
    Quarantined,
}

/// A session's terminal disposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionStatus {
    /// Drained its stream and closed its phase stream.
    Completed,
    /// Quarantined after repeated poison frames.
    Quarantined,
    /// Refused by certificate admission control; never ran.
    Rejected,
}

impl SessionStatus {
    /// Stable lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SessionStatus::Completed => "completed",
            SessionStatus::Quarantined => "quarantined",
            SessionStatus::Rejected => "rejected",
        }
    }

    /// Checkpoint wire code.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            SessionStatus::Completed => 0,
            SessionStatus::Quarantined => 1,
            SessionStatus::Rejected => 2,
        }
    }

    /// Inverse of [`code`](SessionStatus::code).
    #[must_use]
    pub fn from_code(code: u8) -> Option<SessionStatus> {
        match code {
            0 => Some(SessionStatus::Completed),
            1 => Some(SessionStatus::Quarantined),
            2 => Some(SessionStatus::Rejected),
            _ => None,
        }
    }
}

impl core::fmt::Display for SessionStatus {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything a session counted, exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SessionStats {
    /// Frames the client's stream holds.
    pub frames_total: u64,
    /// Frames that made it into the queue.
    pub frames_delivered: u64,
    /// Frames decoded and fed to the detector.
    pub frames_processed: u64,
    /// Profile elements accepted into the session log.
    pub elements_accepted: u64,
    /// Detector steps judged.
    pub steps: u64,
    /// Transient crashes injected while processing.
    pub crashes: u64,
    /// Deadline kills of wedged frames.
    pub timeouts: u64,
    /// Supervisor restarts (each replays the session log).
    pub restarts: u64,
    /// Elements replayed across all restarts.
    pub replayed_elements: u64,
    /// Frames whose decode reported corruption.
    pub corrupt_frames: u64,
    /// Records the resync decoder skipped, summed over frames.
    pub corrupt_records_lost: u64,
    /// What overload handling did to this session's stream.
    pub shed: ShedLedger,
    /// Phases in the final phase stream.
    pub phase_count: u64,
    /// Digest of the final phase stream (see [`phase_digest`]).
    pub phase_digest: u64,
    /// `true` if the final phase stream matched a fresh offline run
    /// over the session log (always `true` when verification is off
    /// or the session never completed).
    pub verified: bool,
    /// Virtual tick at which the session reached a terminal state.
    pub ticks: u64,
}

impl SessionStats {
    /// Frames whose fate is decided: processed or lost to a ledger
    /// category.
    #[must_use]
    pub fn accounted_frames(&self) -> u64 {
        self.frames_processed + self.shed.lost_frames()
    }

    /// Conservation: for a terminal session, every frame of the
    /// stream is either processed or in exactly one loss category.
    #[must_use]
    pub fn conservation_holds(&self) -> bool {
        self.accounted_frames() == self.frames_total
    }
}

/// A terminal session, as reported (and checkpointed) by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionReport {
    /// The client this session served.
    pub client: u32,
    /// Terminal disposition.
    pub status: SessionStatus,
    /// Exact counters.
    pub stats: SessionStats,
}

impl SessionReport {
    /// The report for a session refused by admission control: its
    /// whole stream is undelivered.
    #[must_use]
    pub fn rejected(client: u32, frames: u32) -> SessionReport {
        SessionReport {
            client,
            status: SessionStatus::Rejected,
            stats: SessionStats {
                frames_total: u64::from(frames),
                shed: ShedLedger {
                    undelivered_frames: u64::from(frames),
                    ..ShedLedger::default()
                },
                verified: true,
                ..SessionStats::default()
            },
        }
    }
}

/// Digest of a phase stream: a stable 64-bit summary of every
/// `(start, anchored_start, end)` triple, used for cross-run
/// bit-identity checks without storing the streams themselves.
#[must_use]
pub fn phase_digest(phases: &[DetectedPhase]) -> u64 {
    let mut words = Vec::with_capacity(phases.len() * 3 + 1);
    words.push(phases.len() as u64);
    for p in phases {
        words.push(p.start);
        words.push(p.anchored_start);
        words.push(p.end.map_or(u64::MAX, |e| e));
    }
    keyed_hash(&words)
}

/// One live detector session.
#[derive(Debug)]
pub struct Session {
    client: u32,
    config: DetectorConfig,
    ingest: IngestPolicy,
    supervision: SupervisionPolicy,
    verify: bool,
    detector: PhaseDetector,
    /// Bounded ingest queue of `(frame index, enqueue tick, encoded
    /// bytes)` — the enqueue tick is the frame-latency baseline.
    queue: VecDeque<(u32, u64, Vec<u8>)>,
    /// The frame currently being processed (held by the "worker", not
    /// the queue — eviction never touches it, retries re-use it).
    inflight: Option<(u32, u64, Vec<u8>)>,
    /// Append-only log of every accepted element: the recovery source.
    accepted: Vec<ProfileElement>,
    /// Elements already fed to the detector (a multiple of
    /// `skip_factor` until the stream drains).
    processed_upto: usize,
    /// Next frame index the producer will offer.
    next_frame: u32,
    frames_total: u32,
    lifecycle: Lifecycle,
    poison_frames: u32,
    notified_starts: usize,
    notified_ends: usize,
    /// Queue-to-processed latency of the most recently processed
    /// frame, in ticks (taken by the engine's metrics path).
    last_latency: Option<u64>,
    stats: SessionStats,
}

impl Session {
    /// Creates a session for `client` with a `frames_total`-frame
    /// stream ahead of it.
    #[must_use]
    pub fn new(
        client: u32,
        config: DetectorConfig,
        frames_total: u32,
        ingest: IngestPolicy,
        supervision: SupervisionPolicy,
        verify: bool,
    ) -> Session {
        Session {
            client,
            config,
            ingest,
            supervision,
            verify,
            detector: PhaseDetector::new(config),
            queue: VecDeque::with_capacity(ingest.queue_capacity),
            inflight: None,
            accepted: Vec::new(),
            processed_upto: 0,
            next_frame: 0,
            frames_total,
            lifecycle: Lifecycle::Running { attempt: 0 },
            poison_frames: 0,
            notified_starts: 0,
            notified_ends: 0,
            last_latency: None,
            stats: SessionStats {
                frames_total: u64::from(frames_total),
                ..SessionStats::default()
            },
        }
    }

    /// The client this session serves.
    #[must_use]
    pub fn client(&self) -> u32 {
        self.client
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn lifecycle(&self) -> Lifecycle {
        self.lifecycle
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Current queue depth, in frames.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// `false` once the session reached a terminal state.
    #[must_use]
    pub fn is_live(&self) -> bool {
        !matches!(
            self.lifecycle,
            Lifecycle::Completed | Lifecycle::Quarantined
        )
    }

    /// Queue-to-processed latency (in ticks) of the frame processed
    /// by the most recent [`step`](Session::step), if any — consumed
    /// by the engine's metrics path.
    pub fn take_last_latency(&mut self) -> Option<u64> {
        self.last_latency.take()
    }

    /// The producer side of one tick: offer up to `arrivals_per_tick`
    /// frames, applying the backpressure mode at the bounded queue.
    /// `tick` stamps each admitted frame's enqueue time.
    pub fn deliver(&mut self, source: &dyn FrameSource, tick: u64) {
        if !self.is_live() {
            return;
        }
        let mut sent = 0;
        while sent < self.ingest.arrivals_per_tick && self.next_frame < self.frames_total {
            if self.queue.len() >= self.ingest.queue_capacity {
                match self.ingest.mode {
                    BackpressureMode::Block => {
                        // The producer stalls for the rest of this
                        // tick; nothing is lost.
                        self.stats.shed.blocked_ticks += 1;
                        return;
                    }
                    BackpressureMode::ShedOldest => {
                        if self.queue.pop_front().is_some() {
                            self.stats.shed.shed_oldest_frames += 1;
                        }
                    }
                    BackpressureMode::Reject => {
                        // The incoming frame is refused (and never
                        // even fetched from the source).
                        self.next_frame += 1;
                        self.stats.shed.rejected_frames += 1;
                        sent += 1;
                        continue;
                    }
                }
            }
            let bytes = source.frame(self.client, self.next_frame);
            self.queue.push_back((self.next_frame, tick, bytes));
            self.stats.frames_delivered += 1;
            self.next_frame += 1;
            sent += 1;
        }
    }

    /// The consumer side of one tick: advance the state machine.
    pub fn step(&mut self, tick: u64, hazards: &dyn HazardPolicy, subscriber: &dyn Subscriber) {
        match self.lifecycle {
            Lifecycle::BackingOff { until, attempt } => {
                if tick >= until {
                    self.stats.restarts += 1;
                    self.replay();
                    self.lifecycle = Lifecycle::Running { attempt };
                }
            }
            Lifecycle::Wedged { until, attempt } => {
                if tick >= until {
                    self.stats.timeouts += 1;
                    self.fail(tick, attempt + 1);
                }
            }
            Lifecycle::Running { attempt } => {
                if self.inflight.is_none() {
                    self.inflight = self.queue.pop_front();
                }
                if let Some(&(frame, _, _)) = self.inflight.as_ref() {
                    if hazards.poison(self.client, frame)
                        || hazards.crash(self.client, frame, attempt)
                    {
                        self.stats.crashes += 1;
                        self.fail(tick, attempt + 1);
                    } else if hazards.wedge(self.client, frame, attempt) {
                        self.lifecycle = Lifecycle::Wedged {
                            until: tick + self.supervision.deadline_ticks.max(1),
                            attempt,
                        };
                    } else if let Some((_, enqueued, bytes)) = self.inflight.take() {
                        self.ingest_frame(enqueued, &bytes, tick, subscriber);
                        self.lifecycle = Lifecycle::Running { attempt: 0 };
                    }
                } else if self.next_frame >= self.frames_total {
                    self.finish(tick, subscriber);
                }
            }
            Lifecycle::Completed | Lifecycle::Quarantined => {}
        }
    }

    /// [`step`](Session::step) with causal-span tracing: a
    /// line-for-line mirror of the plain path (the repository's
    /// traced-twins idiom) whose every span construction is guarded by
    /// `R::ACTIVE`, so a `NullSpanRecorder` tracer monomorphizes this
    /// back to the plain machine code. Equivalence is pinned by the
    /// serve test suite: traced and plain runs produce bit-identical
    /// reports.
    pub fn step_traced<R: SpanRecorder>(
        &mut self,
        tick: u64,
        hazards: &dyn HazardPolicy,
        subscriber: &dyn Subscriber,
        tracer: &mut SessionTracer<R>,
    ) {
        match self.lifecycle {
            Lifecycle::BackingOff { until, attempt } => {
                if tick >= until {
                    self.stats.restarts += 1;
                    let replayed_before = self.stats.replayed_elements;
                    self.replay();
                    if R::ACTIVE {
                        let backoff = tracer.emit(
                            0,
                            SpanKind::Backoff,
                            tracer.backoff_since,
                            tick,
                            u64::from(attempt),
                        );
                        tracer.emit(
                            backoff,
                            SpanKind::Retry,
                            tick,
                            tick,
                            self.stats.replayed_elements - replayed_before,
                        );
                    }
                    self.lifecycle = Lifecycle::Running { attempt };
                }
            }
            Lifecycle::Wedged { until, attempt } => {
                if tick >= until {
                    self.stats.timeouts += 1;
                    if R::ACTIVE {
                        tracer.emit(
                            0,
                            SpanKind::DeadlineKill,
                            tracer.wedge_since,
                            tick,
                            u64::from(attempt),
                        );
                        tracer.dump(
                            PostmortemReason::DeadlineKill,
                            tick,
                            attempt + 1,
                            &self.stats,
                            self.queue.len() as u64,
                            self.poison_frames,
                        );
                    }
                    self.fail_traced(tick, attempt + 1, tracer);
                }
            }
            Lifecycle::Running { attempt } => {
                if self.inflight.is_none() {
                    self.inflight = self.queue.pop_front();
                }
                if let Some(&(frame, _, _)) = self.inflight.as_ref() {
                    if hazards.poison(self.client, frame)
                        || hazards.crash(self.client, frame, attempt)
                    {
                        self.stats.crashes += 1;
                        if R::ACTIVE {
                            tracer.emit(0, SpanKind::HazardKill, tick, tick, u64::from(attempt));
                            tracer.dump(
                                PostmortemReason::HazardKill,
                                tick,
                                attempt + 1,
                                &self.stats,
                                self.queue.len() as u64,
                                self.poison_frames,
                            );
                        }
                        self.fail_traced(tick, attempt + 1, tracer);
                    } else if hazards.wedge(self.client, frame, attempt) {
                        if R::ACTIVE {
                            tracer.wedge_since = tick;
                        }
                        self.lifecycle = Lifecycle::Wedged {
                            until: tick + self.supervision.deadline_ticks.max(1),
                            attempt,
                        };
                    } else if let Some((frame, enqueued, bytes)) = self.inflight.take() {
                        self.ingest_frame_traced(frame, enqueued, &bytes, tick, subscriber, tracer);
                        self.lifecycle = Lifecycle::Running { attempt: 0 };
                    }
                } else if self.next_frame >= self.frames_total {
                    self.finish_traced(tick, subscriber, tracer);
                }
            }
            Lifecycle::Completed | Lifecycle::Quarantined => {}
        }
    }

    /// Consumes the session into its terminal report. Only meaningful
    /// once [`is_live`](Session::is_live) is `false`.
    #[must_use]
    pub fn into_report(self) -> SessionReport {
        debug_assert!(!self.is_live(), "reporting a live session");
        let status = match self.lifecycle {
            Lifecycle::Completed => SessionStatus::Completed,
            _ => SessionStatus::Quarantined,
        };
        SessionReport {
            client: self.client,
            status,
            stats: self.stats,
        }
    }

    /// Decodes one frame through the resync path and feeds every full
    /// `skip_factor` step to the detector.
    fn ingest_frame(
        &mut self,
        enqueued: u64,
        bytes: &[u8],
        tick: u64,
        subscriber: &dyn Subscriber,
    ) {
        let (trace, report) = decode_trace_resync(bytes);
        if !report.is_clean() {
            self.stats.corrupt_frames += 1;
            self.stats.corrupt_records_lost += report.records_lost();
        }
        self.accepted.extend_from_slice(trace.branches().as_slice());
        self.stats.elements_accepted = self.accepted.len() as u64;
        let skip = self.config.skip_factor();
        while self.accepted.len() - self.processed_upto >= skip {
            let chunk = &self.accepted[self.processed_upto..self.processed_upto + skip];
            self.detector.process(chunk);
            self.stats.steps += 1;
            self.processed_upto += skip;
        }
        self.stats.frames_processed += 1;
        self.last_latency = Some(tick.saturating_sub(enqueued));
        self.notify(subscriber);
    }

    /// [`ingest_frame`](Session::ingest_frame), traced: emits the
    /// causal chain `frame_ingest → decode → detect → phase_event`.
    /// The ingest span's id is allocated up front so its children can
    /// name it as parent; the span itself is recorded last, once its
    /// end tick is known.
    fn ingest_frame_traced<R: SpanRecorder>(
        &mut self,
        frame: u32,
        enqueued: u64,
        bytes: &[u8],
        tick: u64,
        subscriber: &dyn Subscriber,
        tracer: &mut SessionTracer<R>,
    ) {
        let ingest_id = if R::ACTIVE { tracer.alloc_id() } else { 0 };
        let (trace, report) = decode_trace_resync(bytes);
        if !report.is_clean() {
            self.stats.corrupt_frames += 1;
            self.stats.corrupt_records_lost += report.records_lost();
        }
        if R::ACTIVE {
            tracer.emit(
                ingest_id,
                SpanKind::Decode,
                tick,
                tick,
                report.records_lost(),
            );
        }
        self.accepted.extend_from_slice(trace.branches().as_slice());
        self.stats.elements_accepted = self.accepted.len() as u64;
        let steps_before = self.stats.steps;
        let skip = self.config.skip_factor();
        while self.accepted.len() - self.processed_upto >= skip {
            let chunk = &self.accepted[self.processed_upto..self.processed_upto + skip];
            self.detector.process(chunk);
            self.stats.steps += 1;
            self.processed_upto += skip;
        }
        let detect_id = if R::ACTIVE {
            tracer.emit(
                ingest_id,
                SpanKind::Detect,
                tick,
                tick,
                self.stats.steps - steps_before,
            )
        } else {
            0
        };
        self.stats.frames_processed += 1;
        self.last_latency = Some(tick.saturating_sub(enqueued));
        self.notify_traced(subscriber, detect_id, tick, tracer);
        if R::ACTIVE {
            tracer.emit_with_id(
                ingest_id,
                0,
                SpanKind::FrameIngest,
                enqueued,
                tick,
                u64::from(frame),
            );
        }
    }

    /// Crash handling: back off for a bounded exponential delay, or —
    /// once the retry budget is spent — quarantine the poison frame
    /// (and, past the poison allowance, the session).
    fn fail(&mut self, tick: u64, next_attempt: u32) {
        let backoff = self.supervision.backoff_ticks(next_attempt);
        if next_attempt >= self.supervision.retry_budget {
            if self.inflight.take().is_some() {
                self.stats.shed.quarantined_frames += 1;
                self.poison_frames += 1;
            }
            if self.poison_frames > self.supervision.max_poison_frames {
                self.quarantine(tick);
                return;
            }
            // The poison pill is gone; restart fresh on the next frame.
            self.lifecycle = Lifecycle::BackingOff {
                until: tick + backoff,
                attempt: 0,
            };
        } else {
            self.lifecycle = Lifecycle::BackingOff {
                until: tick + backoff,
                attempt: next_attempt,
            };
        }
    }

    /// [`fail`](Session::fail), traced: the mirror additionally marks
    /// the backoff's start tick (the later restart closes the span).
    fn fail_traced<R: SpanRecorder>(
        &mut self,
        tick: u64,
        next_attempt: u32,
        tracer: &mut SessionTracer<R>,
    ) {
        let backoff = self.supervision.backoff_ticks(next_attempt);
        if next_attempt >= self.supervision.retry_budget {
            if self.inflight.take().is_some() {
                self.stats.shed.quarantined_frames += 1;
                self.poison_frames += 1;
            }
            if self.poison_frames > self.supervision.max_poison_frames {
                self.quarantine_traced(tick, tracer);
                return;
            }
            // The poison pill is gone; restart fresh on the next frame.
            if R::ACTIVE {
                tracer.backoff_since = tick;
            }
            self.lifecycle = Lifecycle::BackingOff {
                until: tick + backoff,
                attempt: 0,
            };
        } else {
            if R::ACTIVE {
                tracer.backoff_since = tick;
            }
            self.lifecycle = Lifecycle::BackingOff {
                until: tick + backoff,
                attempt: next_attempt,
            };
        }
    }

    /// Terminal quarantine: the rest of the stream will never be
    /// delivered.
    fn quarantine(&mut self, tick: u64) {
        debug_assert!(
            self.inflight.is_none(),
            "quarantine with an in-flight frame"
        );
        let upstream = u64::from(self.frames_total - self.next_frame);
        self.stats.shed.undelivered_frames += self.queue.len() as u64 + upstream;
        self.queue.clear();
        // Restore the detector to the accepted prefix so the terminal
        // phase stream is well-defined (the crash that led here lost
        // live state).
        self.replay();
        self.seal_phases();
        self.stats.verified = true;
        self.lifecycle = Lifecycle::Quarantined;
        self.stats.ticks = tick;
    }

    /// [`quarantine`](Session::quarantine), traced: emits the
    /// terminal `quarantine` span and dumps the session's post-mortem.
    fn quarantine_traced<R: SpanRecorder>(&mut self, tick: u64, tracer: &mut SessionTracer<R>) {
        debug_assert!(
            self.inflight.is_none(),
            "quarantine with an in-flight frame"
        );
        let upstream = u64::from(self.frames_total - self.next_frame);
        self.stats.shed.undelivered_frames += self.queue.len() as u64 + upstream;
        self.queue.clear();
        // Restore the detector to the accepted prefix so the terminal
        // phase stream is well-defined (the crash that led here lost
        // live state).
        self.replay();
        self.seal_phases();
        self.stats.verified = true;
        self.lifecycle = Lifecycle::Quarantined;
        self.stats.ticks = tick;
        if R::ACTIVE {
            tracer.emit(
                0,
                SpanKind::Quarantine,
                tick,
                tick,
                u64::from(self.poison_frames),
            );
            tracer.dump(
                PostmortemReason::Quarantined,
                tick,
                0,
                &self.stats,
                0,
                self.poison_frames,
            );
        }
    }

    /// Clean completion: judge the residual partial step, close the
    /// open phase, and (optionally) verify against an offline run.
    fn finish(&mut self, tick: u64, subscriber: &dyn Subscriber) {
        if self.processed_upto < self.accepted.len() {
            let chunk = &self.accepted[self.processed_upto..];
            self.detector.process(chunk);
            self.stats.steps += 1;
            self.processed_upto = self.accepted.len();
        }
        self.detector.close_open_phase();
        self.notify(subscriber);
        self.stats.verified = !self.verify || self.offline_matches();
        self.seal_phases();
        self.lifecycle = Lifecycle::Completed;
        self.stats.ticks = tick;
    }

    /// [`finish`](Session::finish), traced: the residual partial step
    /// gets its own `detect` span, and the closing phase boundaries
    /// are emitted under it.
    fn finish_traced<R: SpanRecorder>(
        &mut self,
        tick: u64,
        subscriber: &dyn Subscriber,
        tracer: &mut SessionTracer<R>,
    ) {
        let mut residual_steps = 0u64;
        if self.processed_upto < self.accepted.len() {
            let chunk = &self.accepted[self.processed_upto..];
            self.detector.process(chunk);
            self.stats.steps += 1;
            self.processed_upto = self.accepted.len();
            residual_steps = 1;
        }
        self.detector.close_open_phase();
        let detect_id = if R::ACTIVE {
            tracer.emit(0, SpanKind::Detect, tick, tick, residual_steps)
        } else {
            0
        };
        self.notify_traced(subscriber, detect_id, tick, tracer);
        self.stats.verified = !self.verify || self.offline_matches();
        self.seal_phases();
        self.lifecycle = Lifecycle::Completed;
        self.stats.ticks = tick;
    }

    /// Event-sourced recovery: rebuild a fresh detector by replaying
    /// the accepted-element log in the same full-step chunks.
    fn replay(&mut self) {
        self.detector = PhaseDetector::new(self.config);
        let skip = self.config.skip_factor();
        for chunk in self.accepted[..self.processed_upto].chunks(skip) {
            self.detector.process(chunk);
        }
        self.stats.replayed_elements += self.processed_upto as u64;
    }

    /// Pushes phase-boundary notifications past the high-water marks —
    /// after a replay the marks make redelivery exactly-once.
    fn notify(&mut self, subscriber: &dyn Subscriber) {
        let phases = self.detector.detected_phases();
        let step = self.stats.steps;
        for p in &phases[self.notified_starts..] {
            subscriber.on_event(
                self.client,
                DetectorEvent::PhaseStart {
                    step,
                    start: p.start,
                    anchored_start: p.anchored_start,
                },
            );
        }
        let closed = phases.iter().take_while(|p| p.end.is_some()).count();
        for p in &phases[self.notified_ends..closed] {
            subscriber.on_event(
                self.client,
                DetectorEvent::PhaseEnd {
                    step,
                    end: p.end.unwrap_or(0),
                },
            );
        }
        self.notified_starts = phases.len();
        self.notified_ends = closed;
    }

    /// [`notify`](Session::notify), traced: every boundary pushed to
    /// the subscriber also emits a `phase_event` span under `parent`
    /// (the frame's `detect` span), `detail` packing
    /// `(ordinal << 1) | is_end`.
    fn notify_traced<R: SpanRecorder>(
        &mut self,
        subscriber: &dyn Subscriber,
        parent: u64,
        tick: u64,
        tracer: &mut SessionTracer<R>,
    ) {
        let phases = self.detector.detected_phases();
        let step = self.stats.steps;
        for (i, p) in phases.iter().enumerate().skip(self.notified_starts) {
            subscriber.on_event(
                self.client,
                DetectorEvent::PhaseStart {
                    step,
                    start: p.start,
                    anchored_start: p.anchored_start,
                },
            );
            if R::ACTIVE {
                tracer.emit(parent, SpanKind::PhaseEvent, tick, tick, (i as u64) << 1);
            }
        }
        let closed = phases.iter().take_while(|p| p.end.is_some()).count();
        for (i, p) in phases
            .iter()
            .enumerate()
            .take(closed)
            .skip(self.notified_ends)
        {
            subscriber.on_event(
                self.client,
                DetectorEvent::PhaseEnd {
                    step,
                    end: p.end.unwrap_or(0),
                },
            );
            if R::ACTIVE {
                tracer.emit(
                    parent,
                    SpanKind::PhaseEvent,
                    tick,
                    tick,
                    ((i as u64) << 1) | 1,
                );
            }
        }
        self.notified_starts = phases.len();
        self.notified_ends = closed;
    }

    /// Records the terminal phase stream's count and digest.
    fn seal_phases(&mut self) {
        let phases = self.detector.detected_phases();
        self.stats.phase_count = phases.len() as u64;
        self.stats.phase_digest = phase_digest(phases);
    }

    /// Bit-identity check: a fresh offline detector over the session
    /// log must produce the same phase stream the incremental path
    /// did.
    fn offline_matches(&self) -> bool {
        let mut offline = BranchTrace::with_capacity(self.accepted.len());
        for &e in &self.accepted {
            offline.push(e);
        }
        let mut reference = PhaseDetector::new(self.config);
        let _ = reference.run(&offline);
        reference.detected_phases() == self.detector.detected_phases()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{MemorySource, NullSubscriber};
    use crate::supervisor::NoHazards;

    fn drive(session: &mut Session, source: &MemorySource, hazards: &dyn HazardPolicy) -> u64 {
        let mut tick = 0;
        while session.is_live() {
            tick += 1;
            assert!(tick < 1_000_000, "session stalled");
            session.deliver(source, tick);
            session.step(tick, hazards, &NullSubscriber);
        }
        tick
    }

    fn small_source(clients: u32) -> MemorySource {
        MemorySource::synthetic(clients, 8, 48)
    }

    #[test]
    fn clean_session_completes_verified() {
        let source = small_source(1);
        let mut s = Session::new(
            0,
            source.config_of(0),
            source.frames(0),
            IngestPolicy::default(),
            SupervisionPolicy::default(),
            true,
        );
        drive(&mut s, &source, &NoHazards);
        let r = s.into_report();
        assert_eq!(r.status, SessionStatus::Completed);
        assert!(r.stats.verified);
        assert!(r.stats.conservation_holds(), "{:?}", r.stats);
        assert_eq!(r.stats.frames_processed, 8);
        assert_eq!(r.stats.restarts, 0);
        assert!(r.stats.elements_accepted > 0);
        assert_ne!(r.stats.phase_digest, 0);
    }

    #[test]
    fn reject_mode_drops_overflow_but_stays_bit_identical() {
        let source = small_source(1);
        let ingest = IngestPolicy {
            queue_capacity: 1,
            mode: BackpressureMode::Reject,
            arrivals_per_tick: 4,
        };
        let mut s = Session::new(
            0,
            source.config_of(0),
            source.frames(0),
            ingest,
            SupervisionPolicy::default(),
            true,
        );
        drive(&mut s, &source, &NoHazards);
        let r = s.into_report();
        assert_eq!(r.status, SessionStatus::Completed);
        assert!(r.stats.shed.rejected_frames > 0);
        assert!(
            r.stats.verified,
            "phase stream must match offline run over accepted input"
        );
        assert!(r.stats.conservation_holds(), "{:?}", r.stats);
    }

    #[test]
    fn shed_oldest_mode_evicts_from_the_front() {
        let source = small_source(1);
        let ingest = IngestPolicy {
            queue_capacity: 1,
            mode: BackpressureMode::ShedOldest,
            arrivals_per_tick: 4,
        };
        let mut s = Session::new(
            0,
            source.config_of(0),
            source.frames(0),
            ingest,
            SupervisionPolicy::default(),
            true,
        );
        drive(&mut s, &source, &NoHazards);
        let r = s.into_report();
        assert_eq!(r.status, SessionStatus::Completed);
        assert!(r.stats.shed.shed_oldest_frames > 0);
        assert!(r.stats.verified);
        assert!(r.stats.conservation_holds(), "{:?}", r.stats);
    }

    #[test]
    fn block_mode_stalls_but_loses_nothing() {
        let source = small_source(1);
        let ingest = IngestPolicy {
            queue_capacity: 1,
            mode: BackpressureMode::Block,
            arrivals_per_tick: 4,
        };
        let mut s = Session::new(
            0,
            source.config_of(0),
            source.frames(0),
            ingest,
            SupervisionPolicy::default(),
            true,
        );
        drive(&mut s, &source, &NoHazards);
        let r = s.into_report();
        assert_eq!(r.status, SessionStatus::Completed);
        assert!(r.stats.shed.blocked_ticks > 0);
        assert_eq!(r.stats.shed.lost_frames(), 0);
        assert_eq!(r.stats.frames_processed, 8);
        assert!(r.stats.verified);
    }

    /// A scripted hazard: crashes `kills` times on one frame, then
    /// succeeds.
    struct CrashOn {
        frame: u32,
        kills: u32,
    }

    impl HazardPolicy for CrashOn {
        fn crash(&self, _: u32, frame: u32, attempt: u32) -> bool {
            frame == self.frame && attempt < self.kills
        }
        fn wedge(&self, _: u32, _: u32, _: u32) -> bool {
            false
        }
        fn poison(&self, _: u32, _: u32) -> bool {
            false
        }
    }

    #[test]
    fn transient_crash_restarts_and_recovers_bit_identically() {
        let source = small_source(1);
        let mut s = Session::new(
            0,
            source.config_of(0),
            source.frames(0),
            IngestPolicy::default(),
            SupervisionPolicy::default(),
            true,
        );
        drive(&mut s, &source, &CrashOn { frame: 3, kills: 2 });
        let r = s.into_report();
        assert_eq!(r.status, SessionStatus::Completed);
        assert_eq!(r.stats.crashes, 2);
        assert_eq!(r.stats.restarts, 2);
        assert!(r.stats.replayed_elements > 0);
        assert_eq!(
            r.stats.frames_processed, 8,
            "the crashing frame is retried, not lost"
        );
        assert!(r.stats.verified, "recovered session must match offline run");
        assert!(r.stats.conservation_holds(), "{:?}", r.stats);
    }

    /// Poisons one frame: every attempt crashes.
    struct PoisonFrame(u32);

    impl HazardPolicy for PoisonFrame {
        fn crash(&self, _: u32, _: u32, _: u32) -> bool {
            false
        }
        fn wedge(&self, _: u32, _: u32, _: u32) -> bool {
            false
        }
        fn poison(&self, _: u32, frame: u32) -> bool {
            frame == self.0
        }
    }

    #[test]
    fn poison_frame_is_quarantined_and_the_rest_flows() {
        let source = small_source(1);
        let mut s = Session::new(
            0,
            source.config_of(0),
            source.frames(0),
            IngestPolicy::default(),
            SupervisionPolicy::default(),
            true,
        );
        drive(&mut s, &source, &PoisonFrame(2));
        let r = s.into_report();
        assert_eq!(r.status, SessionStatus::Completed);
        assert_eq!(r.stats.shed.quarantined_frames, 1);
        assert_eq!(r.stats.frames_processed, 7);
        assert!(r.stats.verified);
        assert!(r.stats.conservation_holds(), "{:?}", r.stats);
    }

    /// Everything is poison.
    struct AllPoison;

    impl HazardPolicy for AllPoison {
        fn crash(&self, _: u32, _: u32, _: u32) -> bool {
            false
        }
        fn wedge(&self, _: u32, _: u32, _: u32) -> bool {
            false
        }
        fn poison(&self, _: u32, _: u32) -> bool {
            true
        }
    }

    #[test]
    fn relentless_poison_quarantines_the_session_with_exact_accounting() {
        let source = small_source(1);
        let policy = SupervisionPolicy {
            max_poison_frames: 2,
            ..SupervisionPolicy::default()
        };
        let mut s = Session::new(
            0,
            source.config_of(0),
            source.frames(0),
            IngestPolicy::default(),
            policy,
            true,
        );
        drive(&mut s, &source, &AllPoison);
        let r = s.into_report();
        assert_eq!(r.status, SessionStatus::Quarantined);
        assert_eq!(r.stats.shed.quarantined_frames, 3, "{:?}", r.stats.shed);
        assert_eq!(r.stats.frames_processed, 0);
        assert!(r.stats.conservation_holds(), "{:?}", r.stats);
    }

    /// Wedges forever on one frame.
    struct WedgeOn(u32);

    impl HazardPolicy for WedgeOn {
        fn crash(&self, _: u32, _: u32, _: u32) -> bool {
            false
        }
        fn wedge(&self, _: u32, frame: u32, attempt: u32) -> bool {
            frame == self.0 && attempt == 0
        }
        fn poison(&self, _: u32, _: u32) -> bool {
            false
        }
    }

    #[test]
    fn wedged_frame_is_deadline_killed_then_retried() {
        let source = small_source(1);
        let mut s = Session::new(
            0,
            source.config_of(0),
            source.frames(0),
            IngestPolicy::default(),
            SupervisionPolicy::default(),
            true,
        );
        drive(&mut s, &source, &WedgeOn(4));
        let r = s.into_report();
        assert_eq!(r.status, SessionStatus::Completed);
        assert_eq!(r.stats.timeouts, 1);
        assert_eq!(r.stats.restarts, 1);
        assert_eq!(r.stats.frames_processed, 8);
        assert!(r.stats.verified);
    }

    #[test]
    fn empty_stream_completes_immediately() {
        let source = small_source(1);
        let mut s = Session::new(
            0,
            source.config_of(0),
            0,
            IngestPolicy::default(),
            SupervisionPolicy::default(),
            true,
        );
        drive(&mut s, &source, &NoHazards);
        let r = s.into_report();
        assert_eq!(r.status, SessionStatus::Completed);
        assert_eq!(r.stats.phase_count, 0);
        assert!(r.stats.verified);
    }

    #[test]
    fn mode_names_roundtrip() {
        for m in BackpressureMode::ALL {
            assert_eq!(m.name().parse::<BackpressureMode>(), Ok(m));
        }
        assert!("drop".parse::<BackpressureMode>().is_err());
        for code in 0..3 {
            let s = SessionStatus::from_code(code).expect("valid code");
            assert_eq!(s.code(), code);
        }
        assert_eq!(SessionStatus::from_code(9), None);
    }
}
