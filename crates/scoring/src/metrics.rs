//! Correlation and the top-level scoring entry points.

use opd_baseline::BaselineSolution;
use opd_trace::{intervals_of, PhaseInterval, StateSeq};

use crate::matching::match_phases;
use crate::score::AccuracyScore;

/// Fraction of the `total` profile elements labelled identically by
/// two interval sets (`P` where both have a phase, `T` where neither
/// does).
///
/// Both lists must be sorted and disjoint.
///
/// # Examples
///
/// ```
/// use opd_scoring::correlation;
/// use opd_trace::PhaseInterval;
///
/// let a = [PhaseInterval::new(0, 50)];
/// let b = [PhaseInterval::new(25, 75)];
/// // Agree on [0,25) vs... both in phase on [25,50): 25 elements;
/// // both in transition on [75,100): 25 elements.
/// assert_eq!(correlation(&a, &b, 100), 0.5);
/// ```
#[must_use]
pub fn correlation(a: &[PhaseInterval], b: &[PhaseInterval], total: u64) -> f64 {
    if total == 0 {
        return 1.0;
    }
    let in_a: u64 = a.iter().map(|p| p.len()).sum();
    let in_b: u64 = b.iter().map(|p| p.len()).sum();
    let both_in_phase = overlap(a, b);
    // bothInTransition = total - |A ∪ B|.
    let both_in_transition = total - (in_a + in_b - both_in_phase);
    (both_in_phase + both_in_transition) as f64 / total as f64
}

/// Total overlap (in elements) between two sorted, disjoint interval
/// lists, by a linear merge.
fn overlap(a: &[PhaseInterval], b: &[PhaseInterval]) -> u64 {
    let (mut i, mut j, mut sum) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].start().max(b[j].start());
        let hi = a[i].end().min(b[j].end());
        if lo < hi {
            sum += hi - lo;
        }
        if a[i].end() <= b[j].end() {
            i += 1;
        } else {
            j += 1;
        }
    }
    sum
}

/// Scores a set of detected phase intervals against the baseline
/// solution.
///
/// This is the core metric; [`score_states`] is the convenience
/// wrapper for detector state sequences. Degenerate cases follow the
/// natural conventions: with no baseline boundaries sensitivity is 1,
/// and with no detected boundaries there are no false positives.
#[must_use]
pub fn score_intervals(detected: &[PhaseInterval], baseline: &BaselineSolution) -> AccuracyScore {
    let total = baseline.total_elements();
    let corr = correlation(detected, baseline.phases(), total);
    let outcome = match_phases(detected, baseline.phases());
    let matched = outcome.matched_boundaries();
    let baseline_boundaries = outcome.baseline_count * 2;
    let detected_boundaries = outcome.detected_count * 2;
    let sensitivity = if baseline_boundaries == 0 {
        1.0
    } else {
        matched as f64 / baseline_boundaries as f64
    };
    let false_positives = if detected_boundaries == 0 {
        0.0
    } else {
        (detected_boundaries - matched) as f64 / detected_boundaries as f64
    };
    AccuracyScore::new(
        corr,
        sensitivity,
        false_positives,
        matched,
        baseline_boundaries,
        detected_boundaries,
    )
}

/// Scores a detector's per-element state sequence against the baseline
/// solution.
///
/// # Panics
///
/// Panics if the state sequence is longer than the baseline's element
/// count (they must describe the same trace).
#[must_use]
pub fn score_states(states: &StateSeq, baseline: &BaselineSolution) -> AccuracyScore {
    assert!(
        states.len() as u64 <= baseline.total_elements(),
        "detector labelled {} elements but the trace has {}",
        states.len(),
        baseline.total_elements()
    );
    score_intervals(&intervals_of(states), baseline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_trace::PhaseState;

    fn iv(s: u64, e: u64) -> PhaseInterval {
        PhaseInterval::new(s, e)
    }

    fn baseline(phases: &[(u64, u64)], total: u64) -> BaselineSolution {
        // Build through the public API: a synthetic trace with loops
        // at exactly the requested offsets.
        use opd_trace::{ExecutionTrace, LoopId, MethodId, ProfileElement, TraceSink};
        let mut t = ExecutionTrace::new();
        let mut off = 0u64;
        let pad = |t: &mut ExecutionTrace, upto: u64, off: &mut u64| {
            while *off < upto {
                t.record_branch(ProfileElement::new(
                    MethodId::new(0),
                    (*off % 9) as u32,
                    true,
                ));
                *off += 1;
            }
        };
        for (i, &(s, e)) in phases.iter().enumerate() {
            pad(&mut t, s, &mut off);
            t.record_loop_enter(LoopId::new(i as u32));
            pad(&mut t, e, &mut off);
            t.record_loop_exit(LoopId::new(i as u32));
        }
        pad(&mut t, total, &mut off);
        let sol = BaselineSolution::compute(&t, 1).unwrap();
        assert_eq!(sol.phases().len(), phases.len());
        sol
    }

    #[test]
    fn perfect_detection_scores_one() {
        let b = baseline(&[(10, 40), (60, 90)], 100);
        let s = score_intervals(b.phases(), &b);
        assert!((s.combined() - 1.0).abs() < 1e-12, "{s}");
    }

    #[test]
    fn no_detection_scores_correlation_only() {
        let b = baseline(&[(0, 50)], 100);
        let s = score_intervals(&[], &b);
        // Correlation: agree on the 50 transition elements = 0.5;
        // sensitivity 0; no detected boundaries so no false positives.
        assert!((s.correlation - 0.5).abs() < 1e-12);
        assert_eq!(s.sensitivity, 0.0);
        assert_eq!(s.false_positives, 0.0);
        assert!((s.combined() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn late_detector_scores_high_but_not_perfect() {
        let b = baseline(&[(10, 40), (60, 90)], 100);
        let s = score_intervals(&[iv(15, 42), iv(65, 92)], &b);
        assert_eq!(s.sensitivity, 1.0);
        assert_eq!(s.false_positives, 0.0);
        assert!(s.correlation < 1.0);
        assert!(s.combined() > 0.8, "{s}");
    }

    #[test]
    fn spurious_phases_raise_false_positives() {
        let b = baseline(&[(10, 40)], 100);
        let s = score_intervals(&[iv(12, 41), iv(50, 55), iv(70, 80)], &b);
        assert_eq!(s.matched_boundaries, 2);
        assert_eq!(s.detected_boundaries, 6);
        assert!((s.false_positives - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_overlap_arithmetic() {
        assert_eq!(correlation(&[iv(0, 50)], &[iv(25, 75)], 100), 0.5);
        assert_eq!(correlation(&[], &[], 100), 1.0);
        assert_eq!(correlation(&[iv(0, 100)], &[], 100), 0.0);
        assert_eq!(correlation(&[], &[], 0), 1.0);
        let many_a = [iv(0, 10), iv(20, 30), iv(40, 50)];
        let many_b = [iv(5, 25), iv(45, 60)];
        // overlap: [5,10)+[20,25)+[45,50) = 15; inA=30, inB=35;
        // bothT = 100 - (30+35-15) = 50; corr = (15+50)/100.
        assert!((correlation(&many_a, &many_b, 100) - 0.65).abs() < 1e-12);
    }

    #[test]
    fn score_states_wrapper_agrees_with_intervals() {
        let b = baseline(&[(4, 10)], 16);
        let states: StateSeq = (0..16)
            .map(|i| {
                if (5..11).contains(&i) {
                    PhaseState::Phase
                } else {
                    PhaseState::Transition
                }
            })
            .collect();
        let via_states = score_states(&states, &b);
        let via_intervals = score_intervals(&[iv(5, 11)], &b);
        assert_eq!(via_states, via_intervals);
    }

    #[test]
    #[should_panic(expected = "labelled")]
    fn mismatched_lengths_rejected() {
        let b = baseline(&[(0, 5)], 10);
        let states: StateSeq = (0..20).map(|_| PhaseState::Transition).collect();
        let _ = score_states(&states, &b);
    }

    #[test]
    fn empty_baseline_and_empty_detection_is_perfect() {
        let b = baseline(&[], 50);
        let s = score_intervals(&[], &b);
        assert!((s.combined() - 1.0).abs() < 1e-12);
    }
}
