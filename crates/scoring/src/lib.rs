//! The accuracy scoring metric of Section 3.2 of *Online Phase
//! Detection Algorithms* (CGO 2006).
//!
//! A detector's output is compared against the baseline (oracle)
//! solution along two axes:
//!
//! * **correlation** — the fraction of profile elements on which the
//!   detector and the baseline agree (`P` with `P`, `T` with `T`);
//! * **boundary matching** — *sensitivity* (matched baseline
//!   boundaries) and *false positives* (detected boundaries the
//!   baseline does not have), under the paper's three matching
//!   constraints.
//!
//! The combined score weighs correlation at 50%, sensitivity at 25%,
//! and false positives at 25%:
//!
//! ```text
//! score = correlation/2 + sensitivity/4 + (1 - falsePositives)/4
//! ```
//!
//! # Examples
//!
//! ```
//! use opd_scoring::score_states;
//! use opd_baseline::BaselineSolution;
//! use opd_microvm::workloads::Workload;
//! use opd_core::{DetectorConfig, PhaseDetector};
//!
//! let trace = Workload::Lexgen.trace(1);
//! let oracle = BaselineSolution::compute(&trace, 10_000)?;
//! let mut detector = PhaseDetector::new(
//!     DetectorConfig::builder().current_window(5_000).build()?,
//! );
//! let states = detector.run(trace.branches());
//! let score = score_states(&states, &oracle);
//! assert!(score.combined() > 0.0 && score.combined() <= 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod matching;
mod metrics;
mod score;

pub use matching::{match_phases, MatchOutcome};
pub use metrics::{correlation, score_intervals, score_states};
pub use score::AccuracyScore;
