//! The accuracy score: correlation, sensitivity, false positives, and
//! their weighted combination.

use core::fmt;

/// The accuracy of one detector run against one baseline solution.
///
/// All three components lie in `[0, 1]`. The combined score weighs
/// correlation at 50% and splits the boundary-matching weight evenly
/// between sensitivity and false positives (Section 3.2 of the paper).
///
/// # Examples
///
/// ```
/// use opd_scoring::AccuracyScore;
///
/// let s = AccuracyScore::new(0.8, 0.5, 0.25, 2, 4, 4);
/// // 0.8/2 + 0.5/4 + (1 - 0.25)/4
/// assert!((s.combined() - 0.7125).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccuracyScore {
    /// Fraction of profile elements on which detector and baseline
    /// agree.
    pub correlation: f64,
    /// Fraction of baseline boundaries matched by the detector.
    pub sensitivity: f64,
    /// Fraction of detected boundaries not matching any baseline
    /// boundary.
    pub false_positives: f64,
    /// Number of matched boundaries.
    pub matched_boundaries: usize,
    /// Number of baseline boundaries.
    pub baseline_boundaries: usize,
    /// Number of detected boundaries.
    pub detected_boundaries: usize,
}

impl AccuracyScore {
    /// Assembles a score from its components.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any component lies outside `[0, 1]`.
    #[must_use]
    pub fn new(
        correlation: f64,
        sensitivity: f64,
        false_positives: f64,
        matched_boundaries: usize,
        baseline_boundaries: usize,
        detected_boundaries: usize,
    ) -> Self {
        debug_assert!((0.0..=1.0).contains(&correlation), "{correlation}");
        debug_assert!((0.0..=1.0).contains(&sensitivity), "{sensitivity}");
        debug_assert!((0.0..=1.0).contains(&false_positives), "{false_positives}");
        AccuracyScore {
            correlation,
            sensitivity,
            false_positives,
            matched_boundaries,
            baseline_boundaries,
            detected_boundaries,
        }
    }

    /// The weighted sum
    /// `correlation/2 + sensitivity/4 + (1 - falsePositives)/4`,
    /// in `[0, 1]`, higher is better.
    #[must_use]
    pub fn combined(&self) -> f64 {
        self.correlation / 2.0 + self.sensitivity / 4.0 + (1.0 - self.false_positives) / 4.0
    }
}

impl fmt::Display for AccuracyScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "score {:.4} (corr {:.4}, sens {:.4} [{}/{}], fp {:.4} [{}/{}])",
            self.combined(),
            self.correlation,
            self.sensitivity,
            self.matched_boundaries,
            self.baseline_boundaries,
            self.false_positives,
            self.detected_boundaries - self.matched_boundaries,
            self.detected_boundaries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighting_matches_paper() {
        // Correlation 50%, sensitivity 25%, false positives 25%.
        let corr_only = AccuracyScore::new(1.0, 0.0, 1.0, 0, 2, 2);
        assert!((corr_only.combined() - 0.5).abs() < 1e-12);
        let sens_only = AccuracyScore::new(0.0, 1.0, 1.0, 2, 2, 2);
        assert!((sens_only.combined() - 0.25).abs() < 1e-12);
        let fp_only = AccuracyScore::new(0.0, 0.0, 0.0, 0, 2, 0);
        assert!((fp_only.combined() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn perfect_score_is_one() {
        let s = AccuracyScore::new(1.0, 1.0, 0.0, 4, 4, 4);
        assert!((s.combined() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_score_is_zero() {
        let s = AccuracyScore::new(0.0, 0.0, 1.0, 0, 4, 4);
        assert_eq!(s.combined(), 0.0);
    }

    #[test]
    fn display_shows_components() {
        let s = AccuracyScore::new(0.5, 0.5, 0.5, 1, 2, 2);
        let text = s.to_string();
        assert!(text.contains("corr 0.5000"), "{text}");
        assert!(text.contains("[1/2]"), "{text}");
    }
}
