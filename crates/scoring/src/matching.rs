//! Boundary matching between detected and baseline phases, under the
//! three constraints of Section 3.2:
//!
//! 1. the detected phase must start at or after the baseline phase's
//!    start and before its end;
//! 2. the detected phase must end at or after the baseline phase's end
//!    and before the start of the next baseline phase;
//! 3. when several detected phases satisfy 1–2 for one baseline phase,
//!    the one whose boundaries are closest matches.
//!
//! A matched detected phase contributes two matched boundaries (its
//! start and its end).

use opd_trace::PhaseInterval;

/// The result of matching detected phases against baseline phases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchOutcome {
    /// Pairs `(detected index, baseline index)` of matched phases, at
    /// most one per baseline phase and one per detected phase.
    pub pairs: Vec<(usize, usize)>,
    /// Number of detected phases.
    pub detected_count: usize,
    /// Number of baseline phases.
    pub baseline_count: usize,
}

impl MatchOutcome {
    /// Matched boundaries: two per matched phase pair.
    #[must_use]
    pub fn matched_boundaries(&self) -> usize {
        self.pairs.len() * 2
    }

    /// Detected boundaries that matched nothing.
    #[must_use]
    pub fn unmatched_detected_boundaries(&self) -> usize {
        self.detected_count * 2 - self.matched_boundaries()
    }
}

/// Matches detected phases to baseline phases.
///
/// Both lists must be sorted and disjoint (as produced by the detector
/// and the baseline solution).
#[must_use]
pub fn match_phases(detected: &[PhaseInterval], baseline: &[PhaseInterval]) -> MatchOutcome {
    // For each detected phase, find the unique baseline phase whose
    // span contains the detected start (constraint 1), then check
    // constraint 2; among candidates for one baseline phase, keep the
    // closest (constraint 3).
    let mut best: Vec<Option<(usize, u64)>> = vec![None; baseline.len()];

    for (di, d) in detected.iter().enumerate() {
        // Baseline phase containing d.start.
        let bi = match baseline.partition_point(|b| b.end() <= d.start()) {
            i if i < baseline.len() && baseline[i].contains(d.start()) => i,
            _ => continue,
        };
        let b = baseline[bi];
        // Constraint 2: end at/after b.end and before the next
        // baseline phase's start.
        let next_start = baseline.get(bi + 1).map_or(u64::MAX, |n| n.start());
        if d.end() < b.end() || d.end() >= next_start {
            continue;
        }
        // Constraint 3: closest boundaries win.
        let distance = (d.start() - b.start()) + (d.end() - b.end());
        match best[bi] {
            Some((_, prev)) if prev <= distance => {}
            _ => best[bi] = Some((di, distance)),
        }
    }

    let pairs = best
        .iter()
        .enumerate()
        .filter_map(|(bi, slot)| slot.map(|(di, _)| (di, bi)))
        .collect();

    MatchOutcome {
        pairs,
        detected_count: detected.len(),
        baseline_count: baseline.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: u64, e: u64) -> PhaseInterval {
        PhaseInterval::new(s, e)
    }

    #[test]
    fn exact_match() {
        let out = match_phases(&[iv(10, 20)], &[iv(10, 20)]);
        assert_eq!(out.pairs, vec![(0, 0)]);
        assert_eq!(out.matched_boundaries(), 2);
        assert_eq!(out.unmatched_detected_boundaries(), 0);
    }

    #[test]
    fn late_detection_still_matches() {
        // Online detectors are late: start within the baseline phase,
        // end shortly after it — both constraints hold.
        let out = match_phases(&[iv(14, 23)], &[iv(10, 20), iv(40, 60)]);
        assert_eq!(out.pairs, vec![(0, 0)]);
    }

    #[test]
    fn start_before_baseline_fails_constraint_one() {
        let out = match_phases(&[iv(5, 25)], &[iv(10, 20)]);
        assert!(out.pairs.is_empty());
    }

    #[test]
    fn end_too_early_fails_constraint_two() {
        let out = match_phases(&[iv(12, 18)], &[iv(10, 20)]);
        assert!(out.pairs.is_empty());
    }

    #[test]
    fn end_reaching_next_phase_fails_constraint_two() {
        let out = match_phases(&[iv(12, 45)], &[iv(10, 20), iv(40, 60)]);
        assert!(out.pairs.is_empty());
    }

    #[test]
    fn closest_candidate_wins() {
        // Two detected phases satisfy the constraints for one baseline
        // phase; the closer one matches, the other counts as
        // unmatched.
        let out = match_phases(&[iv(11, 21), iv(15, 30)], &[iv(10, 20), iv(40, 60)]);
        assert_eq!(out.pairs, vec![(0, 0)]);
        assert_eq!(out.unmatched_detected_boundaries(), 2);
    }

    #[test]
    fn each_baseline_phase_matched_independently() {
        let out = match_phases(
            &[iv(10, 20), iv(45, 62), iv(90, 95)],
            &[iv(10, 20), iv(40, 60), iv(70, 80)],
        );
        assert_eq!(out.pairs, vec![(0, 0), (1, 1)]);
        assert_eq!(out.matched_boundaries(), 4);
        assert_eq!(out.unmatched_detected_boundaries(), 2);
    }

    #[test]
    fn last_phase_has_open_upper_bound() {
        let out = match_phases(&[iv(55, 500)], &[iv(10, 20), iv(50, 60)]);
        assert_eq!(out.pairs, vec![(0, 1)]);
    }

    #[test]
    fn empty_inputs() {
        let out = match_phases(&[], &[]);
        assert!(out.pairs.is_empty());
        assert_eq!(out.matched_boundaries(), 0);
        let out = match_phases(&[iv(0, 5)], &[]);
        assert_eq!(out.unmatched_detected_boundaries(), 2);
        let out = match_phases(&[], &[iv(0, 5)]);
        assert_eq!(out.baseline_count, 1);
    }

    #[test]
    fn detected_start_in_gap_matches_nothing() {
        let out = match_phases(&[iv(25, 65)], &[iv(10, 20), iv(60, 70)]);
        assert!(out.pairs.is_empty());
    }
}
