//! Similarity models: how window contents are reduced to a similarity
//! value in `[0, 1]`.

use core::fmt;

use crate::window::Windows;

/// The model policy of the framework (Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ModelPolicy {
    /// Unweighted (working-set) model with asymmetric weighting: the
    /// percentage of distinct CW elements that also occur in the TW.
    /// Biased toward the CW, which combines well with the adaptive
    /// trailing window.
    UnweightedSet,
    /// Weighted set model with symmetric weighting: the sum over
    /// elements of the minimum relative weight in each window.
    WeightedSet,
    /// Pearson correlation of the windows' site-count vectors, clamped
    /// to `[0, 1]` — the model used (per region) by Das et al.
    /// (CGO 2006), expressible as another instantiation of this
    /// framework (see Section 6 of the paper).
    Pearson,
}

impl ModelPolicy {
    /// The paper's two models, in its presentation order.
    pub const ALL: [ModelPolicy; 2] = [ModelPolicy::UnweightedSet, ModelPolicy::WeightedSet];

    /// All models, including the related-work Pearson model.
    pub const ALL_EXTENDED: [ModelPolicy; 3] = [
        ModelPolicy::UnweightedSet,
        ModelPolicy::WeightedSet,
        ModelPolicy::Pearson,
    ];

    /// Computes the similarity of the two windows under this model.
    ///
    /// Returns a value in `[0, 1]`; empty windows yield `0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use opd_core::{ModelPolicy, Windows};
    ///
    /// let mut w = Windows::new(2, 2);
    /// for site in [7, 7, 7, 7] {
    ///     w.push(site, false);
    /// }
    /// assert_eq!(ModelPolicy::UnweightedSet.similarity(&w), 1.0);
    /// assert_eq!(ModelPolicy::WeightedSet.similarity(&w), 1.0);
    /// ```
    #[must_use]
    pub fn similarity(self, windows: &Windows) -> f64 {
        match self {
            ModelPolicy::UnweightedSet => windows.unweighted_similarity(),
            ModelPolicy::WeightedSet => windows.weighted_similarity(),
            ModelPolicy::Pearson => windows.pearson_similarity(),
        }
    }
}

impl fmt::Display for ModelPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ModelPolicy::UnweightedSet => "unweighted",
            ModelPolicy::WeightedSet => "weighted",
            ModelPolicy::Pearson => "pearson",
        })
    }
}

/// The final arithmetic of every similarity model, shared by all
/// window kernels.
///
/// Each kernel reduces its window representation to the *same exact
/// integer quantities* (distinct counts, the weighted integer
/// min-sum, Pearson's moment sums) and hands them to these functions,
/// so similarity values are bit-identical across kernels by
/// construction: integer summation is order-independent, and the
/// floating-point tail here is the single shared code path.
pub(crate) mod exact {
    /// Unweighted similarity from the distinct-site counts.
    #[inline]
    pub(crate) fn unweighted(shared: u64, distinct_cw: u64) -> f64 {
        if distinct_cw == 0 {
            0.0
        } else {
            shared as f64 / distinct_cw as f64
        }
    }

    /// Weighted similarity from the exact integer min-sum
    /// `Σ_s min(cw_s · tw_len, tw_s · cw_len)`: dividing by
    /// `cw_len · tw_len` yields `Σ_s min(cw_s/cw_len, tw_s/tw_len)`
    /// with one rounding step instead of one per site.
    #[inline]
    pub(crate) fn weighted(min_sum: u64, cw_len: usize, tw_len: usize) -> f64 {
        min_sum as f64 / (cw_len as u64 * tw_len as u64) as f64
    }

    /// Pearson correlation (clamped to `[0, 1]`) from exact integer
    /// moment sums over the union of the windows' supports: `n` is
    /// the union size, `shared` the sites present in both windows.
    /// Sites outside the union contribute zero to every sum, so a
    /// kernel may accumulate over any superset of the union.
    #[inline]
    pub(crate) fn pearson(n: u64, sums: PearsonSums, shared: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let PearsonSums {
            sa,
            sb,
            saa,
            sbb,
            sab,
        } = sums;
        // Cauchy-Schwarz keeps both variances non-negative in exact
        // arithmetic; the covariance can be negative, hence i128.
        let var_a = u128::from(n) * u128::from(saa) - u128::from(sa) * u128::from(sa);
        let var_b = u128::from(n) * u128::from(sbb) - u128::from(sb) * u128::from(sb);
        if var_a == 0 || var_b == 0 {
            // Zero variance: undefined correlation. Full support
            // overlap is trivially similar, anything else is not.
            return if shared == n { 1.0 } else { 0.0 };
        }
        let cov =
            (u128::from(n) * u128::from(sab)) as i128 - (u128::from(sa) * u128::from(sb)) as i128;
        let r = cov as f64 / ((var_a as f64).sqrt() * (var_b as f64).sqrt());
        r.clamp(0.0, 1.0)
    }

    /// The five moment sums Pearson needs, accumulated as exact
    /// integers (`a` = CW count, `b` = TW count per site).
    #[derive(Debug, Clone, Copy, Default)]
    pub(crate) struct PearsonSums {
        pub sa: u64,
        pub sb: u64,
        pub saa: u64,
        pub sbb: u64,
        pub sab: u64,
    }

    impl PearsonSums {
        /// Folds one site's counts into the sums.
        #[inline]
        pub(crate) fn add(&mut self, a: u32, b: u32) {
            let (a, b) = (u64::from(a), u64::from(b));
            self.sa += a;
            self.sb += b;
            self.saa += a * a;
            self.sbb += b * b;
            self.sab += a * b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windows_with(tw: &[u32], cw: &[u32]) -> Windows {
        let mut w = Windows::new(cw.len(), tw.len());
        for &site in tw.iter().chain(cw) {
            w.push(site, false);
        }
        w
    }

    #[test]
    fn disjoint_windows_have_zero_similarity() {
        let w = windows_with(&[0, 1, 2], &[3, 4, 5]);
        for m in ModelPolicy::ALL {
            assert_eq!(m.similarity(&w), 0.0, "{m}");
        }
    }

    #[test]
    fn identical_windows_have_full_similarity() {
        let w = windows_with(&[1, 2, 3], &[1, 2, 3]);
        for m in ModelPolicy::ALL {
            assert!((m.similarity(&w) - 1.0).abs() < 1e-12, "{m}");
        }
    }

    #[test]
    fn models_diverge_on_frequency_shift() {
        // Same site sets, different frequency mix: the unweighted model
        // is blind to the shift, the weighted model is not. This is the
        // `_201_compress` situation from Figure 5 of the paper.
        let mut tw = vec![0; 90];
        tw.extend(vec![1; 10]);
        let mut cw = vec![0; 10];
        cw.extend(vec![1; 90]);
        let w = windows_with(&tw, &cw);
        assert!((ModelPolicy::UnweightedSet.similarity(&w) - 1.0).abs() < 1e-12);
        let weighted = ModelPolicy::WeightedSet.similarity(&w);
        assert!((weighted - 0.2).abs() < 1e-12, "{weighted}");
    }

    #[test]
    fn unweighted_is_asymmetric() {
        // Extra TW-only elements do not reduce unweighted similarity.
        let w = windows_with(&[0, 1, 2, 3, 4, 5], &[0, 1]);
        assert!((ModelPolicy::UnweightedSet.similarity(&w) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_penalizes_tw_only_mass() {
        // TW mass on elements missing from the CW is lost from the sum.
        let w = windows_with(&[0, 9, 9, 9], &[0, 0, 0, 0]);
        // min(1, 0.25) = 0.25.
        assert!((ModelPolicy::WeightedSet.similarity(&w) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn similarity_is_bounded() {
        let patterns: &[(&[u32], &[u32])] = &[
            (&[0], &[0]),
            (&[0, 1, 0, 1], &[1, 1, 1, 1]),
            (&[5, 5, 5], &[5, 6, 7]),
        ];
        for (tw, cw) in patterns {
            let w = windows_with(tw, cw);
            for m in ModelPolicy::ALL {
                let s = m.similarity(&w);
                assert!((0.0..=1.0).contains(&s), "{m}: {s}");
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ModelPolicy::UnweightedSet.to_string(), "unweighted");
        assert_eq!(ModelPolicy::WeightedSet.to_string(), "weighted");
        assert_eq!(ModelPolicy::Pearson.to_string(), "pearson");
    }

    #[test]
    fn pearson_basics() {
        // Identical count vectors correlate perfectly.
        let w = windows_with(&[0, 1, 1, 2], &[0, 1, 1, 2]);
        assert!((ModelPolicy::Pearson.similarity(&w) - 1.0).abs() < 1e-9);
        // Disjoint supports anti-correlate; clamped to 0.
        let w = windows_with(&[0, 0, 1], &[2, 3, 3]);
        assert_eq!(ModelPolicy::Pearson.similarity(&w), 0.0);
    }

    #[test]
    fn pearson_scale_invariant() {
        // Pearson looks at the shape of the count vector, not its
        // magnitude: TW twice as long with the same mix is a perfect
        // match.
        let mut tw = Vec::new();
        for _ in 0..2 {
            tw.extend([0, 0, 0, 1, 2]);
        }
        let w = windows_with(&tw, &[0, 0, 0, 1, 2]);
        assert!((ModelPolicy::Pearson.similarity(&w) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_zero_variance_cases() {
        // Same single site on both sides: zero variance, full support
        // overlap -> 1.0.
        let w = windows_with(&[5, 5], &[5, 5]);
        assert_eq!(ModelPolicy::Pearson.similarity(&w), 1.0);
        // Empty windows -> 0.
        let w = Windows::new(3, 3);
        assert_eq!(ModelPolicy::Pearson.similarity(&w), 0.0);
    }

    #[test]
    fn extended_list_contains_all_models() {
        assert_eq!(ModelPolicy::ALL.len(), 2);
        assert_eq!(ModelPolicy::ALL_EXTENDED.len(), 3);
    }
}
