//! Phase prediction on top of recurring-phase detection.
//!
//! The paper positions itself against the prediction literature
//! (Sherwood et al., Duesterwald et al. — Section 6) and notes that
//! recognizing recurring phases "would allow a dynamic optimization
//! system to record the efficacy of a phase-based optimization at the
//! end of the phase and determine whether to employ the same
//! optimization when the phase reoccurs" (Section 7). One step
//! further — *predicting* which phase comes next — lets a client
//! prepare its optimization before the phase begins.
//!
//! [`PhasePredictor`] learns online from the sequence of phase classes
//! a [`RecurringPhaseDetector`](crate::RecurringPhaseDetector) emits:
//! a first-order Markov table predicts the next class, and a
//! per-class running average predicts its length. Accuracy is
//! tracked so clients can gate on it (only pre-optimize when the
//! predictor has been right often enough).

use std::collections::HashMap;

use crate::recur::PhaseId;

/// A prediction for the next phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// The predicted phase class.
    pub class: PhaseId,
    /// The predicted length in profile elements (the class's running
    /// average).
    pub length: u64,
    /// The predictor's empirical confidence: the historical frequency
    /// of this transition out of the current class, in `[0, 1]`.
    pub confidence: f64,
}

/// An online last-successor / first-order-Markov phase predictor.
///
/// # Examples
///
/// ```
/// use opd_core::{PhaseId, PhasePredictor};
///
/// let mut p = PhasePredictor::new();
/// // Feed an alternating history: A B A B A ...
/// let ids: Vec<PhaseId> = Vec::new();
/// # drop(ids);
/// // (Classes come from a RecurringPhaseDetector in real use.)
/// # let a = opd_core::PhaseRegistry::new(0.5).unwrap();
/// # drop(a);
/// assert_eq!(p.predictions_made(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhasePredictor {
    /// transitions[(from, to)] = count.
    transitions: HashMap<(PhaseId, PhaseId), u64>,
    /// Total outgoing transitions per class.
    outgoing: HashMap<PhaseId, u64>,
    /// Per-class (total length, occurrences) for length prediction.
    lengths: HashMap<PhaseId, (u64, u64)>,
    last: Option<PhaseId>,
    predictions: u64,
    correct: u64,
    pending: Option<PhaseId>,
}

impl PhasePredictor {
    /// Creates an empty predictor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed phase occurrence (its class and length),
    /// scoring any outstanding prediction and updating the model.
    pub fn observe(&mut self, class: PhaseId, length: u64) {
        if let Some(predicted) = self.pending.take() {
            self.predictions += 1;
            if predicted == class {
                self.correct += 1;
            }
        }
        if let Some(prev) = self.last {
            *self.transitions.entry((prev, class)).or_insert(0) += 1;
            *self.outgoing.entry(prev).or_insert(0) += 1;
        }
        let entry = self.lengths.entry(class).or_insert((0, 0));
        entry.0 += length;
        entry.1 += 1;
        self.last = Some(class);
    }

    /// Predicts the phase that will follow the most recently observed
    /// one, or `None` before any transition out of the current class
    /// has been seen. The prediction is remembered and scored by the
    /// next [`observe`](Self::observe).
    pub fn predict_next(&mut self) -> Option<Prediction> {
        let from = self.last?;
        let (best_to, best_count) = self
            .transitions
            .iter()
            .filter(|((f, _), _)| *f == from)
            .map(|((_, t), &c)| (*t, c))
            .max_by_key(|&(_, c)| c)?;
        let total = self.outgoing.get(&from).copied().unwrap_or(0);
        let confidence = if total == 0 {
            0.0
        } else {
            best_count as f64 / total as f64
        };
        let length = self
            .lengths
            .get(&best_to)
            .map_or(0, |&(sum, n)| sum.checked_div(n).unwrap_or(0));
        self.pending = Some(best_to);
        Some(Prediction {
            class: best_to,
            length,
            confidence,
        })
    }

    /// Number of scored predictions.
    #[must_use]
    pub fn predictions_made(&self) -> u64 {
        self.predictions
    }

    /// Fraction of scored predictions that were correct (0 before any
    /// prediction was scored).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }

    /// Number of distinct phase classes seen.
    #[must_use]
    pub fn classes_seen(&self) -> usize {
        self.lengths.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recur::PhaseRegistry;
    use opd_trace::{MethodId, ProfileElement};

    /// Mint dense phase ids through the public registry API.
    fn ids(n: u32) -> Vec<PhaseId> {
        let mut reg = PhaseRegistry::new(0.99).unwrap();
        (0..n)
            .map(|i| {
                let sig = (0..8)
                    .map(|j| ProfileElement::new(MethodId::new(i), j, true))
                    .collect();
                reg.classify(sig).0
            })
            .collect()
    }

    #[test]
    fn learns_alternation() {
        let ab = ids(2);
        let (a, b) = (ab[0], ab[1]);
        let mut p = PhasePredictor::new();
        for _ in 0..5 {
            p.observe(a, 100);
            p.observe(b, 900);
        }
        // After seeing A, predict B (and B's average length).
        p.observe(a, 100);
        let pred = p.predict_next().unwrap();
        assert_eq!(pred.class, b);
        assert_eq!(pred.length, 900);
        assert!((pred.confidence - 1.0).abs() < 1e-12);
        assert_eq!(p.classes_seen(), 2);
    }

    #[test]
    fn accuracy_is_tracked() {
        let ab = ids(2);
        let (a, b) = (ab[0], ab[1]);
        let mut p = PhasePredictor::new();
        // Train on alternation.
        for _ in 0..4 {
            p.observe(a, 10);
            p.observe(b, 10);
        }
        // Predict-observe loop: alternation continues, predictions hit.
        for i in 0..6 {
            let _ = p.predict_next().unwrap();
            p.observe(if i % 2 == 0 { a } else { b }, 10);
        }
        assert_eq!(p.predictions_made(), 6);
        assert!(p.accuracy() > 0.99, "{}", p.accuracy());
        // Break the pattern: accuracy drops.
        let _ = p.predict_next().unwrap();
        p.observe(b, 10); // predictor expected a after b? (pattern broken)
        assert!(p.accuracy() < 1.0);
    }

    #[test]
    fn no_prediction_without_history() {
        let mut p = PhasePredictor::new();
        assert!(p.predict_next().is_none());
        let a = ids(1)[0];
        p.observe(a, 5);
        // One class, no outgoing transition yet.
        assert!(p.predict_next().is_none());
        assert_eq!(p.accuracy(), 0.0);
    }

    #[test]
    fn majority_transition_wins() {
        let abc = ids(3);
        let (a, b, c) = (abc[0], abc[1], abc[2]);
        let mut p = PhasePredictor::new();
        // a -> b twice, a -> c once.
        p.observe(a, 1);
        p.observe(b, 1);
        p.observe(a, 1);
        p.observe(c, 1);
        p.observe(a, 1);
        p.observe(b, 1);
        p.observe(a, 1);
        let pred = p.predict_next().unwrap();
        assert_eq!(pred.class, b);
        assert!((pred.confidence - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_reflects_distribution() {
        let ab = ids(2);
        let (a, b) = (ab[0], ab[1]);
        let mut p = PhasePredictor::new();
        // a->a, a->b equally often: confidence 0.5 either way.
        p.observe(a, 1);
        p.observe(a, 1);
        p.observe(a, 1);
        p.observe(b, 1);
        p.observe(a, 1);
        let pred = p.predict_next().unwrap();
        assert!((pred.confidence - 0.5).abs() < 0.34, "{pred:?}");
    }
}
