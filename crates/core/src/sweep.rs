//! The single-pass shared-window sweep engine.
//!
//! A parameter sweep runs many [`DetectorConfig`]s over one interned
//! trace. The expensive part of each run is *window maintenance* —
//! deque pushes, eviction, multiset counts, distinct-set upkeep in
//! [`Windows::push`] — and it depends only on the window **shape**
//! `(cw, tw, skip)`, never on the model, analyzer, or anchor policy.
//! The engine therefore groups a config grid by shape and, per
//! Constant-TW group, makes **one** scan of the trace: the shared
//! `Windows` advance once per step while each member config evaluates
//! only its cheap residue (memoized model similarity, analyzer
//! judgment, anchor bookkeeping, phase boundaries).
//!
//! # Why sharing is exact (shape-group invariants)
//!
//! With a Constant trailing window and `skip ≤ cw`, window evolution
//! is a pure FIFO over the element stream: once `cw + tw` elements
//! have been consumed, the buffer holds *exactly the last `cw + tw`
//! elements*, independent of any per-config state. A private detector
//! differs from that saturated FIFO in exactly one way: at each phase
//! end it flushes its windows, keeping the last `skip` elements
//! ([`Windows::clear_keep_last`]). But a flushed detector is not
//! *warm* again until its buffer refills to `cw + tw` — which takes
//! `cw + tw − skip` further elements — and a non-warm detector reads
//! nothing from its windows (it reports `T` unconditionally). Once
//! refilled, its buffer again holds exactly the last `cw + tw` stream
//! elements at the same global offset, i.e. it is bit-identical to
//! the never-flushed shared window. So the engine tracks, per member,
//! only the element count at which the member becomes warm again
//! (`warm_from`), and the flush itself never has to happen.
//!
//! The `skip ≤ cw` restriction exists because [`Windows::push`]
//! transfers at most one element per push from CW to TW: re-seeding
//! the CW with `skip > cw` elements would leave the CW over capacity
//! while the TW refills, so the private buffer would transiently hold
//! *more* than `cw + tw` elements at warm-up — a state the shared
//! window never visits. Such configs (rare: `full_grid` uses
//! `skip ∈ {1, cw/10, cw}`) simply run on the private path.
//!
//! **Adaptive-TW configs cannot share windows at all**: at each phase
//! start they mutate the windows ([`Windows::anchor_and_resize`]) and
//! while in phase they suppress TW eviction, so their window contents
//! depend on their own detection history — each config's windows
//! evolve differently even for identical shapes. They keep private
//! windows (with scratch reuse) but run through the same engine and
//! its work distribution.
//!
//! Mixed-model groups are also exact: the shared windows enable
//! weighted min-sum tracking iff some member uses the weighted model.
//! Members that don't never read `min_sum`, and members that do see
//! the same integer fast path a private tracking window would use.
//!
//! # Example
//!
//! ```
//! use opd_core::{DetectorConfig, InternedTrace, SweepEngine};
//! use opd_trace::{MethodId, ProfileElement};
//!
//! let elements: Vec<ProfileElement> = (0..600)
//!     .map(|i| ProfileElement::new(MethodId::new(0), i / 150, true))
//!     .collect();
//! let trace = InternedTrace::from_elements(elements.iter().copied());
//! // Two configs sharing one window shape: one shared scan.
//! let configs = vec![
//!     DetectorConfig::builder().current_window(40).build()?,
//!     DetectorConfig::builder()
//!         .current_window(40)
//!         .model(opd_core::ModelPolicy::WeightedSet)
//!         .build()?,
//! ];
//! let engine = SweepEngine::new(&configs);
//! assert_eq!(engine.units().len(), 1);
//! assert_eq!(engine.total_scans(), 1);
//! let phases = engine.run_all(&trace);
//! assert_eq!(phases.len(), configs.len());
//! # Ok::<(), opd_core::ConfigError>(())
//! ```

use std::collections::HashMap;

use opd_trace::PhaseState;

use crate::analyzer::Analyzer;
use crate::boundary::DetectedPhase;
use crate::config::{ConfigShape, DetectorConfig};
use crate::detector::PhaseDetector;
use crate::intern::InternedTrace;
use crate::model::ModelPolicy;
use crate::window::Windows;

/// Error from the fallible sweep entry points
/// ([`SweepEngine::try_run_unit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepError {
    /// The requested unit index does not exist in this plan.
    UnitOutOfRange {
        /// The index the caller asked for.
        unit_index: usize,
        /// How many units the plan actually has.
        units: usize,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SweepError::UnitOutOfRange { unit_index, units } => write!(
                f,
                "sweep unit index {unit_index} out of range: plan has {units} unit(s)"
            ),
        }
    }
}

impl std::error::Error for SweepError {}

/// One schedulable piece of a sweep: either a shape group that scans
/// the trace once for all members, or a single private-window config.
#[derive(Debug, Clone)]
pub struct SweepUnit {
    config_indices: Vec<usize>,
    shared: bool,
}

impl SweepUnit {
    /// Indices (into the engine's config slice) this unit covers.
    #[must_use]
    pub fn config_indices(&self) -> &[usize] {
        &self.config_indices
    }

    /// `true` if this unit advances one shared window for all members.
    #[must_use]
    pub fn is_shared(&self) -> bool {
        self.shared
    }

    /// Trace scans this unit performs (1 for shared groups).
    #[must_use]
    pub fn scans(&self) -> usize {
        if self.shared {
            1
        } else {
            self.config_indices.len()
        }
    }
}

/// Per-thread reusable state for private-path runs: one
/// [`PhaseDetector`] whose window allocations (site tables, deque,
/// distinct lists) are sized once per trace and reused across configs.
#[derive(Debug, Default)]
pub struct SweepScratch {
    detector: Option<PhaseDetector>,
    site_capacity: usize,
}

impl SweepScratch {
    /// An empty scratch; allocations build up on first use.
    #[must_use]
    pub fn new() -> Self {
        SweepScratch::default()
    }

    /// A scratch whose window tables are pre-sized for `n_sites`
    /// distinct elements (typically a static alphabet bound from
    /// `opd-analyze`), so runs over traces with at most that many
    /// sites never grow them mid-scan.
    #[must_use]
    pub fn with_site_capacity(n_sites: usize) -> Self {
        SweepScratch {
            detector: None,
            site_capacity: n_sites,
        }
    }

    fn detector_for(&mut self, config: DetectorConfig) -> &mut PhaseDetector {
        let detector = match &mut self.detector {
            Some(d) => {
                d.reconfigure(config);
                d
            }
            slot @ None => slot.insert(PhaseDetector::new(config)),
        };
        detector.reserve_sites(self.site_capacity);
        detector
    }
}

/// A planned sweep of one config grid: shape groups for Constant-TW
/// configs, private units for the rest (see module docs).
///
/// The engine is scan-order deterministic: results depend only on the
/// configs and the trace, never on unit scheduling, so callers may run
/// units across threads (each unit's results carry config indices).
#[derive(Debug)]
pub struct SweepEngine<'a> {
    configs: &'a [DetectorConfig],
    units: Vec<SweepUnit>,
}

impl<'a> SweepEngine<'a> {
    /// Plans a sweep over `configs`: groups shareable configs by
    /// window shape (first-seen order) and gives every other config a
    /// private unit.
    #[must_use]
    pub fn new(configs: &'a [DetectorConfig]) -> Self {
        let mut group_of: HashMap<ConfigShape, usize> = HashMap::new();
        let mut units: Vec<SweepUnit> = Vec::new();
        for (i, config) in configs.iter().enumerate() {
            if config.shares_windows() {
                let unit = *group_of.entry(config.shape()).or_insert_with(|| {
                    units.push(SweepUnit {
                        config_indices: Vec::new(),
                        shared: true,
                    });
                    units.len() - 1
                });
                units[unit].config_indices.push(i);
            } else {
                units.push(SweepUnit {
                    config_indices: vec![i],
                    shared: false,
                });
            }
        }
        SweepEngine { configs, units }
    }

    /// The configs this engine plans over.
    #[must_use]
    pub fn configs(&self) -> &'a [DetectorConfig] {
        self.configs
    }

    /// The planned units, in deterministic planning order.
    #[must_use]
    pub fn units(&self) -> &[SweepUnit] {
        &self.units
    }

    /// Total trace scans the plan performs; a naive sweep performs
    /// one per config.
    #[must_use]
    pub fn total_scans(&self) -> usize {
        self.units.iter().map(SweepUnit::scans).sum()
    }

    /// Runs one planned unit over `trace`, returning `(config index,
    /// detected phases)` per member. `scratch` carries reusable
    /// allocations across calls on the same thread.
    ///
    /// # Panics
    ///
    /// Panics if `unit_index` is out of range; [`try_run_unit`]
    /// (Self::try_run_unit) is the non-panicking form.
    #[must_use]
    pub fn run_unit(
        &self,
        unit_index: usize,
        trace: &InternedTrace,
        scratch: &mut SweepScratch,
    ) -> Vec<(usize, Vec<DetectedPhase>)> {
        match self.try_run_unit(unit_index, trace, scratch) {
            Ok(results) => results,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs one planned unit over `trace`, returning
    /// [`SweepError::UnitOutOfRange`] instead of panicking when
    /// `unit_index` does not name a planned unit — the entry point
    /// for callers driving the engine from external indices
    /// (checkpoint resume, work queues).
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::UnitOutOfRange`] if `unit_index >=
    /// self.units().len()`.
    pub fn try_run_unit(
        &self,
        unit_index: usize,
        trace: &InternedTrace,
        scratch: &mut SweepScratch,
    ) -> Result<Vec<(usize, Vec<DetectedPhase>)>, SweepError> {
        let unit = self
            .units
            .get(unit_index)
            .ok_or(SweepError::UnitOutOfRange {
                unit_index,
                units: self.units.len(),
            })?;
        Ok(if unit.shared {
            run_shared_group(
                self.configs,
                &unit.config_indices,
                trace,
                scratch.site_capacity,
            )
        } else {
            unit.config_indices
                .iter()
                .map(|&i| {
                    let detector = scratch.detector_for(self.configs[i]);
                    let _ = detector.run_interned_phases_only(trace);
                    (i, detector.take_phases())
                })
                .collect()
        })
    }

    /// Runs the whole plan sequentially, returning phases in config
    /// order.
    #[must_use]
    pub fn run_all(&self, trace: &InternedTrace) -> Vec<Vec<DetectedPhase>> {
        let mut scratch = SweepScratch::new();
        let mut out: Vec<Vec<DetectedPhase>> = vec![Vec::new(); self.configs.len()];
        for unit_index in 0..self.units.len() {
            for (config_index, phases) in self.run_unit(unit_index, trace, &mut scratch) {
                out[config_index] = phases;
            }
        }
        out
    }
}

/// The instrumented sweep entry point, available with the `obs`
/// feature. Metering duplicates the unmetered scan loops (guarded by
/// the observer-equivalence suite) so [`SweepEngine::run_unit`] stays
/// untouched and overhead-free.
#[cfg(feature = "obs")]
impl SweepEngine<'_> {
    /// [`run_unit`](Self::run_unit) plus accounting: accumulates what
    /// the unit actually did (scans, steps, judged steps, comparison
    /// ops, elements) into `metrics`, for cross-checking against the
    /// static cost model's bounds. Results are identical to
    /// `run_unit`'s.
    ///
    /// # Panics
    ///
    /// Panics if `unit_index` is out of range.
    #[must_use]
    pub fn run_unit_metered(
        &self,
        unit_index: usize,
        trace: &InternedTrace,
        scratch: &mut SweepScratch,
        metrics: &mut opd_obs::UnitMetrics,
    ) -> Vec<(usize, Vec<DetectedPhase>)> {
        let unit = &self.units[unit_index];
        if unit.shared {
            run_shared_group_metered(
                self.configs,
                &unit.config_indices,
                trace,
                scratch.site_capacity,
                metrics,
            )
        } else {
            unit.config_indices
                .iter()
                .map(|&i| {
                    let detector = scratch.detector_for(self.configs[i]);
                    let mut meter = opd_obs::MeterObserver::new();
                    let _ = detector.run_interned_phases_observed(trace, &mut meter);
                    metrics.scans += 1;
                    metrics.elements += trace.len() as u64;
                    metrics.merge(&meter.metrics);
                    (i, detector.take_phases())
                })
                .collect()
        }
    }
}

fn model_slot(model: ModelPolicy) -> usize {
    match model {
        ModelPolicy::UnweightedSet => 0,
        ModelPolicy::WeightedSet => 1,
        ModelPolicy::Pearson => 2,
    }
}

/// A member config's cheap residue state within a shared scan.
struct Member {
    config_index: usize,
    config: DetectorConfig,
    analyzer: Analyzer,
    state: PhaseState,
    /// Element count from which this member's (virtual) private
    /// windows are full again after its last flush; warm iff the
    /// shared windows are warm and `consumed >= warm_from`.
    warm_from: u64,
    phases: Vec<DetectedPhase>,
}

/// One scan of `trace` evaluating every member of a same-shape
/// Constant-TW group against shared windows. See the module docs for
/// the exactness argument.
fn run_shared_group(
    configs: &[DetectorConfig],
    member_indices: &[usize],
    trace: &InternedTrace,
    site_capacity: usize,
) -> Vec<(usize, Vec<DetectedPhase>)> {
    let first = &configs[member_indices[0]];
    let (cw, tw, skip) = (
        first.current_window(),
        first.trailing_window(),
        first.skip_factor(),
    );
    // Shared-path invariants: the planner only groups shareable
    // configs of identical shape, and sharing is exact only when a
    // flush's kept elements fit in the CW (`skip <= cw`, module docs).
    debug_assert!(skip >= 1 && cw >= 1 && tw >= 1, "windows have capacity");
    debug_assert!(skip <= cw, "shared scan requires skip <= cw");
    debug_assert!(
        member_indices.iter().all(|&i| {
            configs[i].shares_windows()
                && configs[i].current_window() == cw
                && configs[i].trailing_window() == tw
                && configs[i].skip_factor() == skip
        }),
        "shared group members must be shareable and same-shape"
    );
    // After a flush keeps `skip` elements, a private window is full
    // (warm) again `cw + tw - skip` elements later.
    let refill = (cw + tw - skip) as u64;
    let track = member_indices
        .iter()
        .any(|&i| configs[i].model() == ModelPolicy::WeightedSet);
    let mut windows = Windows::with_weighted_tracking(cw, tw, track);
    windows.ensure_sites((trace.distinct_count() as usize).max(site_capacity));

    let mut members: Vec<Member> = member_indices
        .iter()
        .map(|&i| Member {
            config_index: i,
            config: configs[i],
            analyzer: Analyzer::new(configs[i].analyzer()),
            state: PhaseState::Transition,
            warm_from: 0,
            phases: Vec::new(),
        })
        .collect();

    let mut consumed = 0u64;
    // Per-step memo of each distinct model's similarity against the
    // shared windows: computed once per step, judged by every member.
    let mut sims = [0.0f64; 3];
    for chunk in trace.ids().chunks(skip) {
        for &id in chunk {
            windows.push(id, false);
        }
        let step_start = consumed;
        consumed += chunk.len() as u64;
        let shared_warm = windows.is_warm();
        let mut have = [false; 3];
        for m in &mut members {
            let (new_state, sim) = if shared_warm && consumed >= m.warm_from {
                let slot = model_slot(m.config.model());
                if !have[slot] {
                    sims[slot] = m.config.model().similarity(&windows);
                    have[slot] = true;
                }
                (m.analyzer.judge(sims[slot]), sims[slot])
            } else {
                (PhaseState::Transition, 0.0)
            };
            match (m.state, new_state) {
                (PhaseState::Transition, PhaseState::Phase) => {
                    // Phase start: anchor against the shared windows
                    // (Constant TW never resizes) and reset stats.
                    let anchor_idx = windows.anchor_index(m.config.anchor());
                    m.analyzer.reset();
                    m.phases.push(DetectedPhase {
                        start: step_start,
                        anchored_start: windows.offset_of_index(anchor_idx),
                        end: None,
                    });
                }
                (PhaseState::Phase, PhaseState::Transition) => {
                    // Phase end: a private detector would flush its
                    // windows here; tracking the refill point is
                    // equivalent and keeps the scan shared.
                    m.warm_from = consumed + refill;
                    if let Some(open) = m.phases.last_mut() {
                        open.end = Some(step_start);
                    }
                }
                (PhaseState::Phase, PhaseState::Phase) => {
                    m.analyzer.update(sim);
                }
                (PhaseState::Transition, PhaseState::Transition) => {}
            }
            m.state = new_state;
        }
    }
    members
        .into_iter()
        .map(|mut m| {
            if let Some(open) = m.phases.last_mut() {
                if open.end.is_none() {
                    open.end = Some(consumed);
                }
            }
            (m.config_index, m.phases)
        })
        .collect()
}

/// [`run_shared_group`] plus accounting — a line-for-line mirror of
/// the unmetered scan (the observer-equivalence suite asserts matching
/// results; keep any change to the scan loop mirrored here). A fresh
/// model-slot computation charges the full runtime comparison cost;
/// every further member judging the memoized similarity charges only
/// the fixed judge overhead — so shared-scan comparison ops are always
/// at or below the static per-member bound.
#[cfg(feature = "obs")]
fn run_shared_group_metered(
    configs: &[DetectorConfig],
    member_indices: &[usize],
    trace: &InternedTrace,
    site_capacity: usize,
    metrics: &mut opd_obs::UnitMetrics,
) -> Vec<(usize, Vec<DetectedPhase>)> {
    use crate::detector::runtime_compare_ops;

    let first = &configs[member_indices[0]];
    let (cw, tw, skip) = (
        first.current_window(),
        first.trailing_window(),
        first.skip_factor(),
    );
    let refill = (cw + tw - skip) as u64;
    let track = member_indices
        .iter()
        .any(|&i| configs[i].model() == ModelPolicy::WeightedSet);
    let mut windows = Windows::with_weighted_tracking(cw, tw, track);
    windows.ensure_sites((trace.distinct_count() as usize).max(site_capacity));

    let mut members: Vec<Member> = member_indices
        .iter()
        .map(|&i| Member {
            config_index: i,
            config: configs[i],
            analyzer: Analyzer::new(configs[i].analyzer()),
            state: PhaseState::Transition,
            warm_from: 0,
            phases: Vec::new(),
        })
        .collect();

    metrics.scans += 1;
    metrics.elements += trace.len() as u64;
    let mut consumed = 0u64;
    let mut sims = [0.0f64; 3];
    for chunk in trace.ids().chunks(skip) {
        for &id in chunk {
            windows.push(id, false);
        }
        let step_start = consumed;
        consumed += chunk.len() as u64;
        metrics.steps += 1;
        let shared_warm = windows.is_warm();
        let mut have = [false; 3];
        for m in &mut members {
            let (new_state, sim) = if shared_warm && consumed >= m.warm_from {
                let slot = model_slot(m.config.model());
                if have[slot] {
                    // Memoized similarity: this member pays only the
                    // analyzer's judge overhead.
                    metrics.compare_ops += 2;
                } else {
                    sims[slot] = m.config.model().similarity(&windows);
                    have[slot] = true;
                    metrics.compare_ops += runtime_compare_ops(m.config.model(), &windows);
                }
                metrics.judged_steps += 1;
                (m.analyzer.judge(sims[slot]), sims[slot])
            } else {
                (PhaseState::Transition, 0.0)
            };
            match (m.state, new_state) {
                (PhaseState::Transition, PhaseState::Phase) => {
                    let anchor_idx = windows.anchor_index(m.config.anchor());
                    m.analyzer.reset();
                    m.phases.push(DetectedPhase {
                        start: step_start,
                        anchored_start: windows.offset_of_index(anchor_idx),
                        end: None,
                    });
                }
                (PhaseState::Phase, PhaseState::Transition) => {
                    m.warm_from = consumed + refill;
                    if let Some(open) = m.phases.last_mut() {
                        open.end = Some(step_start);
                    }
                }
                (PhaseState::Phase, PhaseState::Phase) => {
                    m.analyzer.update(sim);
                }
                (PhaseState::Transition, PhaseState::Transition) => {}
            }
            m.state = new_state;
        }
    }
    members
        .into_iter()
        .map(|mut m| {
            if let Some(open) = m.phases.last_mut() {
                if open.end.is_none() {
                    open.end = Some(consumed);
                }
            }
            (m.config_index, m.phases)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::AnalyzerPolicy;
    use crate::boundary::{anchored_intervals, detected_intervals};
    use crate::window::{AnchorPolicy, ResizePolicy, TwPolicy};
    use opd_trace::{MethodId, ProfileElement};

    fn block_trace(blocks: u32, block_len: u32, sites_per_block: u32) -> InternedTrace {
        let elements = (0..blocks).flat_map(move |b| {
            (0..block_len).map(move |i| {
                ProfileElement::new(
                    MethodId::new(0),
                    b * sites_per_block + i % sites_per_block,
                    true,
                )
            })
        });
        InternedTrace::from_elements(elements)
    }

    fn reference(config: DetectorConfig, trace: &InternedTrace) -> Vec<DetectedPhase> {
        let mut d = PhaseDetector::new(config);
        let _ = d.run_interned(trace);
        d.take_phases()
    }

    fn mixed_grid() -> Vec<DetectorConfig> {
        let mut configs = Vec::new();
        for cw in [8usize, 16] {
            for skip in [1usize, 3, 8] {
                for model in ModelPolicy::ALL_EXTENDED {
                    for analyzer in [
                        AnalyzerPolicy::Threshold(0.5),
                        AnalyzerPolicy::Threshold(0.9),
                        AnalyzerPolicy::Average { delta: 0.2 },
                    ] {
                        configs.push(
                            DetectorConfig::builder()
                                .current_window(cw)
                                .trailing_window(cw)
                                .skip_factor(skip)
                                .model(model)
                                .analyzer(analyzer)
                                .build()
                                .unwrap(),
                        );
                    }
                }
            }
        }
        // Adaptive configs: private path through the same engine.
        for anchor in [AnchorPolicy::RightmostNoisy, AnchorPolicy::LeftmostNonNoisy] {
            for resize in [ResizePolicy::Slide, ResizePolicy::Move] {
                configs.push(
                    DetectorConfig::builder()
                        .current_window(12)
                        .tw_policy(TwPolicy::Adaptive)
                        .anchor(anchor)
                        .resize(resize)
                        .build()
                        .unwrap(),
                );
            }
        }
        // A skip > cw config: shareable() must route it privately.
        configs.push(
            DetectorConfig::builder()
                .current_window(4)
                .trailing_window(8)
                .skip_factor(9)
                .build()
                .unwrap(),
        );
        configs
    }

    #[test]
    fn plan_groups_by_shape() {
        let configs = mixed_grid();
        let engine = SweepEngine::new(&configs);
        // 2 cw × 3 skip shared groups + 4 adaptive + 1 skip>cw.
        assert_eq!(engine.units().len(), 6 + 5);
        assert_eq!(engine.total_scans(), 6 + 5);
        assert!(engine.total_scans() < configs.len());
        let covered: usize = engine
            .units()
            .iter()
            .map(|u| u.config_indices().len())
            .sum();
        assert_eq!(covered, configs.len());
        for unit in engine.units() {
            assert!(unit.scans() > 0);
            if unit.is_shared() {
                let shape = configs[unit.config_indices()[0]].shape();
                for &i in unit.config_indices() {
                    assert_eq!(configs[i].shape(), shape);
                    assert!(configs[i].shares_windows());
                }
            }
        }
    }

    #[test]
    fn engine_matches_sequential_detectors_exactly() {
        let configs = mixed_grid();
        let engine = SweepEngine::new(&configs);
        for trace in [
            block_trace(3, 120, 4),
            block_trace(1, 50, 2),
            block_trace(5, 37, 6),
        ] {
            let all = engine.run_all(&trace);
            for (i, config) in configs.iter().enumerate() {
                let expected = reference(*config, &trace);
                assert_eq!(all[i], expected, "config {i}: {config:?}");
                // Interval views are derived data, but compare them
                // too: they are what sweeps ultimately score.
                let total = trace.len() as u64;
                assert_eq!(
                    detected_intervals(&all[i], total),
                    detected_intervals(&expected, total)
                );
                assert_eq!(
                    anchored_intervals(&all[i], total),
                    anchored_intervals(&expected, total)
                );
            }
        }
    }

    #[test]
    fn engine_handles_empty_and_short_traces() {
        let configs = vec![DetectorConfig::builder().current_window(8).build().unwrap()];
        let engine = SweepEngine::new(&configs);
        let empty = InternedTrace::from_elements(std::iter::empty());
        assert_eq!(engine.run_all(&empty), vec![Vec::new()]);
        // Shorter than cw + tw: never warm, no phases.
        let short = block_trace(1, 10, 2);
        assert_eq!(engine.run_all(&short), vec![Vec::new()]);
    }

    #[test]
    fn out_of_range_unit_is_a_typed_error() {
        let configs = vec![DetectorConfig::builder().current_window(8).build().unwrap()];
        let engine = SweepEngine::new(&configs);
        let trace = block_trace(1, 40, 2);
        let mut scratch = SweepScratch::new();
        let err = engine.try_run_unit(7, &trace, &mut scratch).unwrap_err();
        assert_eq!(
            err,
            SweepError::UnitOutOfRange {
                unit_index: 7,
                units: 1
            }
        );
        assert!(err.to_string().contains("out of range"));
        // In-range requests still succeed through the fallible path.
        let ok = engine.try_run_unit(0, &trace, &mut scratch).unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn metered_units_match_unmetered_results() {
        let configs = mixed_grid();
        let engine = SweepEngine::new(&configs);
        let trace = block_trace(3, 120, 4);
        let mut scratch = SweepScratch::new();
        let mut metrics = opd_obs::UnitMetrics::new();
        for unit_index in 0..engine.units().len() {
            let plain = engine.run_unit(unit_index, &trace, &mut scratch);
            let metered = engine.run_unit_metered(unit_index, &trace, &mut scratch, &mut metrics);
            assert_eq!(plain, metered, "unit {unit_index}");
        }
        assert_eq!(metrics.scans as usize, engine.total_scans());
        assert_eq!(
            metrics.elements,
            engine.total_scans() as u64 * trace.len() as u64
        );
        assert!(metrics.judged_steps <= metrics.steps * configs.len() as u64);
        assert!(metrics.compare_ops >= 2 * metrics.judged_steps);
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_detectors() {
        let trace = block_trace(4, 90, 5);
        let mut scratch = SweepScratch::new();
        let configs: Vec<DetectorConfig> = [
            (8usize, TwPolicy::Adaptive),
            (16, TwPolicy::Adaptive),
            (8, TwPolicy::Constant),
        ]
        .iter()
        .map(|&(cw, twp)| {
            DetectorConfig::builder()
                .current_window(cw)
                .tw_policy(twp)
                .build()
                .unwrap()
        })
        .collect();
        for config in configs {
            let d = scratch.detector_for(config);
            let _ = d.run_interned_phases_only(&trace);
            let reused = d.take_phases();
            assert_eq!(reused, reference(config, &trace), "{config:?}");
        }
    }
}
