//! The single-pass shared-window sweep engine.
//!
//! A parameter sweep runs many [`DetectorConfig`]s over one interned
//! trace. The expensive part of each run is *window maintenance* —
//! deque pushes, eviction, multiset counts, distinct-set upkeep in
//! [`Windows::push`] — and it depends only on the window **shape**
//! `(cw, tw, skip)`, never on the model, analyzer, or anchor policy.
//! The engine therefore groups a config grid by shape and, per
//! Constant-TW group, makes **one** scan of the trace: the shared
//! `Windows` advance once per step while each member config evaluates
//! only its cheap residue (memoized model similarity, analyzer
//! judgment, anchor bookkeeping, phase boundaries).
//!
//! # Why sharing is exact (shape-group invariants)
//!
//! With a Constant trailing window and `skip ≤ cw`, window evolution
//! is a pure FIFO over the element stream: once `cw + tw` elements
//! have been consumed, the buffer holds *exactly the last `cw + tw`
//! elements*, independent of any per-config state. A private detector
//! differs from that saturated FIFO in exactly one way: at each phase
//! end it flushes its windows, keeping the last `skip` elements
//! ([`Windows::clear_keep_last`]). But a flushed detector is not
//! *warm* again until its buffer refills to `cw + tw` — which takes
//! `cw + tw − skip` further elements — and a non-warm detector reads
//! nothing from its windows (it reports `T` unconditionally). Once
//! refilled, its buffer again holds exactly the last `cw + tw` stream
//! elements at the same global offset, i.e. it is bit-identical to
//! the never-flushed shared window. So the engine tracks, per member,
//! only the element count at which the member becomes warm again
//! (`warm_from`), and the flush itself never has to happen.
//!
//! The `skip ≤ cw` restriction exists because [`Windows::push`]
//! transfers at most one element per push from CW to TW: re-seeding
//! the CW with `skip > cw` elements would leave the CW over capacity
//! while the TW refills, so the private buffer would transiently hold
//! *more* than `cw + tw` elements at warm-up — a state the shared
//! window never visits. Such configs (rare: `full_grid` uses
//! `skip ∈ {1, cw/10, cw}`) simply run on the private path.
//!
//! # Adaptive-TW groups: the forking shared scan
//!
//! An Adaptive-TW config's windows deviate from the pure FIFO only
//! *while the config is inside a phase*: at phase entry it mutates
//! the windows ([`Windows::anchor_and_resize`]) and while in phase it
//! suppresses TW eviction, so in-phase window contents depend on the
//! config's own detection history. But outside a phase the same FIFO
//! argument as above applies — in Transition the TW policy never
//! fires (`tw_grows` is false), and after the phase-exit flush the
//! refill path is push-for-push identical to a Constant-TW refill, so
//! the refilled state is again bit-identical to the never-flushed
//! FIFO at the same offset. The engine therefore runs one shared FIFO
//! per adaptive shape group too, and handles phases by **forking**:
//! at a member's phase entry the FIFO state is snapshotted
//! ([`ForkableKernel::fork`]), `anchor_and_resize` is applied to the
//! snapshot, and the member judges that *phase class* (advanced with
//! TW growth each step) until its phase ends — at which point the
//! member records its refill point and rejoins the FIFO pool, exactly
//! like a Constant-TW flush. Members entering on the same step whose
//! anchor and resize policies produce the *same resulting window
//! boundaries* — computed in closed form before forking, since
//! windows are always contiguous trace slices — share one class: the
//! four `(anchor, resize)` pairs routinely degenerate to one fork
//! (both anchors return index 0 when every TW site also occurs in
//! the CW; Slide equals Move when the anchored TW is at capacity).
//! A class is freed as soon as its last member leaves. In the worst
//! case — every member permanently in a phase of its own — this
//! degrades to one windows-advance per member per step, i.e. parity
//! with private runs; in practice members cluster into few classes
//! and the shared FIFO carries all Transition time.
//!
//! Only `skip > cw` configs keep fully private windows (with scratch
//! reuse), for the over-full-CW reason above; they run through the
//! same engine and its work distribution.
//!
//! Mixed-model groups are also exact: the shared windows enable
//! weighted min-sum tracking iff some member uses the weighted model.
//! Members that don't never read `min_sum`, and members that do see
//! the same integer fast path a private tracking window would use.
//!
//! # Example
//!
//! ```
//! use opd_core::{DetectorConfig, InternedTrace, SweepEngine};
//! use opd_trace::{MethodId, ProfileElement};
//!
//! let elements: Vec<ProfileElement> = (0..600)
//!     .map(|i| ProfileElement::new(MethodId::new(0), i / 150, true))
//!     .collect();
//! let trace = InternedTrace::from_elements(elements.iter().copied());
//! // Two configs sharing one window shape: one shared scan.
//! let configs = vec![
//!     DetectorConfig::builder().current_window(40).build()?,
//!     DetectorConfig::builder()
//!         .current_window(40)
//!         .model(opd_core::ModelPolicy::WeightedSet)
//!         .build()?,
//! ];
//! let engine = SweepEngine::new(&configs);
//! assert_eq!(engine.units().len(), 1);
//! assert_eq!(engine.total_scans(), 1);
//! let phases = engine.run_all(&trace);
//! assert_eq!(phases.len(), configs.len());
//! # Ok::<(), opd_core::ConfigError>(())
//! ```

use std::collections::HashMap;

use opd_trace::PhaseState;

use crate::analyzer::Analyzer;
use crate::boundary::DetectedPhase;
use crate::config::{ConfigShape, DetectorConfig};
use crate::detector::PhaseDetector;
use crate::intern::InternedTrace;
use crate::kernel::{ForkableKernel, KernelKind, SwarKernelState, SwarWindows, WindowKernel};
use crate::model::ModelPolicy;
use crate::window::{AnchorPolicy, ResizePolicy, Windows};

/// Error from the fallible sweep entry points
/// ([`SweepEngine::try_run_unit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepError {
    /// The requested unit index does not exist in this plan.
    UnitOutOfRange {
        /// The index the caller asked for.
        unit_index: usize,
        /// How many units the plan actually has.
        units: usize,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SweepError::UnitOutOfRange { unit_index, units } => write!(
                f,
                "sweep unit index {unit_index} out of range: plan has {units} unit(s)"
            ),
        }
    }
}

impl std::error::Error for SweepError {}

/// How a planned [`SweepUnit`] scans the trace (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitKind {
    /// A same-shape Constant-TW group: one shared FIFO scan.
    SharedConstant,
    /// A same-shape Adaptive-TW group: one shared FIFO scan with
    /// copy-on-phase-entry forks.
    SharedAdaptive,
    /// One private detector run per config (`skip > cw`).
    Private,
}

/// One schedulable piece of a sweep: either a shape group that scans
/// the trace once for all members, or a single private-window config.
#[derive(Debug, Clone)]
pub struct SweepUnit {
    config_indices: Vec<usize>,
    kind: UnitKind,
}

impl SweepUnit {
    /// Indices (into the engine's config slice) this unit covers.
    #[must_use]
    pub fn config_indices(&self) -> &[usize] {
        &self.config_indices
    }

    /// How this unit scans the trace.
    #[must_use]
    pub fn kind(&self) -> UnitKind {
        self.kind
    }

    /// `true` if this unit advances one shared window for all members.
    #[must_use]
    pub fn is_shared(&self) -> bool {
        self.kind != UnitKind::Private
    }

    /// Trace scans this unit performs (1 for shared groups).
    #[must_use]
    pub fn scans(&self) -> usize {
        if self.is_shared() {
            1
        } else {
            self.config_indices.len()
        }
    }
}

/// Per-thread reusable state for private-path runs: one
/// [`PhaseDetector`] whose window allocations (site tables, deque,
/// distinct lists) are sized once per trace and reused across configs.
#[derive(Debug, Default)]
pub struct SweepScratch {
    detector: Option<PhaseDetector>,
    /// SWAR-kernel state for the shared scan path (the private path's
    /// lives inside `detector`); like the detector, its per-site
    /// allocations persist across units.
    shared_swar: SwarKernelState,
    site_capacity: usize,
}

impl SweepScratch {
    /// An empty scratch; allocations build up on first use.
    #[must_use]
    pub fn new() -> Self {
        SweepScratch::default()
    }

    /// A scratch whose window tables are pre-sized for `n_sites`
    /// distinct elements (typically a static alphabet bound from
    /// `opd-analyze`), so runs over traces with at most that many
    /// sites never grow them mid-scan.
    #[must_use]
    pub fn with_site_capacity(n_sites: usize) -> Self {
        SweepScratch {
            detector: None,
            shared_swar: SwarKernelState::default(),
            site_capacity: n_sites,
        }
    }

    fn detector_for(&mut self, config: DetectorConfig, kernel: KernelKind) -> &mut PhaseDetector {
        let detector = match &mut self.detector {
            Some(d) => {
                d.reconfigure(config);
                d
            }
            slot @ None => slot.insert(PhaseDetector::new(config)),
        };
        detector.set_kernel(kernel);
        detector.reserve_sites(self.site_capacity);
        detector
    }
}

/// A planned sweep of one config grid: shape groups for Constant-TW
/// configs, private units for the rest (see module docs).
///
/// The engine is scan-order deterministic: results depend only on the
/// configs and the trace, never on unit scheduling, so callers may run
/// units across threads (each unit's results carry config indices).
#[derive(Debug)]
pub struct SweepEngine<'a> {
    configs: &'a [DetectorConfig],
    units: Vec<SweepUnit>,
    kernel: KernelKind,
}

impl<'a> SweepEngine<'a> {
    /// Plans a sweep over `configs`: groups shareable configs by
    /// window shape (first-seen order) and gives every other config a
    /// private unit. Runs use the default window kernel; see
    /// [`with_kernel`](Self::with_kernel).
    #[must_use]
    pub fn new(configs: &'a [DetectorConfig]) -> Self {
        Self::with_kernel(configs, KernelKind::default())
    }

    /// Like [`new`](Self::new), but running every unit (shared scans
    /// and private detectors) on an explicit window kernel. Both
    /// kernels produce bit-identical results; the scalar kernel exists
    /// as the differential-testing reference.
    #[must_use]
    pub fn with_kernel(configs: &'a [DetectorConfig], kernel: KernelKind) -> Self {
        // Constant-TW and Adaptive-TW groups are keyed separately:
        // identical shapes under different TW policies cannot share a
        // scan (the adaptive scan forks, the constant one never does).
        let mut constant_group: HashMap<ConfigShape, usize> = HashMap::new();
        let mut adaptive_group: HashMap<ConfigShape, usize> = HashMap::new();
        let mut units: Vec<SweepUnit> = Vec::new();
        for (i, config) in configs.iter().enumerate() {
            let group = if config.shares_windows() {
                Some((&mut constant_group, UnitKind::SharedConstant))
            } else if config.shares_windows_adaptively() {
                Some((&mut adaptive_group, UnitKind::SharedAdaptive))
            } else {
                None
            };
            match group {
                Some((group_of, kind)) => {
                    let unit = *group_of.entry(config.shape()).or_insert_with(|| {
                        units.push(SweepUnit {
                            config_indices: Vec::new(),
                            kind,
                        });
                        units.len() - 1
                    });
                    units[unit].config_indices.push(i);
                }
                None => units.push(SweepUnit {
                    config_indices: vec![i],
                    kind: UnitKind::Private,
                }),
            }
        }
        SweepEngine {
            configs,
            units,
            kernel,
        }
    }

    /// The configs this engine plans over.
    #[must_use]
    pub fn configs(&self) -> &'a [DetectorConfig] {
        self.configs
    }

    /// The window kernel this engine's runs use.
    #[must_use]
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// The planned units, in deterministic planning order.
    #[must_use]
    pub fn units(&self) -> &[SweepUnit] {
        &self.units
    }

    /// Total trace scans the plan performs; a naive sweep performs
    /// one per config.
    #[must_use]
    pub fn total_scans(&self) -> usize {
        self.units.iter().map(SweepUnit::scans).sum()
    }

    /// Runs one planned unit over `trace`, returning `(config index,
    /// detected phases)` per member. `scratch` carries reusable
    /// allocations across calls on the same thread.
    ///
    /// # Panics
    ///
    /// Panics if `unit_index` is out of range;
    /// [`Self::try_run_unit`] is the non-panicking form.
    #[must_use]
    pub fn run_unit(
        &self,
        unit_index: usize,
        trace: &InternedTrace,
        scratch: &mut SweepScratch,
    ) -> Vec<(usize, Vec<DetectedPhase>)> {
        match self.try_run_unit(unit_index, trace, scratch) {
            Ok(results) => results,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs one planned unit over `trace`, returning
    /// [`SweepError::UnitOutOfRange`] instead of panicking when
    /// `unit_index` does not name a planned unit — the entry point
    /// for callers driving the engine from external indices
    /// (checkpoint resume, work queues).
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::UnitOutOfRange`] if `unit_index >=
    /// self.units().len()`.
    pub fn try_run_unit(
        &self,
        unit_index: usize,
        trace: &InternedTrace,
        scratch: &mut SweepScratch,
    ) -> Result<Vec<(usize, Vec<DetectedPhase>)>, SweepError> {
        let unit = self
            .units
            .get(unit_index)
            .ok_or(SweepError::UnitOutOfRange {
                unit_index,
                units: self.units.len(),
            })?;
        Ok(match unit.kind {
            UnitKind::SharedConstant => run_shared_group(
                self.configs,
                &unit.config_indices,
                trace,
                scratch,
                self.kernel,
            ),
            UnitKind::SharedAdaptive => run_shared_adaptive_group(
                self.configs,
                &unit.config_indices,
                trace,
                scratch,
                self.kernel,
            ),
            UnitKind::Private => unit
                .config_indices
                .iter()
                .map(|&i| {
                    let detector = scratch.detector_for(self.configs[i], self.kernel);
                    let _ = detector.run_interned_phases_only(trace);
                    (i, detector.take_phases())
                })
                .collect(),
        })
    }

    /// Runs the whole plan sequentially, returning phases in config
    /// order.
    #[must_use]
    pub fn run_all(&self, trace: &InternedTrace) -> Vec<Vec<DetectedPhase>> {
        let mut scratch = SweepScratch::new();
        let mut out: Vec<Vec<DetectedPhase>> = vec![Vec::new(); self.configs.len()];
        for unit_index in 0..self.units.len() {
            for (config_index, phases) in self.run_unit(unit_index, trace, &mut scratch) {
                out[config_index] = phases;
            }
        }
        out
    }
}

/// The instrumented sweep entry point, available with the `obs`
/// feature. Metering duplicates the unmetered scan loops (guarded by
/// the observer-equivalence suite) so [`SweepEngine::run_unit`] stays
/// untouched and overhead-free.
#[cfg(feature = "obs")]
impl SweepEngine<'_> {
    /// [`run_unit`](Self::run_unit) plus accounting: accumulates what
    /// the unit actually did (scans, steps, judged steps, comparison
    /// ops, elements) into `metrics`, for cross-checking against the
    /// static cost model's bounds. Results are identical to
    /// `run_unit`'s.
    ///
    /// # Panics
    ///
    /// Panics if `unit_index` is out of range.
    #[must_use]
    pub fn run_unit_metered(
        &self,
        unit_index: usize,
        trace: &InternedTrace,
        scratch: &mut SweepScratch,
        metrics: &mut opd_obs::UnitMetrics,
    ) -> Vec<(usize, Vec<DetectedPhase>)> {
        let unit = &self.units[unit_index];
        match unit.kind {
            UnitKind::SharedConstant => run_shared_group_metered(
                self.configs,
                &unit.config_indices,
                trace,
                scratch,
                self.kernel,
                metrics,
            ),
            UnitKind::SharedAdaptive => run_shared_adaptive_group_metered(
                self.configs,
                &unit.config_indices,
                trace,
                scratch,
                self.kernel,
                metrics,
            ),
            UnitKind::Private => unit
                .config_indices
                .iter()
                .map(|&i| {
                    let detector = scratch.detector_for(self.configs[i], self.kernel);
                    let mut meter = opd_obs::MeterObserver::new();
                    let _ = detector.run_interned_phases_observed(trace, &mut meter);
                    metrics.scans += 1;
                    metrics.elements += trace.len() as u64;
                    metrics.merge(&meter.metrics);
                    (i, detector.take_phases())
                })
                .collect(),
        }
    }
}

fn model_slot(model: ModelPolicy) -> usize {
    match model {
        ModelPolicy::UnweightedSet => 0,
        ModelPolicy::WeightedSet => 1,
        ModelPolicy::Pearson => 2,
    }
}

/// A member config's cheap residue state within a shared scan.
struct Member {
    config_index: usize,
    config: DetectorConfig,
    analyzer: Analyzer,
    state: PhaseState,
    /// Element count from which this member's (virtual) private
    /// windows are full again after its last flush; warm iff the
    /// shared windows are warm and `consumed >= warm_from`.
    warm_from: u64,
    phases: Vec<DetectedPhase>,
}

/// Builds the member residue states of a shared group and checks the
/// shared-path invariants: the planner only groups shareable configs
/// of identical shape, and sharing is exact only when a flush's kept
/// elements fit in the CW (`skip <= cw`, module docs).
fn shared_members(configs: &[DetectorConfig], member_indices: &[usize]) -> Vec<Member> {
    let first = &configs[member_indices[0]];
    let (cw, tw, skip) = (
        first.current_window(),
        first.trailing_window(),
        first.skip_factor(),
    );
    debug_assert!(skip >= 1 && cw >= 1 && tw >= 1, "windows have capacity");
    debug_assert!(skip <= cw, "shared scan requires skip <= cw");
    debug_assert!(
        member_indices.iter().all(|&i| {
            configs[i].shares_windows()
                && configs[i].current_window() == cw
                && configs[i].trailing_window() == tw
                && configs[i].skip_factor() == skip
        }),
        "shared group members must be shareable and same-shape"
    );
    member_indices
        .iter()
        .map(|&i| Member {
            config_index: i,
            config: configs[i],
            analyzer: Analyzer::new(configs[i].analyzer()),
            state: PhaseState::Transition,
            warm_from: 0,
            phases: Vec::new(),
        })
        .collect()
}

/// One scan of `trace` evaluating every member of a same-shape
/// Constant-TW group against shared windows, dispatched to the
/// engine's kernel. See the module docs for the exactness argument.
fn run_shared_group(
    configs: &[DetectorConfig],
    member_indices: &[usize],
    trace: &InternedTrace,
    scratch: &mut SweepScratch,
    kernel: KernelKind,
) -> Vec<(usize, Vec<DetectedPhase>)> {
    let first = &configs[member_indices[0]];
    let (cw, tw, skip) = (
        first.current_window(),
        first.trailing_window(),
        first.skip_factor(),
    );
    let members = shared_members(configs, member_indices);
    let sites = (trace.distinct_count() as usize).max(scratch.site_capacity);
    match kernel {
        KernelKind::Scalar => {
            let track = member_indices
                .iter()
                .any(|&i| configs[i].model() == ModelPolicy::WeightedSet);
            let mut windows = Windows::with_site_capacity(cw, tw, track, sites);
            run_shared_group_scan(members, trace, skip, &mut windows)
        }
        KernelKind::Swar => {
            scratch.shared_swar.ensure_sites(sites);
            let mut windows = SwarWindows::begin(&mut scratch.shared_swar, trace, skip, cw, tw);
            run_shared_group_scan(members, trace, skip, &mut windows)
        }
    }
}

/// The kernel-generic shared scan loop: one window advance per step,
/// every member evaluating only its cheap residue against the memoized
/// per-model similarities.
fn run_shared_group_scan<K: WindowKernel>(
    mut members: Vec<Member>,
    trace: &InternedTrace,
    skip: usize,
    windows: &mut K,
) -> Vec<(usize, Vec<DetectedPhase>)> {
    let first = &members[0].config;
    // After a flush keeps `skip` elements, a private window is full
    // (warm) again `cw + tw - skip` elements later.
    let refill = (first.current_window() + first.trailing_window() - skip) as u64;
    let mut consumed = 0u64;
    // Per-step memo of each distinct model's similarity against the
    // shared windows: computed once per step, judged by every member.
    let mut sims = [0.0f64; 3];
    for chunk in trace.ids().chunks(skip) {
        windows.advance(chunk, false);
        let step_start = consumed;
        consumed += chunk.len() as u64;
        let shared_warm = windows.is_warm();
        let mut have = [false; 3];
        for m in &mut members {
            let (new_state, sim) = if shared_warm && consumed >= m.warm_from {
                let slot = model_slot(m.config.model());
                if !have[slot] {
                    sims[slot] = windows.similarity(m.config.model());
                    have[slot] = true;
                }
                (m.analyzer.judge(sims[slot]), sims[slot])
            } else {
                (PhaseState::Transition, 0.0)
            };
            match (m.state, new_state) {
                (PhaseState::Transition, PhaseState::Phase) => {
                    // Phase start: anchor against the shared windows
                    // (Constant TW never resizes) and reset stats.
                    let anchor_idx = windows.anchor_index(m.config.anchor());
                    m.analyzer.reset();
                    m.phases.push(DetectedPhase {
                        start: step_start,
                        anchored_start: windows.offset_of_index(anchor_idx),
                        end: None,
                    });
                }
                (PhaseState::Phase, PhaseState::Transition) => {
                    // Phase end: a private detector would flush its
                    // windows here; tracking the refill point is
                    // equivalent and keeps the scan shared.
                    m.warm_from = consumed + refill;
                    if let Some(open) = m.phases.last_mut() {
                        open.end = Some(step_start);
                    }
                }
                (PhaseState::Phase, PhaseState::Phase) => {
                    m.analyzer.update(sim);
                }
                (PhaseState::Transition, PhaseState::Transition) => {}
            }
            m.state = new_state;
        }
    }
    members
        .into_iter()
        .map(|mut m| {
            if let Some(open) = m.phases.last_mut() {
                if open.end.is_none() {
                    open.end = Some(consumed);
                }
            }
            (m.config_index, m.phases)
        })
        .collect()
}

/// A member's slot when it currently judges the shared FIFO (not a
/// phase class).
const NO_CLASS: usize = usize::MAX;

/// A member config's residue state within a forking adaptive scan.
struct AdaptiveMember {
    config_index: usize,
    config: DetectorConfig,
    analyzer: Analyzer,
    state: PhaseState,
    /// Index into the scan's class table while in Phase; [`NO_CLASS`]
    /// while in Transition (judging the shared FIFO).
    class: usize,
    /// As in [`Member`]: element count from which this member's
    /// (virtual) private windows are full again after its last
    /// phase-exit flush.
    warm_from: u64,
    phases: Vec<DetectedPhase>,
}

/// One forked window state shared by every member that entered a
/// phase on the same step and whose anchor/resize policies produced
/// the same post-fork window boundaries.
struct PhaseClass<F> {
    windows: F,
    members: usize,
    /// Per-model similarity memo against `windows`, reset each step.
    sims: [f64; 3],
    have: [bool; 3],
}

fn anchor_slot(policy: AnchorPolicy) -> usize {
    match policy {
        AnchorPolicy::RightmostNoisy => 0,
        AnchorPolicy::LeftmostNonNoisy => 1,
    }
}

/// Builds the member residue states of an adaptive shape group,
/// checking the forking-scan invariants (adaptively shareable,
/// identical shape).
fn adaptive_members(configs: &[DetectorConfig], member_indices: &[usize]) -> Vec<AdaptiveMember> {
    let first = &configs[member_indices[0]];
    let (cw, tw, skip) = (
        first.current_window(),
        first.trailing_window(),
        first.skip_factor(),
    );
    debug_assert!(skip >= 1 && cw >= 1 && tw >= 1, "windows have capacity");
    debug_assert!(skip <= cw, "shared scan requires skip <= cw");
    debug_assert!(
        member_indices.iter().all(|&i| {
            configs[i].shares_windows_adaptively()
                && configs[i].current_window() == cw
                && configs[i].trailing_window() == tw
                && configs[i].skip_factor() == skip
        }),
        "adaptive group members must be adaptively shareable and same-shape"
    );
    member_indices
        .iter()
        .map(|&i| AdaptiveMember {
            config_index: i,
            config: configs[i],
            analyzer: Analyzer::new(configs[i].analyzer()),
            state: PhaseState::Transition,
            class: NO_CLASS,
            warm_from: 0,
            phases: Vec::new(),
        })
        .collect()
}

/// One scan of `trace` evaluating every member of a same-shape
/// Adaptive-TW group against a shared FIFO with copy-on-phase-entry
/// forks, dispatched to the engine's kernel. See the module docs for
/// the exactness argument.
fn run_shared_adaptive_group(
    configs: &[DetectorConfig],
    member_indices: &[usize],
    trace: &InternedTrace,
    scratch: &mut SweepScratch,
    kernel: KernelKind,
) -> Vec<(usize, Vec<DetectedPhase>)> {
    let first = &configs[member_indices[0]];
    let (cw, tw, skip) = (
        first.current_window(),
        first.trailing_window(),
        first.skip_factor(),
    );
    let members = adaptive_members(configs, member_indices);
    let sites = (trace.distinct_count() as usize).max(scratch.site_capacity);
    match kernel {
        KernelKind::Scalar => {
            let track = member_indices
                .iter()
                .any(|&i| configs[i].model() == ModelPolicy::WeightedSet);
            let mut windows = Windows::with_site_capacity(cw, tw, track, sites);
            run_shared_adaptive_scan(members, trace, skip, &mut windows)
        }
        KernelKind::Swar => {
            scratch.shared_swar.ensure_sites(sites);
            let mut windows = SwarWindows::begin(&mut scratch.shared_swar, trace, skip, cw, tw);
            run_shared_adaptive_scan(members, trace, skip, &mut windows)
        }
    }
}

/// The kernel-generic forking scan loop: one FIFO advance plus one
/// advance per live phase class per step, every member judging either
/// the memoized FIFO similarities (in Transition) or its class's (in
/// Phase).
fn run_shared_adaptive_scan<K: ForkableKernel>(
    mut members: Vec<AdaptiveMember>,
    trace: &InternedTrace,
    skip: usize,
    fifo: &mut K,
) -> Vec<(usize, Vec<DetectedPhase>)> {
    let first = &members[0].config;
    let refill = (first.current_window() + first.trailing_window() - skip) as u64;
    let tw_cap = first.trailing_window() as u64;
    let mut consumed = 0u64;
    // Phase classes, with freed slots recycled so the table stays at
    // the peak number of *live* classes.
    let mut classes: Vec<PhaseClass<K::Forked>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut fifo_sims = [0.0f64; 3];
    for chunk in trace.ids().chunks(skip) {
        // Members still in a phase pushed this step's elements with
        // TW growth (they were in Phase when the step began); the
        // class advance must precede the member loop for the same
        // reason the FIFO advance does.
        fifo.advance(chunk, false);
        for class in &mut classes {
            if class.members > 0 {
                class.windows.advance(chunk, true);
                class.have = [false; 3];
            }
        }
        let step_start = consumed;
        consumed += chunk.len() as u64;
        let fifo_warm = fifo.is_warm();
        let mut fifo_have = [false; 3];
        // Per-step memos: the FIFO anchor index per anchor policy,
        // and the forked class (with its anchored start offset) per
        // *resulting window boundary*. Distinct (anchor, resize)
        // pairs routinely coincide — both anchors return index 0 when
        // every TW site also appears in the CW, and Slide equals Move
        // when the anchored TW is already at capacity — and since
        // windows are contiguous trace slices, same-step forks with
        // equal boundaries are bit-identical forever, so those
        // members share one class.
        let mut anchor_memo: [Option<usize>; 2] = [None; 2];
        let mut forks: [Option<((u64, u64), usize)>; 4] = [None; 4];
        for m in &mut members {
            if m.state == PhaseState::Phase {
                // In Phase the member's windows are its class's fork.
                let class = &mut classes[m.class];
                let slot = model_slot(m.config.model());
                if !class.have[slot] {
                    class.sims[slot] = class.windows.similarity(m.config.model());
                    class.have[slot] = true;
                }
                let sim = class.sims[slot];
                let new_state = m.analyzer.judge(sim);
                if new_state == PhaseState::Phase {
                    m.analyzer.update(sim);
                } else {
                    // Phase end: a private detector would flush its
                    // windows here; the member leaves its class and
                    // tracks the refill point instead.
                    class.members -= 1;
                    if class.members == 0 {
                        free.push(m.class);
                    }
                    m.class = NO_CLASS;
                    m.warm_from = consumed + refill;
                    if let Some(open) = m.phases.last_mut() {
                        open.end = Some(step_start);
                    }
                }
                m.state = new_state;
            } else {
                // In Transition the member's (virtual) private
                // windows coincide with the shared FIFO once
                // refilled, exactly as in the Constant-TW scan.
                let new_state = if fifo_warm && consumed >= m.warm_from {
                    let slot = model_slot(m.config.model());
                    if !fifo_have[slot] {
                        fifo_sims[slot] = fifo.similarity(m.config.model());
                        fifo_have[slot] = true;
                    }
                    m.analyzer.judge(fifo_sims[slot])
                } else {
                    PhaseState::Transition
                };
                if new_state == PhaseState::Phase {
                    // Phase start: fork the FIFO and anchor/resize
                    // the fork — unless a same-step entrant already
                    // built a fork with the same resulting boundaries,
                    // computed here in closed form. Both kernels pop
                    // `anchor_idx` elements from the TW front; Slide
                    // then tops the TW back up from the CW, whose last
                    // element (offset `consumed - 1`) never moves.
                    let a_slot = anchor_slot(m.config.anchor());
                    let anchor_idx = *anchor_memo[a_slot]
                        .get_or_insert_with(|| fifo.anchor_index(m.config.anchor()));
                    let a0 = fifo.offset_of_index(0);
                    let b0 = a0 + fifo.tw_len() as u64;
                    let a2 = a0 + anchor_idx as u64;
                    let b2 = if m.config.resize() == ResizePolicy::Slide {
                        b0.max((a2 + tw_cap).min(consumed - 1))
                    } else {
                        b0
                    };
                    let class_idx = match forks.iter().flatten().find(|(key, _)| *key == (a2, b2)) {
                        Some(&(_, idx)) => idx,
                        None => {
                            let mut windows = fifo.fork();
                            let anchored_start =
                                windows.anchor_and_resize(anchor_idx, m.config.resize());
                            debug_assert_eq!(anchored_start, a2);
                            debug_assert_eq!(windows.offset_of_index(0), a2);
                            debug_assert_eq!(windows.tw_len() as u64, b2 - a2);
                            let fresh = PhaseClass {
                                windows,
                                members: 0,
                                sims: [0.0; 3],
                                have: [false; 3],
                            };
                            let class_idx = match free.pop() {
                                Some(idx) => {
                                    classes[idx] = fresh;
                                    idx
                                }
                                None => {
                                    classes.push(fresh);
                                    classes.len() - 1
                                }
                            };
                            let slot = forks
                                .iter_mut()
                                .find(|s| s.is_none())
                                .expect("at most four (anchor, resize) pairs per step");
                            *slot = Some(((a2, b2), class_idx));
                            class_idx
                        }
                    };
                    classes[class_idx].members += 1;
                    m.class = class_idx;
                    m.analyzer.reset();
                    m.phases.push(DetectedPhase {
                        start: step_start,
                        anchored_start: a2,
                        end: None,
                    });
                }
                m.state = new_state;
            }
        }
    }
    members
        .into_iter()
        .map(|mut m| {
            if let Some(open) = m.phases.last_mut() {
                if open.end.is_none() {
                    open.end = Some(consumed);
                }
            }
            (m.config_index, m.phases)
        })
        .collect()
}

/// [`run_shared_group`] plus accounting — the scan loop is a
/// line-for-line mirror of [`run_shared_group_scan`] (the
/// observer-equivalence suite asserts matching results; keep any
/// change to the scan loop mirrored here). A fresh model-slot
/// computation charges the kernel's full runtime comparison cost;
/// every further member judging the memoized similarity charges only
/// the fixed judge overhead — so shared-scan comparison ops are always
/// at or below the static per-member bound.
#[cfg(feature = "obs")]
fn run_shared_group_metered(
    configs: &[DetectorConfig],
    member_indices: &[usize],
    trace: &InternedTrace,
    scratch: &mut SweepScratch,
    kernel: KernelKind,
    metrics: &mut opd_obs::UnitMetrics,
) -> Vec<(usize, Vec<DetectedPhase>)> {
    let first = &configs[member_indices[0]];
    let (cw, tw, skip) = (
        first.current_window(),
        first.trailing_window(),
        first.skip_factor(),
    );
    let members = shared_members(configs, member_indices);
    let sites = (trace.distinct_count() as usize).max(scratch.site_capacity);
    match kernel {
        KernelKind::Scalar => {
            let track = member_indices
                .iter()
                .any(|&i| configs[i].model() == ModelPolicy::WeightedSet);
            let mut windows = Windows::with_site_capacity(cw, tw, track, sites);
            run_shared_group_scan_metered(members, trace, skip, &mut windows, metrics)
        }
        KernelKind::Swar => {
            scratch.shared_swar.ensure_sites(sites);
            let mut windows = SwarWindows::begin(&mut scratch.shared_swar, trace, skip, cw, tw);
            run_shared_group_scan_metered(members, trace, skip, &mut windows, metrics)
        }
    }
}

/// The metered twin of [`run_shared_group_scan`].
#[cfg(feature = "obs")]
fn run_shared_group_scan_metered<K: WindowKernel>(
    mut members: Vec<Member>,
    trace: &InternedTrace,
    skip: usize,
    windows: &mut K,
    metrics: &mut opd_obs::UnitMetrics,
) -> Vec<(usize, Vec<DetectedPhase>)> {
    let first = &members[0].config;
    let refill = (first.current_window() + first.trailing_window() - skip) as u64;
    metrics.scans += 1;
    metrics.elements += trace.len() as u64;
    let mut consumed = 0u64;
    let mut sims = [0.0f64; 3];
    for chunk in trace.ids().chunks(skip) {
        windows.advance(chunk, false);
        let step_start = consumed;
        consumed += chunk.len() as u64;
        metrics.steps += 1;
        let shared_warm = windows.is_warm();
        let mut have = [false; 3];
        for m in &mut members {
            let (new_state, sim) = if shared_warm && consumed >= m.warm_from {
                let slot = model_slot(m.config.model());
                if have[slot] {
                    // Memoized similarity: this member pays only the
                    // analyzer's judge overhead.
                    metrics.compare_ops += 2;
                } else {
                    sims[slot] = windows.similarity(m.config.model());
                    have[slot] = true;
                    metrics.compare_ops += windows.judge_ops(m.config.model());
                }
                metrics.judged_steps += 1;
                (m.analyzer.judge(sims[slot]), sims[slot])
            } else {
                (PhaseState::Transition, 0.0)
            };
            match (m.state, new_state) {
                (PhaseState::Transition, PhaseState::Phase) => {
                    let anchor_idx = windows.anchor_index(m.config.anchor());
                    m.analyzer.reset();
                    m.phases.push(DetectedPhase {
                        start: step_start,
                        anchored_start: windows.offset_of_index(anchor_idx),
                        end: None,
                    });
                }
                (PhaseState::Phase, PhaseState::Transition) => {
                    m.warm_from = consumed + refill;
                    if let Some(open) = m.phases.last_mut() {
                        open.end = Some(step_start);
                    }
                }
                (PhaseState::Phase, PhaseState::Phase) => {
                    m.analyzer.update(sim);
                }
                (PhaseState::Transition, PhaseState::Transition) => {}
            }
            m.state = new_state;
        }
    }
    members
        .into_iter()
        .map(|mut m| {
            if let Some(open) = m.phases.last_mut() {
                if open.end.is_none() {
                    open.end = Some(consumed);
                }
            }
            (m.config_index, m.phases)
        })
        .collect()
}

/// [`run_shared_adaptive_group`] plus accounting — mirrors
/// [`run_shared_adaptive_scan`] the way the constant twin above
/// mirrors its plain scan; keep changes mirrored.
#[cfg(feature = "obs")]
fn run_shared_adaptive_group_metered(
    configs: &[DetectorConfig],
    member_indices: &[usize],
    trace: &InternedTrace,
    scratch: &mut SweepScratch,
    kernel: KernelKind,
    metrics: &mut opd_obs::UnitMetrics,
) -> Vec<(usize, Vec<DetectedPhase>)> {
    let first = &configs[member_indices[0]];
    let (cw, tw, skip) = (
        first.current_window(),
        first.trailing_window(),
        first.skip_factor(),
    );
    let members = adaptive_members(configs, member_indices);
    let sites = (trace.distinct_count() as usize).max(scratch.site_capacity);
    match kernel {
        KernelKind::Scalar => {
            let track = member_indices
                .iter()
                .any(|&i| configs[i].model() == ModelPolicy::WeightedSet);
            let mut windows = Windows::with_site_capacity(cw, tw, track, sites);
            run_shared_adaptive_scan_metered(members, trace, skip, &mut windows, metrics)
        }
        KernelKind::Swar => {
            scratch.shared_swar.ensure_sites(sites);
            let mut windows = SwarWindows::begin(&mut scratch.shared_swar, trace, skip, cw, tw);
            run_shared_adaptive_scan_metered(members, trace, skip, &mut windows, metrics)
        }
    }
}

/// The metered twin of [`run_shared_adaptive_scan`]. A fresh
/// class-or-FIFO model-slot computation charges the kernel's full
/// runtime comparison cost; every further member judging a memoized
/// similarity charges only the fixed judge overhead. Each fresh
/// computation is attributable to the distinct member that triggered
/// it (a member judges exactly one window state per step), so
/// shared-scan comparison ops stay at or below the static per-member
/// bound.
#[cfg(feature = "obs")]
fn run_shared_adaptive_scan_metered<K: ForkableKernel>(
    mut members: Vec<AdaptiveMember>,
    trace: &InternedTrace,
    skip: usize,
    fifo: &mut K,
    metrics: &mut opd_obs::UnitMetrics,
) -> Vec<(usize, Vec<DetectedPhase>)> {
    let first = &members[0].config;
    let refill = (first.current_window() + first.trailing_window() - skip) as u64;
    let tw_cap = first.trailing_window() as u64;
    metrics.scans += 1;
    metrics.elements += trace.len() as u64;
    let mut consumed = 0u64;
    let mut classes: Vec<PhaseClass<K::Forked>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut fifo_sims = [0.0f64; 3];
    for chunk in trace.ids().chunks(skip) {
        fifo.advance(chunk, false);
        for class in &mut classes {
            if class.members > 0 {
                class.windows.advance(chunk, true);
                class.have = [false; 3];
            }
        }
        let step_start = consumed;
        consumed += chunk.len() as u64;
        metrics.steps += 1;
        let fifo_warm = fifo.is_warm();
        let mut fifo_have = [false; 3];
        let mut anchor_memo: [Option<usize>; 2] = [None; 2];
        let mut forks: [Option<((u64, u64), usize)>; 4] = [None; 4];
        for m in &mut members {
            if m.state == PhaseState::Phase {
                let class = &mut classes[m.class];
                let slot = model_slot(m.config.model());
                if class.have[slot] {
                    metrics.compare_ops += 2;
                } else {
                    class.sims[slot] = class.windows.similarity(m.config.model());
                    class.have[slot] = true;
                    metrics.compare_ops += class.windows.judge_ops(m.config.model());
                }
                metrics.judged_steps += 1;
                let sim = class.sims[slot];
                let new_state = m.analyzer.judge(sim);
                if new_state == PhaseState::Phase {
                    m.analyzer.update(sim);
                } else {
                    class.members -= 1;
                    if class.members == 0 {
                        free.push(m.class);
                    }
                    m.class = NO_CLASS;
                    m.warm_from = consumed + refill;
                    if let Some(open) = m.phases.last_mut() {
                        open.end = Some(step_start);
                    }
                }
                m.state = new_state;
            } else {
                let new_state = if fifo_warm && consumed >= m.warm_from {
                    let slot = model_slot(m.config.model());
                    if fifo_have[slot] {
                        metrics.compare_ops += 2;
                    } else {
                        fifo_sims[slot] = fifo.similarity(m.config.model());
                        fifo_have[slot] = true;
                        metrics.compare_ops += fifo.judge_ops(m.config.model());
                    }
                    metrics.judged_steps += 1;
                    m.analyzer.judge(fifo_sims[slot])
                } else {
                    PhaseState::Transition
                };
                if new_state == PhaseState::Phase {
                    let a_slot = anchor_slot(m.config.anchor());
                    let anchor_idx = *anchor_memo[a_slot]
                        .get_or_insert_with(|| fifo.anchor_index(m.config.anchor()));
                    let a0 = fifo.offset_of_index(0);
                    let b0 = a0 + fifo.tw_len() as u64;
                    let a2 = a0 + anchor_idx as u64;
                    let b2 = if m.config.resize() == ResizePolicy::Slide {
                        b0.max((a2 + tw_cap).min(consumed - 1))
                    } else {
                        b0
                    };
                    let class_idx = match forks.iter().flatten().find(|(key, _)| *key == (a2, b2)) {
                        Some(&(_, idx)) => idx,
                        None => {
                            let mut windows = fifo.fork();
                            let anchored_start =
                                windows.anchor_and_resize(anchor_idx, m.config.resize());
                            debug_assert_eq!(anchored_start, a2);
                            let fresh = PhaseClass {
                                windows,
                                members: 0,
                                sims: [0.0; 3],
                                have: [false; 3],
                            };
                            let class_idx = match free.pop() {
                                Some(idx) => {
                                    classes[idx] = fresh;
                                    idx
                                }
                                None => {
                                    classes.push(fresh);
                                    classes.len() - 1
                                }
                            };
                            let slot = forks
                                .iter_mut()
                                .find(|s| s.is_none())
                                .expect("at most four (anchor, resize) pairs per step");
                            *slot = Some(((a2, b2), class_idx));
                            class_idx
                        }
                    };
                    classes[class_idx].members += 1;
                    m.class = class_idx;
                    m.analyzer.reset();
                    m.phases.push(DetectedPhase {
                        start: step_start,
                        anchored_start: a2,
                        end: None,
                    });
                }
                m.state = new_state;
            }
        }
    }
    members
        .into_iter()
        .map(|mut m| {
            if let Some(open) = m.phases.last_mut() {
                if open.end.is_none() {
                    open.end = Some(consumed);
                }
            }
            (m.config_index, m.phases)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::AnalyzerPolicy;
    use crate::boundary::{anchored_intervals, detected_intervals};
    use crate::window::{AnchorPolicy, ResizePolicy, TwPolicy};
    use opd_trace::{MethodId, ProfileElement};

    fn block_trace(blocks: u32, block_len: u32, sites_per_block: u32) -> InternedTrace {
        let elements = (0..blocks).flat_map(move |b| {
            (0..block_len).map(move |i| {
                ProfileElement::new(
                    MethodId::new(0),
                    b * sites_per_block + i % sites_per_block,
                    true,
                )
            })
        });
        InternedTrace::from_elements(elements)
    }

    fn reference(config: DetectorConfig, trace: &InternedTrace) -> Vec<DetectedPhase> {
        let mut d = PhaseDetector::new(config);
        let _ = d.run_interned(trace);
        d.take_phases()
    }

    fn mixed_grid() -> Vec<DetectorConfig> {
        let mut configs = Vec::new();
        for cw in [8usize, 16] {
            for skip in [1usize, 3, 8] {
                for model in ModelPolicy::ALL_EXTENDED {
                    for analyzer in [
                        AnalyzerPolicy::Threshold(0.5),
                        AnalyzerPolicy::Threshold(0.9),
                        AnalyzerPolicy::Average { delta: 0.2 },
                    ] {
                        configs.push(
                            DetectorConfig::builder()
                                .current_window(cw)
                                .trailing_window(cw)
                                .skip_factor(skip)
                                .model(model)
                                .analyzer(analyzer)
                                .build()
                                .unwrap(),
                        );
                    }
                }
            }
        }
        // Adaptive configs: the forking shared-scan path. Spreading
        // models, analyzers, and both policy pairs makes members
        // enter and leave phases on different steps, exercising
        // same-step class sharing, divergent class evolution, class
        // retirement, and slot recycling.
        for anchor in [AnchorPolicy::RightmostNoisy, AnchorPolicy::LeftmostNonNoisy] {
            for resize in [ResizePolicy::Slide, ResizePolicy::Move] {
                for model in ModelPolicy::ALL_EXTENDED {
                    for analyzer in [
                        AnalyzerPolicy::Threshold(0.3),
                        AnalyzerPolicy::Threshold(0.7),
                        AnalyzerPolicy::Average { delta: 0.2 },
                    ] {
                        configs.push(
                            DetectorConfig::builder()
                                .current_window(12)
                                .tw_policy(TwPolicy::Adaptive)
                                .anchor(anchor)
                                .resize(resize)
                                .model(model)
                                .analyzer(analyzer)
                                .build()
                                .unwrap(),
                        );
                    }
                }
            }
        }
        // A second adaptive shape, with skip > 1.
        configs.push(
            DetectorConfig::builder()
                .current_window(8)
                .trailing_window(6)
                .skip_factor(3)
                .tw_policy(TwPolicy::Adaptive)
                .build()
                .unwrap(),
        );
        // A skip > cw config: shareable() must route it privately.
        configs.push(
            DetectorConfig::builder()
                .current_window(4)
                .trailing_window(8)
                .skip_factor(9)
                .build()
                .unwrap(),
        );
        configs
    }

    #[test]
    fn plan_groups_by_shape() {
        let configs = mixed_grid();
        let engine = SweepEngine::new(&configs);
        // 2 cw × 3 skip constant groups + 2 adaptive shape groups
        // + 1 private skip>cw.
        assert_eq!(engine.units().len(), 6 + 2 + 1);
        assert_eq!(engine.total_scans(), 6 + 2 + 1);
        assert!(engine.total_scans() < configs.len());
        let covered: usize = engine
            .units()
            .iter()
            .map(|u| u.config_indices().len())
            .sum();
        assert_eq!(covered, configs.len());
        for unit in engine.units() {
            assert!(unit.scans() > 0);
            assert_eq!(unit.is_shared(), unit.kind() != UnitKind::Private);
            if unit.is_shared() {
                let shape = configs[unit.config_indices()[0]].shape();
                for &i in unit.config_indices() {
                    assert_eq!(configs[i].shape(), shape);
                    match unit.kind() {
                        UnitKind::SharedConstant => assert!(configs[i].shares_windows()),
                        UnitKind::SharedAdaptive => {
                            assert!(configs[i].shares_windows_adaptively());
                        }
                        UnitKind::Private => unreachable!(),
                    }
                }
            }
        }
    }

    #[test]
    fn engine_matches_sequential_detectors_exactly() {
        let configs = mixed_grid();
        let engine = SweepEngine::new(&configs);
        for trace in [
            block_trace(3, 120, 4),
            block_trace(1, 50, 2),
            block_trace(5, 37, 6),
        ] {
            let all = engine.run_all(&trace);
            for (i, config) in configs.iter().enumerate() {
                let expected = reference(*config, &trace);
                assert_eq!(all[i], expected, "config {i}: {config:?}");
                // Interval views are derived data, but compare them
                // too: they are what sweeps ultimately score.
                let total = trace.len() as u64;
                assert_eq!(
                    detected_intervals(&all[i], total),
                    detected_intervals(&expected, total)
                );
                assert_eq!(
                    anchored_intervals(&all[i], total),
                    anchored_intervals(&expected, total)
                );
            }
        }
    }

    #[test]
    fn engine_handles_empty_and_short_traces() {
        let configs = vec![DetectorConfig::builder().current_window(8).build().unwrap()];
        let engine = SweepEngine::new(&configs);
        let empty = InternedTrace::from_elements(std::iter::empty());
        assert_eq!(engine.run_all(&empty), vec![Vec::new()]);
        // Shorter than cw + tw: never warm, no phases.
        let short = block_trace(1, 10, 2);
        assert_eq!(engine.run_all(&short), vec![Vec::new()]);
    }

    #[test]
    fn out_of_range_unit_is_a_typed_error() {
        let configs = vec![DetectorConfig::builder().current_window(8).build().unwrap()];
        let engine = SweepEngine::new(&configs);
        let trace = block_trace(1, 40, 2);
        let mut scratch = SweepScratch::new();
        let err = engine.try_run_unit(7, &trace, &mut scratch).unwrap_err();
        assert_eq!(
            err,
            SweepError::UnitOutOfRange {
                unit_index: 7,
                units: 1
            }
        );
        assert!(err.to_string().contains("out of range"));
        // In-range requests still succeed through the fallible path.
        let ok = engine.try_run_unit(0, &trace, &mut scratch).unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn metered_units_match_unmetered_results() {
        let configs = mixed_grid();
        let engine = SweepEngine::new(&configs);
        let trace = block_trace(3, 120, 4);
        let mut scratch = SweepScratch::new();
        let mut metrics = opd_obs::UnitMetrics::new();
        for unit_index in 0..engine.units().len() {
            let plain = engine.run_unit(unit_index, &trace, &mut scratch);
            let metered = engine.run_unit_metered(unit_index, &trace, &mut scratch, &mut metrics);
            assert_eq!(plain, metered, "unit {unit_index}");
        }
        assert_eq!(metrics.scans as usize, engine.total_scans());
        assert_eq!(
            metrics.elements,
            engine.total_scans() as u64 * trace.len() as u64
        );
        assert!(metrics.judged_steps <= metrics.steps * configs.len() as u64);
        assert!(metrics.compare_ops >= 2 * metrics.judged_steps);
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_detectors() {
        let trace = block_trace(4, 90, 5);
        let mut scratch = SweepScratch::new();
        let configs: Vec<DetectorConfig> = [
            (8usize, TwPolicy::Adaptive),
            (16, TwPolicy::Adaptive),
            (8, TwPolicy::Constant),
        ]
        .iter()
        .map(|&(cw, twp)| {
            DetectorConfig::builder()
                .current_window(cw)
                .tw_policy(twp)
                .build()
                .unwrap()
        })
        .collect();
        for config in configs {
            let d = scratch.detector_for(config, KernelKind::default());
            let _ = d.run_interned_phases_only(&trace);
            let reused = d.take_phases();
            assert_eq!(reused, reference(config, &trace), "{config:?}");
        }
    }

    #[test]
    fn engine_kernels_agree() {
        let configs = mixed_grid();
        let trace = block_trace(3, 120, 4);
        let swar = SweepEngine::with_kernel(&configs, KernelKind::Swar).run_all(&trace);
        let scalar = SweepEngine::with_kernel(&configs, KernelKind::Scalar).run_all(&trace);
        assert_eq!(swar, scalar);
    }
}
