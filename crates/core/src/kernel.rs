//! Pluggable window kernels: the scalar deque reference and the
//! structure-of-arrays / bitset (SWAR) fast path.
//!
//! [`WindowKernel`] abstracts the window state a detector drives. Two
//! implementations exist:
//!
//! * the scalar [`Windows`] deque — the reference kernel, retained
//!   verbatim as the differential-testing baseline and as the only
//!   kernel for streaming input ([`PhaseDetector::process`]
//!   (crate::PhaseDetector::process) cannot know the trace up front);
//! * [`SwarWindows`] — the default kernel for runs over a pre-interned
//!   trace. It never materializes a window buffer at all: because
//!   every window operation (push, phase-end flush with CW re-seeding,
//!   anchor-and-resize) preserves the invariant that *the buffered
//!   elements are one contiguous run of the trace*, the whole window
//!   state is three indices `a ≤ b ≤ c` with TW = `trace[a..b)` and
//!   CW = `trace[b..c)`. Advancing by a step moves the three indices
//!   by closed forms and touches only the per-site counts of the at
//!   most `3 · step` *dirty* sites in the spans the indices moved
//!   over — O(dirty) incremental updates instead of per-element deque
//!   traffic. Per-site membership is additionally packed into `u64`
//!   bit lanes (bit = "count > 0", maintained branchlessly), so the
//!   unweighted and Pearson set reductions are popcount passes over
//!   `lanes = ⌈sites/64⌉` words instead of per-site scalar loops.
//!
//! For large skip factors even O(step) per-element work dominates:
//! a config judging every `skip ≥ `[`RANK_MODE_MIN_SKIP`] elements
//! reads window *counts* far more rarely than it crosses elements. In
//! that regime the kernel switches to *rank mode*: a per-trace
//! [`SiteIndex`] answers "how many of `trace[..x]` are site `s`" in
//! O(1), so both windows' count vectors fall out of rank differences
//! at the three run endpoints and an advance costs nothing at all —
//! the kernel pays O(sites) per *judge* instead of O(step) per
//! *advance*.
//!
//! Every kernel reduces its state to the same exact integer
//! quantities and shares the floating-point tail in
//! [`crate::model::exact`], so similarity streams are bit-identical
//! across kernels by construction; `tests/kernel_equivalence.rs`
//! locks this differentially.

use std::borrow::BorrowMut;

use crate::intern::{InternedTrace, SiteIndex};
use crate::model::{exact, ModelPolicy};
use crate::window::{AnchorPolicy, ResizePolicy, Windows};

/// Smallest skip factor for which the SWAR kernel prefers rank mode
/// (see the module docs): below this, dense per-element maintenance
/// is cheaper than an O(sites) rank pass per judge. The static cost
/// model in `opd-analyze` mirrors this cutoff.
pub const RANK_MODE_MIN_SKIP: usize = 32;

/// Which window kernel a detector or sweep engine runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelKind {
    /// The scalar deque reference kernel.
    Scalar,
    /// The SoA/bitset kernel (default for interned-trace runs).
    #[default]
    Swar,
}

impl KernelKind {
    /// Stable lowercase name, used in reports and bench artifacts.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Swar => "swar",
        }
    }
}

impl core::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The window operations a detector state machine drives, factored
/// out of [`Windows`] so `finish_step` and the sweep engine's shared
/// scan are generic over the kernel.
pub(crate) trait WindowKernel {
    /// Consumes one step of `chunk.len()` elements. For the SWAR
    /// kernel `chunk` must be the next contiguous run of the trace
    /// the kernel was started on.
    fn advance(&mut self, chunk: &[u32], tw_grows: bool);

    /// `true` once both windows have filled since the last flush.
    fn is_warm(&self) -> bool;

    /// Trailing-window length.
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    fn tw_len(&self) -> usize;

    /// The similarity of the two windows under `model`.
    fn similarity(&self, model: ModelPolicy) -> f64;

    /// The anchor index (relative to the TW front) per `policy`.
    fn anchor_index(&mut self, policy: AnchorPolicy) -> usize;

    /// Global element offset of a TW-relative index.
    fn offset_of_index(&self, index: usize) -> u64;

    /// Applies the anchor and resize policies at a phase start;
    /// returns the global offset of the anchor element.
    fn anchor_and_resize(&mut self, anchor_idx: usize, resize: ResizePolicy) -> u64;

    /// Flushes both windows, keeping the most recent `keep` elements
    /// as the new (partial) CW.
    fn clear_keep_last(&mut self, keep: usize);

    /// Comparison ops one judged step costs at runtime under `model`,
    /// mirroring the static cost model's accounting against the
    /// actual kernel state.
    #[cfg(feature = "obs")]
    fn judge_ops(&self, model: ModelPolicy) -> u64;
}

/// A kernel whose window state can be snapshotted into an
/// independently evolving copy — the primitive behind the sweep
/// engine's *forking* shared scan for adaptive-TW groups: members
/// entering a phase fork the shared FIFO windows, apply their anchor
/// and resize there, and let the copy grow its TW privately while the
/// FIFO scans on for the members still in transition.
pub(crate) trait ForkableKernel: WindowKernel {
    /// The owned-state kernel a fork evolves as.
    type Forked: WindowKernel;

    /// Snapshots the current window state.
    fn fork(&self) -> Self::Forked;
}

impl ForkableKernel for Windows {
    type Forked = Windows;

    fn fork(&self) -> Windows {
        self.clone()
    }
}

impl WindowKernel for Windows {
    fn advance(&mut self, chunk: &[u32], tw_grows: bool) {
        for &id in chunk {
            self.push(id, tw_grows);
        }
    }

    fn is_warm(&self) -> bool {
        Windows::is_warm(self)
    }

    fn tw_len(&self) -> usize {
        Windows::tw_len(self)
    }

    fn similarity(&self, model: ModelPolicy) -> f64 {
        model.similarity(self)
    }

    fn anchor_index(&mut self, policy: AnchorPolicy) -> usize {
        Windows::anchor_index(self, policy)
    }

    fn offset_of_index(&self, index: usize) -> u64 {
        Windows::offset_of_index(self, index)
    }

    fn anchor_and_resize(&mut self, anchor_idx: usize, resize: ResizePolicy) -> u64 {
        Windows::anchor_and_resize(self, anchor_idx, resize)
    }

    fn clear_keep_last(&mut self, keep: usize) {
        Windows::clear_keep_last(self, keep)
    }

    #[cfg(feature = "obs")]
    fn judge_ops(&self, model: ModelPolicy) -> u64 {
        match model {
            ModelPolicy::UnweightedSet => 2,
            ModelPolicy::WeightedSet => {
                // `weighted_similarity`'s fast path: tracked windows
                // at exactly their capacities use the integer min-sum.
                if self.cw_len() == self.cw_cap() && Windows::tw_len(self) == self.tw_cap() {
                    2
                } else {
                    self.distinct_cw() as u64 + 2
                }
            }
            ModelPolicy::Pearson => self.distinct_cw() as u64 + self.tw_sites().len() as u64 + 2,
        }
    }
}

/// The SWAR kernel's owned scratch: per-site count columns, the
/// membership bit lanes, and the rank-mode anchor rebuild buffer.
/// Allocations persist across runs (the sweep engine keeps one per
/// worker), so the steady state is allocation-free.
#[derive(Debug, Clone, Default)]
pub(crate) struct SwarKernelState {
    cw_counts: Vec<u32>,
    tw_counts: Vec<u32>,
    cw_bits: Vec<u64>,
    tw_bits: Vec<u64>,
    /// Rank mode has no materialized counts; anchor scans rebuild the
    /// CW counts here (once per phase start).
    anchor_counts: Vec<u32>,
}

impl SwarKernelState {
    /// Grows every per-site column to cover ids `0..n_sites`.
    pub(crate) fn ensure_sites(&mut self, n_sites: usize) {
        if self.cw_counts.len() < n_sites {
            self.cw_counts.resize(n_sites, 0);
            self.tw_counts.resize(n_sites, 0);
            self.anchor_counts.resize(n_sites, 0);
            let lanes = n_sites.div_ceil(64);
            self.cw_bits.resize(lanes, 0);
            self.tw_bits.resize(lanes, 0);
        }
    }

    /// Bytes of per-site storage currently held (the high-water mark:
    /// `ensure_sites` never shrinks).
    pub(crate) fn footprint_bytes(&self) -> u64 {
        let counts = (self.cw_counts.len() + self.tw_counts.len() + self.anchor_counts.len())
            as u64
            * core::mem::size_of::<u32>() as u64;
        let lanes =
            (self.cw_bits.len() + self.tw_bits.len()) as u64 * core::mem::size_of::<u64>() as u64;
        counts + lanes
    }
}

/// Bytes of per-site storage the SWAR kernel allocates for a trace
/// with `n_sites` distinct interned sites: three `u32` count columns
/// (CW, TW, anchor rebuild) plus two `u64` membership bit-lane arrays
/// of `ceil(n_sites / 64)` lanes each. This is the closed form of
/// `SwarKernelState::ensure_sites`'s allocation, exported so the
/// static certifier (`opd-analyze`) can bound detector memory without
/// constructing a kernel.
#[must_use]
pub fn swar_footprint_bytes(n_sites: u64) -> u64 {
    let lanes = n_sites.div_ceil(64);
    3 * core::mem::size_of::<u32>() as u64 * n_sites
        + 2 * core::mem::size_of::<u64>() as u64 * lanes
}

/// One SWAR-kernel run over a pre-interned trace: the three run
/// indices plus the count/bit state (see the module docs).
///
/// The state storage is generic: the engine-driven run borrows the
/// per-thread scratch (`S = &mut SwarKernelState`, the default), while
/// a [`fork`](ForkableKernel::fork) owns a snapshot
/// (`S = SwarKernelState`) so phase-entering sweep members can evolve
/// their windows independently of the shared FIFO they forked from.
pub(crate) struct SwarWindows<'a, S = &'a mut SwarKernelState>
where
    S: BorrowMut<SwarKernelState>,
{
    ids: &'a [u32],
    /// `Some` in rank mode; `None` in dense mode.
    index: Option<&'a SiteIndex>,
    st: S,
    n_sites: usize,
    lanes: usize,
    cw_cap: usize,
    tw_cap: usize,
    /// TW = `ids[a..b)`, CW = `ids[b..c)`; `a` is the front offset.
    a: usize,
    b: usize,
    c: usize,
    warm: bool,
}

impl<'a> SwarWindows<'a> {
    /// Starts a run of `trace` with the given window capacities.
    /// `skip` selects rank mode (when eligible) per
    /// [`RANK_MODE_MIN_SKIP`].
    pub(crate) fn begin(
        st: &'a mut SwarKernelState,
        trace: &'a InternedTrace,
        skip: usize,
        cw_cap: usize,
        tw_cap: usize,
    ) -> SwarWindows<'a> {
        let n_sites = trace.distinct_count() as usize;
        let lanes = n_sites.div_ceil(64);
        let index = if skip >= RANK_MODE_MIN_SKIP {
            trace.try_site_index()
        } else {
            None
        };
        st.ensure_sites(n_sites);
        if index.is_none() {
            st.cw_counts[..n_sites].fill(0);
            st.tw_counts[..n_sites].fill(0);
            st.cw_bits[..lanes].fill(0);
            st.tw_bits[..lanes].fill(0);
        }
        SwarWindows {
            ids: trace.ids(),
            index,
            st,
            n_sites,
            lanes,
            cw_cap,
            tw_cap,
            a: 0,
            b: 0,
            c: 0,
            warm: false,
        }
    }
}

impl<'a> ForkableKernel for SwarWindows<'a> {
    type Forked = SwarWindows<'a, SwarKernelState>;

    fn fork(&self) -> Self::Forked {
        SwarWindows {
            ids: self.ids,
            index: self.index,
            st: (*self.st).clone(),
            n_sites: self.n_sites,
            lanes: self.lanes,
            cw_cap: self.cw_cap,
            tw_cap: self.tw_cap,
            a: self.a,
            b: self.b,
            c: self.c,
            warm: self.warm,
        }
    }
}

impl<'a, S: BorrowMut<SwarKernelState>> SwarWindows<'a, S> {
    /// Adds `ids[lo..hi)` to the CW counts (incoming elements).
    fn dense_add_cw(&mut self, lo: usize, hi: usize) {
        let ids = self.ids;
        let st = self.st.borrow_mut();
        for &s in &ids[lo..hi] {
            let s = s as usize;
            st.cw_counts[s] += 1;
            st.cw_bits[s >> 6] |= 1u64 << (s & 63);
        }
    }

    /// Transfers `ids[lo..hi)` from the CW to the TW. The membership
    /// bit is cleared branchlessly when a count reaches zero.
    fn dense_cw_to_tw(&mut self, lo: usize, hi: usize) {
        let ids = self.ids;
        let st = self.st.borrow_mut();
        for &s in &ids[lo..hi] {
            let s = s as usize;
            let count = st.cw_counts[s] - 1;
            st.cw_counts[s] = count;
            st.cw_bits[s >> 6] &= !(u64::from(count == 0) << (s & 63));
            st.tw_counts[s] += 1;
            st.tw_bits[s >> 6] |= 1u64 << (s & 63);
        }
    }

    /// Evicts `ids[lo..hi)` from the TW.
    fn dense_evict_tw(&mut self, lo: usize, hi: usize) {
        let ids = self.ids;
        let st = self.st.borrow_mut();
        for &s in &ids[lo..hi] {
            let s = s as usize;
            let count = st.tw_counts[s] - 1;
            st.tw_counts[s] = count;
            st.tw_bits[s >> 6] &= !(u64::from(count == 0) << (s & 63));
        }
    }

    fn dense_similarity(&self, model: ModelPolicy, cw_len: usize, tw_len: usize) -> f64 {
        let st = self.st.borrow();
        match model {
            ModelPolicy::UnweightedSet => {
                let (mut distinct, mut shared) = (0u64, 0u64);
                for (cw, tw) in st.cw_bits[..self.lanes]
                    .iter()
                    .zip(&st.tw_bits[..self.lanes])
                {
                    distinct += u64::from(cw.count_ones());
                    shared += u64::from((cw & tw).count_ones());
                }
                exact::unweighted(shared, distinct)
            }
            ModelPolicy::WeightedSet => {
                let (t, c) = (tw_len as u64, cw_len as u64);
                let mut sum = 0u64;
                for (cwc, twc) in st.cw_counts[..self.n_sites]
                    .iter()
                    .zip(&st.tw_counts[..self.n_sites])
                {
                    sum += (u64::from(*cwc) * t).min(u64::from(*twc) * c);
                }
                exact::weighted(sum, cw_len, tw_len)
            }
            ModelPolicy::Pearson => {
                let (mut n, mut shared) = (0u64, 0u64);
                for (cw, tw) in st.cw_bits[..self.lanes]
                    .iter()
                    .zip(&st.tw_bits[..self.lanes])
                {
                    n += u64::from((cw | tw).count_ones());
                    shared += u64::from((cw & tw).count_ones());
                }
                let mut sums = exact::PearsonSums::default();
                for (cwc, twc) in st.cw_counts[..self.n_sites]
                    .iter()
                    .zip(&st.tw_counts[..self.n_sites])
                {
                    sums.add(*cwc, *twc);
                }
                exact::pearson(n, sums, shared)
            }
        }
    }

    fn rank_similarity(
        &self,
        index: &SiteIndex,
        model: ModelPolicy,
        cw_len: usize,
        tw_len: usize,
    ) -> f64 {
        let ra = index.ranker(self.a);
        let rb = index.ranker(self.b);
        let rc = index.ranker(self.c);
        match model {
            ModelPolicy::UnweightedSet => {
                let (mut distinct, mut shared) = (0u64, 0u64);
                for s in 0..self.n_sites {
                    let rbs = rb.rank(s);
                    let cw = rc.rank(s) - rbs;
                    let tw = rbs - ra.rank(s);
                    distinct += u64::from(cw > 0);
                    shared += u64::from(cw > 0 && tw > 0);
                }
                exact::unweighted(shared, distinct)
            }
            ModelPolicy::WeightedSet => {
                let (t, c) = (tw_len as u64, cw_len as u64);
                let mut sum = 0u64;
                for s in 0..self.n_sites {
                    let rbs = rb.rank(s);
                    let cw = rc.rank(s) - rbs;
                    let tw = rbs - ra.rank(s);
                    sum += (u64::from(cw) * t).min(u64::from(tw) * c);
                }
                exact::weighted(sum, cw_len, tw_len)
            }
            ModelPolicy::Pearson => {
                let (mut n, mut shared) = (0u64, 0u64);
                let mut sums = exact::PearsonSums::default();
                for s in 0..self.n_sites {
                    let rbs = rb.rank(s);
                    let cw = rc.rank(s) - rbs;
                    let tw = rbs - ra.rank(s);
                    n += u64::from(cw > 0 || tw > 0);
                    shared += u64::from(cw > 0 && tw > 0);
                    sums.add(cw, tw);
                }
                exact::pearson(n, sums, shared)
            }
        }
    }
}

impl<S: BorrowMut<SwarKernelState>> WindowKernel for SwarWindows<'_, S> {
    fn advance(&mut self, chunk: &[u32], tw_grows: bool) {
        debug_assert!(
            core::ptr::eq(chunk.as_ptr(), self.ids[self.c..].as_ptr()),
            "SWAR kernel must be fed the trace's own chunks in order"
        );
        let k = chunk.len();
        let c2 = self.c + k;
        // Closed forms of the per-element loop. The CW does at most
        // one CW→TW transfer per push (an over-full CW — a phase-end
        // flush can keep more than `cw_cap` — drains by exactly its
        // intake), the TW eviction drain runs to quiescence:
        let cw0 = self.c - self.b;
        let cw2 = if cw0 >= self.cw_cap {
            cw0
        } else {
            (cw0 + k).min(self.cw_cap)
        };
        let b2 = c2 - cw2;
        let a2 = if tw_grows {
            self.a
        } else {
            self.a.max(b2.saturating_sub(self.tw_cap))
        };
        if self.index.is_none() {
            // Dirty-site updates, in dependency order: elements enter
            // the CW before the transfer span may re-move them, and
            // enter the TW before the eviction span may drop them.
            self.dense_add_cw(self.c, c2);
            self.dense_cw_to_tw(self.b, b2);
            self.dense_evict_tw(self.a, a2);
        }
        self.a = a2;
        self.b = b2;
        self.c = c2;
        // Both warm conditions are monotone within one advance, so
        // the scalar kernel's per-push sticky check reduces to one
        // end-of-step check.
        if !self.warm && b2 - a2 >= self.tw_cap && cw2 >= self.cw_cap {
            self.warm = true;
        }
    }

    fn is_warm(&self) -> bool {
        self.warm
    }

    fn tw_len(&self) -> usize {
        self.b - self.a
    }

    fn similarity(&self, model: ModelPolicy) -> f64 {
        let cw_len = self.c - self.b;
        let tw_len = self.b - self.a;
        if cw_len == 0 || tw_len == 0 {
            return 0.0;
        }
        match self.index {
            None => self.dense_similarity(model, cw_len, tw_len),
            Some(index) => self.rank_similarity(index, model, cw_len, tw_len),
        }
    }

    fn anchor_index(&mut self, policy: AnchorPolicy) -> usize {
        let ids = self.ids;
        let tw = &ids[self.a..self.b];
        let st = self.st.borrow_mut();
        let counts: &[u32] = match self.index {
            None => &st.cw_counts,
            Some(index) => {
                // Rank mode keeps no materialized counts; rebuild the
                // CW's once per phase start.
                let rb = index.ranker(self.b);
                let rc = index.ranker(self.c);
                for (s, count) in st.anchor_counts[..self.n_sites].iter_mut().enumerate() {
                    *count = rc.rank(s) - rb.rank(s);
                }
                &st.anchor_counts
            }
        };
        match policy {
            AnchorPolicy::RightmostNoisy => {
                for j in (0..tw.len()).rev() {
                    if counts[tw[j] as usize] == 0 {
                        return j + 1;
                    }
                }
                0
            }
            AnchorPolicy::LeftmostNonNoisy => {
                for j in 0..tw.len() {
                    if counts[tw[j] as usize] > 0 {
                        return j;
                    }
                }
                tw.len()
            }
        }
    }

    fn offset_of_index(&self, index: usize) -> u64 {
        (self.a + index) as u64
    }

    fn anchor_and_resize(&mut self, anchor_idx: usize, resize: ResizePolicy) -> u64 {
        let anchor_offset = (self.a + anchor_idx) as u64;
        let tw_len = self.b - self.a;
        let a2 = self.a + anchor_idx.min(tw_len);
        // Slide extends the TW into the CW up to its capacity,
        // leaving at least one CW element — the closed form of the
        // scalar shift loop (a no-op whenever the TW already meets
        // its capacity or the CW is down to one element).
        let b2 = if resize == ResizePolicy::Slide {
            self.b.max((a2 + self.tw_cap).min(self.c.saturating_sub(1)))
        } else {
            self.b
        };
        if self.index.is_none() {
            self.dense_evict_tw(self.a, a2);
            self.dense_cw_to_tw(self.b, b2);
        }
        self.a = a2;
        self.b = b2;
        anchor_offset
    }

    fn clear_keep_last(&mut self, keep: usize) {
        let kept = keep.min(self.c - self.a);
        let front = self.c - kept;
        self.a = front;
        self.b = front;
        if self.index.is_none() {
            // O(sites) reset plus O(kept) re-seed beats walking the
            // whole (possibly phase-length) buffered run backward.
            let st = self.st.borrow_mut();
            st.cw_counts[..self.n_sites].fill(0);
            st.tw_counts[..self.n_sites].fill(0);
            st.cw_bits[..self.lanes].fill(0);
            st.tw_bits[..self.lanes].fill(0);
            self.dense_add_cw(front, self.c);
        }
        self.warm = false;
    }

    #[cfg(feature = "obs")]
    fn judge_ops(&self, model: ModelPolicy) -> u64 {
        let n = self.n_sites as u64;
        if self.index.is_some() {
            // Three rank lookups and a reduction per site.
            return 4 * n + 2;
        }
        let lanes = self.lanes as u64;
        match model {
            ModelPolicy::UnweightedSet => lanes + 2,
            ModelPolicy::WeightedSet => n + 2,
            ModelPolicy::Pearson => n + lanes + 2,
        }
    }
}
