//! The online phase detection framework of *Online Phase Detection
//! Algorithms* (CGO 2006, Section 2).
//!
//! A phase detector is an instantiation of the framework along three
//! orthogonal axes:
//!
//! * **window policy** — sizes of the current window (CW) and trailing
//!   window (TW), the skip factor, the trailing-window management
//!   ([`TwPolicy`]: constant or adaptive), and for the adaptive policy
//!   the [`AnchorPolicy`] and [`ResizePolicy`] of Section 5;
//! * **model policy** — how similarity between the two windows is
//!   computed ([`ModelPolicy`]: unweighted/asymmetric or
//!   weighted/symmetric sets);
//! * **analyzer policy** — how a similarity value is mapped to a phase
//!   (`P`) or transition (`T`) state ([`AnalyzerPolicy`]: fixed
//!   threshold or adaptive running average).
//!
//! [`DetectorConfig`] captures one choice of all parameters;
//! [`PhaseDetector`] is the runtime of Figure 3 of the paper.
//!
//! # Examples
//!
//! ```
//! use opd_core::{DetectorConfig, PhaseDetector};
//! use opd_trace::{MethodId, ProfileElement};
//!
//! let config = DetectorConfig::builder()
//!     .current_window(4)
//!     .trailing_window(4)
//!     .build()?;
//! let mut detector = PhaseDetector::new(config);
//!
//! // A stream that repeats one branch site forever is one long phase.
//! let e = ProfileElement::new(MethodId::new(0), 0, true);
//! let mut last = opd_trace::PhaseState::Transition;
//! for _ in 0..32 {
//!     last = detector.process(&[e]);
//! }
//! assert!(last.is_phase());
//! # Ok::<(), opd_core::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(feature = "portable-simd", feature(portable_simd))]

mod analyzer;
mod boundary;
mod config;
mod detector;
mod intern;
mod kernel;
mod model;
mod predict;
mod recur;
mod related;
mod sweep;
mod window;

pub use analyzer::{Analyzer, AnalyzerPolicy};
pub use boundary::{anchored_intervals, detected_intervals, DetectedPhase};
pub use config::{ConfigError, ConfigShape, DetectorConfig, DetectorConfigBuilder};
pub use detector::{DetectorError, NullSink, PhaseDetector, StateSink};
pub use intern::InternedTrace;
pub use kernel::{swar_footprint_bytes, KernelKind, RANK_MODE_MIN_SKIP};
pub use model::ModelPolicy;
pub use predict::{PhasePredictor, Prediction};
pub use recur::{PhaseId, PhaseRegistry, PhaseSignature, RecurringPhase, RecurringPhaseDetector};
pub use related::{run_online, OnlineDetector, PcRangeDetector};
pub use sweep::{SweepEngine, SweepError, SweepScratch, SweepUnit, UnitKind};
pub use window::{AnchorPolicy, ResizePolicy, TwPolicy, Windows};
