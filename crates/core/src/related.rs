//! Related-work detectors expressed against the same online interface,
//! demonstrating the framework's claim (Section 6 of the paper) that
//! extant approaches are instantiations or near-instantiations of it.
//!
//! * [`OnlineDetector`] — the object-safe interface every online
//!   detector in this workspace implements;
//! * [`PcRangeDetector`] — the detector of Lu et al. (*Design and
//!   implementation of a lightweight dynamic optimization system*,
//!   JILP 2004): the average sampled PC of the most recent window is
//!   compared against mean ± k·stddev of the previous seven windows,
//!   and two consecutive out-of-range windows end the phase;
//! * Das et al.'s Pearson-coefficient model is available as
//!   [`ModelPolicy::Pearson`](crate::ModelPolicy::Pearson) inside the
//!   regular framework detector.

use std::collections::VecDeque;

use opd_trace::{BranchTrace, PhaseState, ProfileElement, StateSeq};

use crate::config::ConfigError;
use crate::detector::PhaseDetector;
use crate::recur::RecurringPhaseDetector;

/// Any online phase detector: consumes profile elements step by step
/// and labels each step `P` or `T`.
///
/// The trait is object-safe, so heterogeneous detector collections
/// (framework instantiations next to related-work detectors) can be
/// driven uniformly; see [`run_online`].
pub trait OnlineDetector {
    /// Preferred number of elements per step (the skip factor).
    fn step_len(&self) -> usize;

    /// Consumes one step of elements, returning the state attributed
    /// to all of them.
    fn process_step(&mut self, elements: &[ProfileElement]) -> PhaseState;

    /// Flushes end-of-stream bookkeeping (optional).
    fn finish_stream(&mut self) {}
}

impl OnlineDetector for PhaseDetector {
    fn step_len(&self) -> usize {
        self.config().skip_factor()
    }

    fn process_step(&mut self, elements: &[ProfileElement]) -> PhaseState {
        self.process(elements)
    }

    fn finish_stream(&mut self) {
        self.close_open_phase();
    }
}

impl OnlineDetector for RecurringPhaseDetector {
    fn step_len(&self) -> usize {
        self.detector().config().skip_factor()
    }

    fn process_step(&mut self, elements: &[ProfileElement]) -> PhaseState {
        self.process(elements)
    }

    fn finish_stream(&mut self) {
        self.finish();
    }
}

/// Drives any online detector over a whole trace, producing one state
/// per element.
pub fn run_online(detector: &mut dyn OnlineDetector, trace: &BranchTrace) -> StateSeq {
    let mut seq = StateSeq::with_capacity(trace.len());
    let step = detector.step_len().max(1);
    for chunk in trace.as_slice().chunks(step) {
        let state = detector.process_step(chunk);
        seq.push_n(state, chunk.len());
    }
    detector.finish_stream();
    seq
}

/// The Lu et al. (JILP 2004) phase detector: compares the average
/// "PC" of the most recent sample window against an interval derived
/// from the previous windows' averages.
///
/// Here the packed profile-element value stands in for the sampled
/// program counter; both identify the executing code region.
///
/// # Examples
///
/// ```
/// use opd_core::{run_online, PcRangeDetector};
/// use opd_trace::{BranchTrace, MethodId, ProfileElement};
///
/// let mut det = PcRangeDetector::new(64, 2.0)?;
/// let trace: BranchTrace = (0..2_000u32)
///     .map(|i| ProfileElement::new(MethodId::new(i / 1_000), i % 5, true))
///     .collect();
/// let states = run_online(&mut det, &trace);
/// assert_eq!(states.len(), 2_000);
/// # Ok::<(), opd_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PcRangeDetector {
    window: usize,
    history_cap: usize,
    tolerance: f64,
    consecutive_needed: u32,
    acc_sum: f64,
    acc_n: usize,
    history: VecDeque<f64>,
    out_count: u32,
    state: PhaseState,
}

impl PcRangeDetector {
    /// Lu et al.'s sample-window size (4K samples).
    pub const DEFAULT_WINDOW: usize = 4_096;
    /// Number of previous windows forming the range (seven).
    pub const HISTORY: usize = 7;
    /// Consecutive out-of-range windows that end a phase (two).
    pub const CONSECUTIVE: u32 = 2;

    /// Creates a detector with the given sample-window size and range
    /// tolerance (the `k` in mean ± k·stddev).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroWindow`] for a zero window and
    /// [`ConfigError::BadThreshold`] for a non-positive or non-finite
    /// tolerance.
    pub fn new(window: usize, tolerance: f64) -> Result<Self, ConfigError> {
        if window == 0 {
            return Err(ConfigError::ZeroWindow);
        }
        if !tolerance.is_finite() || tolerance <= 0.0 {
            return Err(ConfigError::BadThreshold(tolerance));
        }
        Ok(PcRangeDetector {
            window,
            history_cap: Self::HISTORY,
            tolerance,
            consecutive_needed: Self::CONSECUTIVE,
            acc_sum: 0.0,
            acc_n: 0,
            history: VecDeque::with_capacity(Self::HISTORY),
            out_count: 0,
            state: PhaseState::Transition,
        })
    }

    /// The detector with the paper's parameters: 4K samples, 2σ range.
    ///
    /// # Panics
    ///
    /// Never panics; the default parameters are valid.
    #[must_use]
    pub fn lu2004() -> Self {
        Self::new(Self::DEFAULT_WINDOW, 2.0).expect("default parameters are valid")
    }

    /// Current output state.
    #[must_use]
    pub fn state(&self) -> PhaseState {
        self.state
    }

    fn complete_window(&mut self) {
        let avg = self.acc_sum / self.acc_n as f64;
        self.acc_sum = 0.0;
        self.acc_n = 0;

        if self.history.len() < self.history_cap {
            // Still learning the range for the current phase.
            self.history.push_back(avg);
            self.state = if self.history.len() == self.history_cap {
                PhaseState::Phase
            } else {
                PhaseState::Transition
            };
            self.out_count = 0;
            return;
        }

        let n = self.history.len() as f64;
        let mean = self.history.iter().sum::<f64>() / n;
        let var = self
            .history
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        let sd = var.sqrt().max(mean.abs() * 1e-9 + 1e-9);

        if (avg - mean).abs() > self.tolerance * sd {
            self.out_count += 1;
        } else {
            self.out_count = 0;
            self.history.push_back(avg);
            if self.history.len() > self.history_cap {
                self.history.pop_front();
            }
        }

        if self.out_count >= self.consecutive_needed {
            // Phase ended: forget the range and relearn.
            self.state = PhaseState::Transition;
            self.history.clear();
            self.out_count = 0;
        } else {
            self.state = PhaseState::Phase;
        }
    }
}

impl OnlineDetector for PcRangeDetector {
    fn step_len(&self) -> usize {
        1
    }

    fn process_step(&mut self, elements: &[ProfileElement]) -> PhaseState {
        for e in elements {
            // The paper samples PC addresses; the packed element value
            // plays that role here.
            self.acc_sum += e.raw() as f64;
            self.acc_n += 1;
            if self.acc_n == self.window {
                self.complete_window();
            }
        }
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_trace::MethodId;

    fn elem(method: u32, offset: u32) -> ProfileElement {
        ProfileElement::new(MethodId::new(method), offset, true)
    }

    fn uniform(method: u32, len: usize) -> impl Iterator<Item = ProfileElement> {
        (0..len).map(move |i| elem(method, (i % 5) as u32))
    }

    #[test]
    fn stable_stream_reaches_phase_after_learning() {
        let mut d = PcRangeDetector::new(16, 2.0).unwrap();
        let trace: BranchTrace = uniform(1, 16 * 20).collect();
        let states = run_online(&mut d, &trace);
        // Learning: 7 windows of 16 = 112 elements of T (the last
        // learning window flips to P when it completes).
        assert!(states.as_slice()[..16 * 6]
            .iter()
            .all(|s| s.is_transition()));
        assert!(states.as_slice()[16 * 7..].iter().all(|s| s.is_phase()));
    }

    #[test]
    fn pc_jump_ends_the_phase() {
        let mut d = PcRangeDetector::new(16, 2.0).unwrap();
        let trace: BranchTrace = uniform(1, 16 * 12).chain(uniform(500, 16 * 12)).collect();
        let states = run_online(&mut d, &trace);
        // The detector was in phase before the jump and reports a
        // transition within a few windows after it.
        let before = &states.as_slice()[16 * 11..16 * 12];
        assert!(before.iter().all(|s| s.is_phase()));
        let after = &states.as_slice()[16 * 12..16 * 16];
        assert!(after.iter().any(|s| s.is_transition()), "jump not detected");
        // And relearns the new phase eventually: the flush costs seven
        // learning windows (ending inside window 21), after which the
        // new steady state is P.
        let tail = &states.as_slice()[16 * 22..];
        assert!(tail.iter().all(|s| s.is_phase()));
    }

    #[test]
    fn single_outlier_window_is_tolerated() {
        // One noisy window must not end the phase (two consecutive are
        // required).
        let mut d = PcRangeDetector::new(8, 2.0).unwrap();
        let mut elems: Vec<ProfileElement> = uniform(1, 8 * 10).collect();
        elems.extend(uniform(900, 8)); // one outlier window
        elems.extend(uniform(1, 8 * 10));
        let states = run_online(&mut d, &BranchTrace::from(elems));
        // After the outlier window the state recovers to P without an
        // intervening flush (flush would cost 7 windows of T).
        let recovery = &states.as_slice()[8 * 11..8 * 13];
        assert!(recovery.iter().all(|s| s.is_phase()), "{recovery:?}");
    }

    #[test]
    fn parameters_validated() {
        assert!(PcRangeDetector::new(0, 2.0).is_err());
        assert!(PcRangeDetector::new(16, 0.0).is_err());
        assert!(PcRangeDetector::new(16, f64::NAN).is_err());
        let d = PcRangeDetector::lu2004();
        assert_eq!(d.step_len(), 1);
        assert!(d.state().is_transition());
    }

    #[test]
    fn framework_detectors_share_the_interface() {
        let trace: BranchTrace = uniform(1, 300).collect();
        let config = crate::DetectorConfig::builder()
            .current_window(8)
            .build()
            .unwrap();
        let mut dets: Vec<Box<dyn OnlineDetector>> = vec![
            Box::new(PhaseDetector::new(config)),
            Box::new(RecurringPhaseDetector::new(config, 0.5).unwrap()),
            Box::new(PcRangeDetector::new(16, 2.0).unwrap()),
        ];
        for d in &mut dets {
            let states = run_online(d.as_mut(), &trace);
            assert_eq!(states.len(), 300);
        }
    }
}
