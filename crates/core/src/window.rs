//! The two-window similarity model state: current window (CW) and
//! trailing window (TW) over a stream of interned profile elements.
//!
//! A single deque holds the trailing window followed by the current
//! window. New elements enter the CW; elements ageing out of a full CW
//! transfer into the TW; the TW evicts its oldest element when over
//! capacity — unless an adaptive detector is in phase, in which case
//! the TW grows to hold the entire phase (Section 2 of the paper).

use core::fmt;
use std::collections::VecDeque;

use crate::model::exact;

/// Trailing-window management policy (Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TwPolicy {
    /// The TW keeps a fixed size throughout.
    Constant,
    /// The TW grows to include all elements of the current phase once a
    /// phase is detected, and is flushed when the phase ends.
    Adaptive,
}

impl fmt::Display for TwPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TwPolicy::Constant => "constant",
            TwPolicy::Adaptive => "adaptive",
        })
    }
}

/// Where the anchor point — the reported start of a detected phase —
/// is placed within the trailing window (Section 5).
///
/// *Noisy* elements are elements in the TW that do not occur in the CW.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AnchorPolicy {
    /// One element to the right of the rightmost noisy element (RN).
    RightmostNoisy,
    /// At the leftmost non-noisy element (LNN).
    LeftmostNonNoisy,
}

impl fmt::Display for AnchorPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AnchorPolicy::RightmostNoisy => "RN",
            AnchorPolicy::LeftmostNonNoisy => "LNN",
        })
    }
}

/// How windows are resized when a phase starts (Section 5; adaptive
/// trailing window only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ResizePolicy {
    /// Slide the TW right so its left boundary sits at the anchor
    /// point, keeping the TW's length and shrinking the CW (which then
    /// refills while comparisons continue).
    Slide,
    /// Move only the TW's left boundary to the anchor point, shrinking
    /// the TW and leaving the CW untouched.
    Move,
}

impl fmt::Display for ResizePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResizePolicy::Slide => "slide",
            ResizePolicy::Move => "move",
        })
    }
}

/// The CW/TW pair over interned element ids, with incrementally
/// maintained multiset counts.
///
/// This is the `Model`'s window state from Figure 3 of the paper,
/// factored out so that similarity models
/// ([`ModelPolicy`](crate::ModelPolicy)) are pure functions of it.
#[derive(Debug, Clone)]
pub struct Windows {
    buf: VecDeque<u32>,
    tw_len: usize,
    cw_cap: usize,
    tw_cap: usize,
    /// Per-site occurrence counts inside each window.
    cw_counts: Vec<u32>,
    tw_counts: Vec<u32>,
    /// Number of distinct sites present in the CW.
    distinct_cw: usize,
    /// Number of distinct sites present in both windows.
    distinct_shared: usize,
    /// Distinct sites currently in the CW (for the weighted model's
    /// O(|distinct CW|) similarity computation).
    cw_sites: Vec<u32>,
    cw_site_pos: Vec<u32>,
    /// Distinct sites currently in the TW (for the Pearson model's
    /// union iteration).
    tw_sites: Vec<u32>,
    tw_site_pos: Vec<u32>,
    /// Global element offset of `buf[0]`.
    front_offset: u64,
    /// Set once both windows have filled to capacity; reset by
    /// [`clear_keep_last`](Windows::clear_keep_last).
    warm: bool,
    /// Incrementally maintained Σ_e min(cw_count·tw_cap, tw_count·cw_cap),
    /// kept only when `track_min_sum` is set. Exact for the weighted
    /// similarity whenever both windows sit at their capacities.
    min_sum: u64,
    track_min_sum: bool,
}

const NO_POS: u32 = u32::MAX;

impl Windows {
    /// Creates empty windows with the given capacities.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    #[must_use]
    pub fn new(cw_cap: usize, tw_cap: usize) -> Self {
        Self::with_weighted_tracking(cw_cap, tw_cap, true)
    }

    /// Creates empty windows, choosing whether to maintain the
    /// incremental weighted min-sum (detectors using only the
    /// unweighted model can skip that bookkeeping).
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    #[must_use]
    pub fn with_weighted_tracking(cw_cap: usize, tw_cap: usize, track: bool) -> Self {
        assert!(
            cw_cap > 0 && tw_cap > 0,
            "window capacities must be positive"
        );
        Windows {
            buf: VecDeque::with_capacity(cw_cap + tw_cap + 1),
            tw_len: 0,
            cw_cap,
            tw_cap,
            cw_counts: Vec::new(),
            tw_counts: Vec::new(),
            distinct_cw: 0,
            distinct_shared: 0,
            cw_sites: Vec::new(),
            cw_site_pos: Vec::new(),
            tw_sites: Vec::new(),
            tw_site_pos: Vec::new(),
            front_offset: 0,
            warm: false,
            min_sum: 0,
            track_min_sum: track,
        }
    }

    /// `min(cw_count·tw_cap, tw_count·cw_cap)` for one site — the
    /// unnormalized weighted-similarity term.
    #[inline]
    fn term(&self, site: u32) -> u64 {
        let a = u64::from(self.cw_counts[site as usize]);
        let b = u64::from(self.tw_counts[site as usize]);
        (a * self.tw_cap as u64).min(b * self.cw_cap as u64)
    }

    /// Empties the windows and adopts new capacities, *reusing* every
    /// allocation (the element deque, count tables, and distinct-site
    /// lists). This is the sweep engine's scratch-reuse path: one
    /// `Windows` value serves many configurations over the same trace
    /// without re-allocating per-site tables per config.
    ///
    /// Counts are cleared sparsely via the distinct-site lists, so the
    /// cost is `O(distinct sites present)`, not `O(site table)`.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn reset_shape(&mut self, cw_cap: usize, tw_cap: usize, track: bool) {
        assert!(
            cw_cap > 0 && tw_cap > 0,
            "window capacities must be positive"
        );
        for &site in &self.cw_sites {
            self.cw_counts[site as usize] = 0;
            self.cw_site_pos[site as usize] = NO_POS;
        }
        for &site in &self.tw_sites {
            self.tw_counts[site as usize] = 0;
            self.tw_site_pos[site as usize] = NO_POS;
        }
        self.cw_sites.clear();
        self.tw_sites.clear();
        self.buf.clear();
        self.tw_len = 0;
        self.cw_cap = cw_cap;
        self.tw_cap = tw_cap;
        self.distinct_cw = 0;
        self.distinct_shared = 0;
        self.front_offset = 0;
        self.warm = false;
        self.min_sum = 0;
        self.track_min_sum = track;
    }

    /// Creates empty windows with every per-site table pre-sized for
    /// `n_sites` sites — the construction path for callers that know a
    /// static alphabet bound up front, so the steady state is
    /// allocation-free from the first element (not just after a
    /// warm-up run).
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    #[must_use]
    pub fn with_site_capacity(cw_cap: usize, tw_cap: usize, track: bool, n_sites: usize) -> Self {
        let mut w = Self::with_weighted_tracking(cw_cap, tw_cap, track);
        w.ensure_sites(n_sites);
        w
    }

    /// Grows the per-site tables to cover ids `0..n_sites`.
    pub fn ensure_sites(&mut self, n_sites: usize) {
        if self.cw_counts.len() < n_sites {
            self.cw_counts.resize(n_sites, 0);
            self.tw_counts.resize(n_sites, 0);
            self.cw_site_pos.resize(n_sites, NO_POS);
            self.tw_site_pos.resize(n_sites, NO_POS);
            // The distinct-site lists hold at most one entry per site;
            // sizing them here (rather than as they grow) keeps every
            // later push allocation-free.
            let reserve = n_sites - self.cw_sites.len();
            self.cw_sites.reserve(reserve);
            let reserve = n_sites - self.tw_sites.len();
            self.tw_sites.reserve(reserve);
        }
    }

    /// Current-window length.
    #[must_use]
    pub fn cw_len(&self) -> usize {
        self.buf.len() - self.tw_len
    }

    /// Trailing-window length.
    #[must_use]
    pub fn tw_len(&self) -> usize {
        self.tw_len
    }

    /// Current-window capacity.
    #[must_use]
    pub fn cw_cap(&self) -> usize {
        self.cw_cap
    }

    /// Trailing-window capacity (the adaptive policy may exceed it
    /// while in phase).
    #[must_use]
    pub fn tw_cap(&self) -> usize {
        self.tw_cap
    }

    /// `true` once both windows have filled since the last flush.
    #[must_use]
    pub fn is_warm(&self) -> bool {
        self.warm
    }

    /// Number of distinct sites in the CW.
    #[must_use]
    pub fn distinct_cw(&self) -> usize {
        self.distinct_cw
    }

    /// Number of distinct sites present in both windows.
    #[must_use]
    pub fn distinct_shared(&self) -> usize {
        self.distinct_shared
    }

    /// The distinct sites currently in the CW.
    #[must_use]
    pub fn cw_sites(&self) -> &[u32] {
        &self.cw_sites
    }

    /// The distinct sites currently in the TW.
    #[must_use]
    pub fn tw_sites(&self) -> &[u32] {
        &self.tw_sites
    }

    /// Occurrence count of `site` in the CW.
    #[must_use]
    pub fn cw_count(&self, site: u32) -> u32 {
        self.cw_counts.get(site as usize).copied().unwrap_or(0)
    }

    /// Occurrence count of `site` in the TW.
    #[must_use]
    pub fn tw_count(&self, site: u32) -> u32 {
        self.tw_counts.get(site as usize).copied().unwrap_or(0)
    }

    fn inc_cw(&mut self, site: u32) {
        if self.track_min_sum {
            self.min_sum -= self.term(site);
        }
        let c = &mut self.cw_counts[site as usize];
        *c += 1;
        if *c == 1 {
            self.distinct_cw += 1;
            self.cw_site_pos[site as usize] = self.cw_sites.len() as u32;
            self.cw_sites.push(site);
            if self.tw_counts[site as usize] > 0 {
                self.distinct_shared += 1;
            }
        }
        if self.track_min_sum {
            self.min_sum += self.term(site);
        }
    }

    fn dec_cw(&mut self, site: u32) {
        if self.track_min_sum {
            self.min_sum -= self.term(site);
        }
        let c = &mut self.cw_counts[site as usize];
        debug_assert!(*c > 0);
        *c -= 1;
        if *c == 0 {
            self.distinct_cw -= 1;
            // Swap-remove the site from the distinct list. Invariant:
            // the count just fell 1 -> 0, so the site was appended to
            // `cw_sites` when it rose 0 -> 1 and `pos` still indexes
            // it (swap-removal keeps `cw_site_pos` current).
            let pos = self.cw_site_pos[site as usize] as usize;
            debug_assert!(pos < self.cw_sites.len() && self.cw_sites[pos] == site);
            if pos < self.cw_sites.len() {
                let last = self.cw_sites[self.cw_sites.len() - 1];
                self.cw_sites.swap_remove(pos);
                if pos < self.cw_sites.len() {
                    self.cw_site_pos[last as usize] = pos as u32;
                }
            }
            self.cw_site_pos[site as usize] = NO_POS;
            if self.tw_counts[site as usize] > 0 {
                self.distinct_shared -= 1;
            }
        }
        if self.track_min_sum {
            self.min_sum += self.term(site);
        }
    }

    fn inc_tw(&mut self, site: u32) {
        if self.track_min_sum {
            self.min_sum -= self.term(site);
        }
        let c = &mut self.tw_counts[site as usize];
        *c += 1;
        if *c == 1 {
            self.tw_site_pos[site as usize] = self.tw_sites.len() as u32;
            self.tw_sites.push(site);
            if self.cw_counts[site as usize] > 0 {
                self.distinct_shared += 1;
            }
        }
        if self.track_min_sum {
            self.min_sum += self.term(site);
        }
    }

    fn dec_tw(&mut self, site: u32) {
        if self.track_min_sum {
            self.min_sum -= self.term(site);
        }
        let c = &mut self.tw_counts[site as usize];
        debug_assert!(*c > 0);
        *c -= 1;
        if *c == 0 {
            // Invariant: mirrors `dec_cw` — a site whose TW count just
            // reached zero is present in `tw_sites` at `pos`.
            let pos = self.tw_site_pos[site as usize] as usize;
            debug_assert!(pos < self.tw_sites.len() && self.tw_sites[pos] == site);
            if pos < self.tw_sites.len() {
                let last = self.tw_sites[self.tw_sites.len() - 1];
                self.tw_sites.swap_remove(pos);
                if pos < self.tw_sites.len() {
                    self.tw_site_pos[last as usize] = pos as u32;
                }
            }
            self.tw_site_pos[site as usize] = NO_POS;
            if self.cw_counts[site as usize] > 0 {
                self.distinct_shared -= 1;
            }
        }
        if self.track_min_sum {
            self.min_sum += self.term(site);
        }
    }

    /// Transfers the oldest CW element into the TW.
    fn shift_cw_to_tw(&mut self) {
        let site = self.buf[self.tw_len];
        self.dec_cw(site);
        self.inc_tw(site);
        self.tw_len += 1;
    }

    /// Consumes one element. `tw_grows` suppresses trailing-window
    /// eviction (adaptive policy, in phase).
    pub fn push(&mut self, site: u32, tw_grows: bool) {
        self.ensure_sites(site as usize + 1);
        self.buf.push_back(site);
        self.inc_cw(site);
        if self.cw_len() > self.cw_cap {
            self.shift_cw_to_tw();
        }
        if !tw_grows {
            // Invariant: `tw_len` counts a prefix of `buf`, so a
            // positive `tw_len` means the deque is non-empty.
            while self.tw_len > self.tw_cap {
                debug_assert!(!self.buf.is_empty());
                let Some(evicted) = self.buf.pop_front() else {
                    break;
                };
                self.dec_tw(evicted);
                self.tw_len -= 1;
                self.front_offset += 1;
            }
        }
        if !self.warm && self.tw_len >= self.tw_cap && self.cw_len() >= self.cw_cap {
            self.warm = true;
        }
    }

    /// Flushes both windows, keeping the most recent `keep` elements as
    /// the new (partial) CW — the paper's `clearWindows` plus CW
    /// re-seeding with the last `skipFactor` elements.
    pub fn clear_keep_last(&mut self, keep: usize) {
        let total = self.buf.len();
        let drop = total.saturating_sub(keep);
        // Invariant: `drop <= total`, so each of the `drop` pops finds
        // an element.
        for _ in 0..drop {
            debug_assert!(!self.buf.is_empty());
            let Some(site) = self.buf.pop_front() else {
                break;
            };
            if self.tw_len > 0 {
                self.dec_tw(site);
                self.tw_len -= 1;
            } else {
                self.dec_cw(site);
            }
            self.front_offset += 1;
        }
        // Any kept elements that were still in the TW become CW.
        while self.tw_len > 0 {
            let site = self.buf[self.tw_len - 1];
            self.dec_tw(site);
            self.inc_cw(site);
            self.tw_len -= 1;
        }
        self.warm = false;
    }

    /// Computes the anchor index (relative to the TW front) for a phase
    /// that was just detected, per the anchor policy. Returns `0` when
    /// the TW contains no noisy element (RN) and `tw_len` when it
    /// contains no non-noisy element (LNN).
    #[must_use]
    pub fn anchor_index(&self, policy: AnchorPolicy) -> usize {
        match policy {
            AnchorPolicy::RightmostNoisy => {
                for j in (0..self.tw_len).rev() {
                    if self.cw_counts[self.buf[j] as usize] == 0 {
                        return j + 1;
                    }
                }
                0
            }
            AnchorPolicy::LeftmostNonNoisy => {
                for j in 0..self.tw_len {
                    if self.cw_counts[self.buf[j] as usize] > 0 {
                        return j;
                    }
                }
                self.tw_len
            }
        }
    }

    /// Global element offset corresponding to a TW-relative index.
    #[must_use]
    pub fn offset_of_index(&self, index: usize) -> u64 {
        self.front_offset + index as u64
    }

    /// Applies the anchor and resize policies at a phase start: drops
    /// the TW prefix before `anchor_idx`, then either slides the TW
    /// right (restoring its capacity at the CW's expense) or merely
    /// moves its left boundary. Returns the global offset of the anchor
    /// element.
    pub fn anchor_and_resize(&mut self, anchor_idx: usize, resize: ResizePolicy) -> u64 {
        let anchor_offset = self.offset_of_index(anchor_idx);
        // Invariant: the loop is bounded by `tw_len`, which counts a
        // prefix of `buf`, so each pop finds an element.
        for _ in 0..anchor_idx.min(self.tw_len) {
            debug_assert!(!self.buf.is_empty());
            let Some(site) = self.buf.pop_front() else {
                break;
            };
            self.dec_tw(site);
            self.tw_len -= 1;
            self.front_offset += 1;
        }
        if resize == ResizePolicy::Slide {
            // Extend the TW into the CW region up to its capacity,
            // leaving at least one element in the CW.
            while self.tw_len < self.tw_cap && self.cw_len() > 1 {
                self.shift_cw_to_tw();
            }
        }
        anchor_offset
    }

    /// Unweighted (asymmetric working-set) similarity: the fraction of
    /// distinct CW sites that also occur in the TW.
    #[must_use]
    pub fn unweighted_similarity(&self) -> f64 {
        if self.distinct_cw == 0 {
            0.0
        } else {
            self.distinct_shared as f64 / self.distinct_cw as f64
        }
    }

    /// Weighted (symmetric) similarity: the sum over sites of the
    /// minimum relative weight in each window.
    #[must_use]
    pub fn weighted_similarity(&self) -> f64 {
        let cw_len = self.cw_len();
        let tw_len = self.tw_len;
        if cw_len == 0 || tw_len == 0 {
            return 0.0;
        }
        // Fast path: with both windows exactly at capacity, the
        // incrementally maintained integer min-sum is exact.
        if self.track_min_sum && cw_len == self.cw_cap && tw_len == self.tw_cap {
            return exact::weighted(self.min_sum, self.cw_cap, self.tw_cap);
        }
        // Sites absent from the CW contribute min(0, ·) = 0, so the
        // CW support covers every non-zero term.
        let mut sum: u64 = 0;
        for &site in &self.cw_sites {
            let wc = u64::from(self.cw_counts[site as usize]) * tw_len as u64;
            let wt = u64::from(self.tw_counts[site as usize]) * cw_len as u64;
            sum += wc.min(wt);
        }
        exact::weighted(sum, cw_len, tw_len)
    }

    /// Pearson correlation of the two windows' site-count vectors over
    /// the union of their distinct sites, clamped to `[0, 1]` (negative
    /// correlation carries no more phase information than none).
    ///
    /// This models the region-monitoring approach of Das et al.
    /// (CGO 2006), which compares sample vectors by Pearson's
    /// coefficient against a fixed threshold. When either vector has
    /// zero variance the correlation is undefined; this returns `1.0`
    /// when the windows share their entire support (trivially similar)
    /// and `0.0` otherwise.
    #[must_use]
    pub fn pearson_similarity(&self) -> f64 {
        if self.cw_len() == 0 || self.tw_len == 0 {
            return 0.0;
        }
        // Union iteration: all CW sites, then TW-only sites. Integer
        // sums are order-independent, so the iteration order (unlike
        // the SWAR kernel's) does not affect the result.
        let mut n: u64 = self.cw_sites.len() as u64;
        let mut sums = exact::PearsonSums::default();
        for &site in &self.cw_sites {
            sums.add(self.cw_counts[site as usize], self.tw_counts[site as usize]);
        }
        for &site in &self.tw_sites {
            if self.cw_counts[site as usize] == 0 {
                n += 1;
                sums.add(0, self.tw_counts[site as usize]);
            }
        }
        exact::pearson(n, sums, self.distinct_shared as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds windows whose TW holds `tw` and CW holds `cw`, in order.
    fn windows_with(tw: &[u32], cw: &[u32]) -> Windows {
        let mut w = Windows::new(cw.len(), tw.len());
        for &site in tw.iter().chain(cw) {
            w.push(site, false);
        }
        assert_eq!(w.tw_len(), tw.len());
        assert_eq!(w.cw_len(), cw.len());
        w
    }

    #[test]
    fn fifo_flow_fills_cw_then_tw() {
        let mut w = Windows::new(2, 3);
        for site in 0..5 {
            w.push(site, false);
            assert!(w.cw_len() <= 2);
        }
        // CW = [3, 4], TW = [0, 1, 2]
        assert_eq!(w.cw_len(), 2);
        assert_eq!(w.tw_len(), 3);
        assert!(w.is_warm());
        assert_eq!(w.cw_count(4), 1);
        assert_eq!(w.tw_count(0), 1);
    }

    #[test]
    fn eviction_keeps_capacities() {
        let mut w = Windows::new(2, 3);
        for site in 0..20 {
            w.push(site % 4, false);
        }
        assert_eq!(w.cw_len(), 2);
        assert_eq!(w.tw_len(), 3);
        let total: u32 = (0..4).map(|s| w.cw_count(s) + w.tw_count(s)).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn adaptive_growth_suppresses_eviction() {
        let mut w = Windows::new(2, 3);
        for site in 0..10 {
            w.push(site, true);
        }
        assert_eq!(w.cw_len(), 2);
        assert_eq!(w.tw_len(), 8);
    }

    #[test]
    fn unweighted_paper_example() {
        // CW {a, b}, TW {a, c} -> 0.5 regardless of frequencies.
        let w = windows_with(&[0, 2], &[0, 1]);
        assert!((w.unweighted_similarity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unweighted_ignores_frequency() {
        // CW {a, a, c}, TW {a, b, c}: all distinct CW sites occur in TW.
        let w = windows_with(&[0, 1, 2], &[0, 0, 2]);
        assert!((w.unweighted_similarity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_paper_example() {
        // CW {(a,5),(b,3),(c,2)}; TW {(a,25),(b,15),(c,10),(d,50)}.
        let mut tw = vec![0; 25];
        tw.extend(std::iter::repeat(1).take(15));
        tw.extend(std::iter::repeat(2).take(10));
        tw.extend(std::iter::repeat(3).take(50));
        let mut cw = vec![0; 5];
        cw.extend(std::iter::repeat(1).take(3));
        cw.extend(std::iter::repeat(2).take(2));
        let w = windows_with(&tw, &cw);
        assert!((w.weighted_similarity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn similarity_empty_windows_is_zero() {
        let w = Windows::new(4, 4);
        assert_eq!(w.unweighted_similarity(), 0.0);
        assert_eq!(w.weighted_similarity(), 0.0);
    }

    #[test]
    fn clear_keep_last_reseeds_cw() {
        let mut w = Windows::new(3, 3);
        for site in 0..9 {
            w.push(site, false);
        }
        w.clear_keep_last(2);
        assert_eq!(w.cw_len(), 2);
        assert_eq!(w.tw_len(), 0);
        assert!(!w.is_warm());
        // Kept the most recent two elements (7 and 8).
        assert_eq!(w.cw_count(7), 1);
        assert_eq!(w.cw_count(8), 1);
        assert_eq!(w.distinct_cw(), 2);
    }

    #[test]
    fn clear_keep_more_than_buffered() {
        let mut w = Windows::new(3, 3);
        w.push(1, false);
        w.clear_keep_last(10);
        assert_eq!(w.cw_len(), 1);
        assert_eq!(w.tw_len(), 0);
    }

    #[test]
    fn anchor_rn_and_lnn_paper_example() {
        // TW = [a, b, c], CW = [a, a, c]; b is noisy.
        // RN anchors one right of b (index 2, element c);
        // LNN anchors at the leftmost non-noisy (index 0, element a).
        let w = windows_with(&[0, 1, 2], &[0, 0, 2]);
        assert_eq!(w.anchor_index(AnchorPolicy::RightmostNoisy), 2);
        assert_eq!(w.anchor_index(AnchorPolicy::LeftmostNonNoisy), 0);
    }

    #[test]
    fn anchor_without_noise() {
        let w = windows_with(&[0, 1], &[0, 1]);
        assert_eq!(w.anchor_index(AnchorPolicy::RightmostNoisy), 0);
        assert_eq!(w.anchor_index(AnchorPolicy::LeftmostNonNoisy), 0);
    }

    #[test]
    fn anchor_all_noise() {
        let w = windows_with(&[5, 6], &[0, 1]);
        assert_eq!(w.anchor_index(AnchorPolicy::RightmostNoisy), 2);
        assert_eq!(w.anchor_index(AnchorPolicy::LeftmostNonNoisy), 2);
    }

    #[test]
    fn slide_restores_tw_at_cw_expense() {
        let mut w = windows_with(&[9, 0, 1, 2], &[0, 1, 2, 3]);
        let anchor = w.anchor_index(AnchorPolicy::RightmostNoisy);
        assert_eq!(anchor, 1); // element 9 at index 0 is noisy
        let offset = w.anchor_and_resize(anchor, ResizePolicy::Slide);
        assert_eq!(offset, 1);
        // TW dropped one, then refilled from the CW up to capacity.
        assert_eq!(w.tw_len(), 4);
        assert_eq!(w.cw_len(), 3);
    }

    #[test]
    fn move_shrinks_tw_only() {
        let mut w = windows_with(&[9, 0, 1, 2], &[0, 1, 2, 3]);
        let offset = w.anchor_and_resize(1, ResizePolicy::Move);
        assert_eq!(offset, 1);
        assert_eq!(w.tw_len(), 3);
        assert_eq!(w.cw_len(), 4);
    }

    #[test]
    fn slide_leaves_at_least_one_cw_element() {
        let mut w = windows_with(&[1, 2, 3, 4], &[5]);
        // Drop the whole TW, then slide: CW must not empty out.
        let _ = w.anchor_and_resize(4, ResizePolicy::Slide);
        assert!(w.cw_len() >= 1);
    }

    #[test]
    fn offsets_track_front() {
        let mut w = Windows::new(2, 2);
        for site in 0..10 {
            w.push(site % 3, false);
        }
        // 10 pushed, capacity 4 => 6 evicted.
        assert_eq!(w.offset_of_index(0), 6);
    }

    #[test]
    fn distinct_bookkeeping_randomized() {
        // Cross-check the incremental distinct counters against a
        // recomputation from scratch.
        let mut w = Windows::new(7, 13);
        let mut x = 123_456_789u64;
        for step in 0..5_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let site = (x >> 33) % 17;
            let grow = (step / 100) % 2 == 1;
            w.push(site as u32, grow);
            if step % 997 == 0 {
                w.clear_keep_last(3);
            }
            let mut shared = 0;
            let mut distinct = 0;
            for s in 0..17 {
                if w.cw_count(s) > 0 {
                    distinct += 1;
                    if w.tw_count(s) > 0 {
                        shared += 1;
                    }
                }
            }
            assert_eq!(distinct, w.distinct_cw(), "step {step}");
            assert_eq!(shared, w.distinct_shared(), "step {step}");
            assert_eq!(w.cw_sites().len(), distinct);
        }
    }

    #[test]
    fn incremental_weighted_matches_brute_force() {
        // Exercise the at-capacity fast path against a from-scratch
        // computation over all sites.
        let mut w = Windows::new(11, 17);
        let mut x = 42u64;
        for step in 0..8_000u64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let site = ((x >> 33) % 23) as u32;
            w.push(site, false);
            if step % 1_499 == 0 {
                w.clear_keep_last(1);
            }
            if w.cw_len() == 11 && w.tw_len() == 17 {
                let fast = w.weighted_similarity();
                let mut slow = 0.0;
                for s in 0..23 {
                    let wc = f64::from(w.cw_count(s)) / 11.0;
                    let wt = f64::from(w.tw_count(s)) / 17.0;
                    slow += wc.min(wt);
                }
                assert!((fast - slow).abs() < 1e-9, "step {step}: {fast} vs {slow}");
            }
        }
    }

    #[test]
    fn tracking_disabled_still_correct() {
        let mut a = Windows::with_weighted_tracking(5, 5, false);
        let mut b = Windows::with_weighted_tracking(5, 5, true);
        for i in 0..40u32 {
            a.push(i % 6, false);
            b.push(i % 6, false);
            assert!((a.weighted_similarity() - b.weighted_similarity()).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Windows::new(0, 5);
    }

    #[test]
    fn policy_displays() {
        assert_eq!(TwPolicy::Adaptive.to_string(), "adaptive");
        assert_eq!(AnchorPolicy::RightmostNoisy.to_string(), "RN");
        assert_eq!(AnchorPolicy::LeftmostNonNoisy.to_string(), "LNN");
        assert_eq!(ResizePolicy::Slide.to_string(), "slide");
        assert_eq!(ResizePolicy::Move.to_string(), "move");
    }
}
