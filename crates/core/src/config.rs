//! Detector configuration: one point in the framework's parameter
//! space.

use core::fmt;

use crate::analyzer::AnalyzerPolicy;
use crate::model::ModelPolicy;
use crate::window::{AnchorPolicy, ResizePolicy, TwPolicy};

/// Error produced when a detector configuration is invalid.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A window size was zero.
    ZeroWindow,
    /// The skip factor was zero.
    ZeroSkipFactor,
    /// A threshold was not a finite number in `[0, 1]`.
    BadThreshold(f64),
    /// An average-analyzer delta was not a finite number in `[0, 1]`.
    BadDelta(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWindow => f.write_str("window sizes must be at least 1"),
            ConfigError::ZeroSkipFactor => f.write_str("skip factor must be at least 1"),
            ConfigError::BadThreshold(t) => write!(f, "threshold {t} not in [0, 1]"),
            ConfigError::BadDelta(d) => write!(f, "average delta {d} not in [0, 1]"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A window shape `(cw, tw, skip)`: the part of a configuration that
/// determines window evolution under the Constant TW policy.
///
/// This is the grouping key of the sweep engine ([`crate::SweepEngine`]
/// shares one trace scan among all shareable configs of equal shape)
/// and of the static sweep planner in `opd-analyze`, which predicts
/// scan counts from shapes alone without running a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConfigShape {
    /// Current-window capacity, in profile elements.
    pub cw: usize,
    /// Trailing-window (initial) capacity, in profile elements.
    pub tw: usize,
    /// Elements consumed per detector step.
    pub skip: usize,
}

impl ConfigShape {
    /// The shape of `config`.
    #[must_use]
    pub fn of(config: &DetectorConfig) -> Self {
        ConfigShape {
            cw: config.current_window(),
            tw: config.trailing_window(),
            skip: config.skip_factor(),
        }
    }

    /// Detector steps taken over a trace of `elements` profile
    /// elements: one per (possibly partial) chunk of `skip` elements.
    /// A zero skip (unreachable from a validated config) counts as 1.
    #[must_use]
    pub fn steps(&self, elements: u64) -> u64 {
        elements.div_ceil((self.skip as u64).max(1))
    }
}

impl fmt::Display for ConfigShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cw={} tw={} skip={}", self.cw, self.tw, self.skip)
    }
}

/// A complete, validated parameterization of the phase detection
/// framework.
///
/// Construct with [`DetectorConfig::builder`], or use
/// [`DetectorConfig::fixed_interval`] for the configuration most common
/// in prior work (skip factor = CW size = TW size, constant TW).
///
/// # Examples
///
/// ```
/// use opd_core::{AnalyzerPolicy, DetectorConfig, ModelPolicy, TwPolicy};
///
/// let config = DetectorConfig::builder()
///     .current_window(5_000)
///     .tw_policy(TwPolicy::Adaptive)
///     .model(ModelPolicy::UnweightedSet)
///     .analyzer(AnalyzerPolicy::Average { delta: 0.05 })
///     .build()?;
/// assert_eq!(config.trailing_window(), 5_000); // defaults to CW size
/// assert_eq!(config.skip_factor(), 1);
/// # Ok::<(), opd_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DetectorConfig {
    cw_size: usize,
    tw_size: usize,
    skip_factor: usize,
    tw_policy: TwPolicy,
    anchor: AnchorPolicy,
    resize: ResizePolicy,
    model: ModelPolicy,
    analyzer: AnalyzerPolicy,
}

impl DetectorConfig {
    /// Starts building a configuration.
    #[must_use]
    pub fn builder() -> DetectorConfigBuilder {
        DetectorConfigBuilder::new()
    }

    /// The fixed-interval configuration used by most prior systems
    /// (Dhodapkar & Smith and others): skip factor = CW size = TW size,
    /// constant trailing window.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroWindow`] if `window` is zero.
    pub fn fixed_interval(
        window: usize,
        model: ModelPolicy,
        analyzer: AnalyzerPolicy,
    ) -> Result<Self, ConfigError> {
        DetectorConfigBuilder::new()
            .current_window(window)
            .trailing_window(window)
            .skip_factor(window)
            .tw_policy(TwPolicy::Constant)
            .model(model)
            .analyzer(analyzer)
            .build()
    }

    /// Size of the current window, in profile elements.
    #[must_use]
    pub fn current_window(&self) -> usize {
        self.cw_size
    }

    /// Initial (and, for the constant policy, permanent) size of the
    /// trailing window.
    #[must_use]
    pub fn trailing_window(&self) -> usize {
        self.tw_size
    }

    /// Number of profile elements consumed per detector step.
    #[must_use]
    pub fn skip_factor(&self) -> usize {
        self.skip_factor
    }

    /// The trailing-window management policy.
    #[must_use]
    pub fn tw_policy(&self) -> TwPolicy {
        self.tw_policy
    }

    /// The anchor-point policy applied at phase starts.
    #[must_use]
    pub fn anchor(&self) -> AnchorPolicy {
        self.anchor
    }

    /// The window-resizing policy applied at phase starts (adaptive
    /// trailing window only).
    #[must_use]
    pub fn resize(&self) -> ResizePolicy {
        self.resize
    }

    /// The similarity model.
    #[must_use]
    pub fn model(&self) -> ModelPolicy {
        self.model
    }

    /// The similarity analyzer.
    #[must_use]
    pub fn analyzer(&self) -> AnalyzerPolicy {
        self.analyzer
    }

    /// `true` when this is a fixed-interval detector (skip factor
    /// equals both window sizes, constant TW).
    #[must_use]
    pub fn is_fixed_interval(&self) -> bool {
        self.tw_policy == TwPolicy::Constant
            && self.skip_factor == self.cw_size
            && self.tw_size == self.cw_size
    }

    /// The window shape `(cw, tw, skip)` of this configuration.
    #[must_use]
    pub fn shape(&self) -> ConfigShape {
        ConfigShape::of(self)
    }

    /// Whether this config may share windows *directly* with
    /// same-shape configs in a sweep: constant trailing window (the
    /// windows evolve as a pure FIFO regardless of phase decisions)
    /// and `skip ≤ cw` (a flush keeping more than `cw` elements
    /// transiently over-fills a private CW — a state a shared window
    /// never visits). See the `sweep` module docs for the full
    /// argument.
    #[must_use]
    pub fn shares_windows(&self) -> bool {
        self.tw_policy == TwPolicy::Constant && self.skip_factor <= self.cw_size
    }

    /// Whether this config may share windows through the *forking*
    /// adaptive scan: an adaptive-TW config deviates from the
    /// same-shape FIFO only while inside a phase (the anchor/resize
    /// mutation at phase entry, then TW growth), and after the
    /// phase-exit flush its refilled state is again FIFO-identical —
    /// so in-Transition members can judge off one shared FIFO and
    /// in-Phase members off copy-on-entry forks. Needs the same
    /// `skip ≤ cw` bound as [`shares_windows`](Self::shares_windows).
    #[must_use]
    pub fn shares_windows_adaptively(&self) -> bool {
        self.tw_policy == TwPolicy::Adaptive && self.skip_factor <= self.cw_size
    }
}

impl fmt::Display for DetectorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cw={} tw={} skip={} {} {} {}",
            self.cw_size, self.tw_size, self.skip_factor, self.tw_policy, self.model, self.analyzer
        )?;
        if self.tw_policy == TwPolicy::Adaptive {
            write!(f, " {} {}", self.anchor, self.resize)?;
        }
        Ok(())
    }
}

/// Builder for [`DetectorConfig`].
///
/// Defaults: CW 5 000 elements, TW equal to CW, skip factor 1, constant
/// trailing window, unweighted model, fixed threshold 0.5, RN anchor,
/// sliding resize.
#[derive(Debug, Clone)]
pub struct DetectorConfigBuilder {
    cw_size: usize,
    tw_size: Option<usize>,
    skip_factor: usize,
    tw_policy: TwPolicy,
    anchor: AnchorPolicy,
    resize: ResizePolicy,
    model: ModelPolicy,
    analyzer: AnalyzerPolicy,
}

impl Default for DetectorConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DetectorConfigBuilder {
    /// Creates a builder with the documented defaults.
    #[must_use]
    pub fn new() -> Self {
        DetectorConfigBuilder {
            cw_size: 5_000,
            tw_size: None,
            skip_factor: 1,
            tw_policy: TwPolicy::Constant,
            anchor: AnchorPolicy::RightmostNoisy,
            resize: ResizePolicy::Slide,
            model: ModelPolicy::UnweightedSet,
            analyzer: AnalyzerPolicy::Threshold(0.5),
        }
    }

    /// Sets the current-window size.
    #[must_use]
    pub fn current_window(mut self, size: usize) -> Self {
        self.cw_size = size;
        self
    }

    /// Sets the trailing-window size (defaults to the CW size).
    #[must_use]
    pub fn trailing_window(mut self, size: usize) -> Self {
        self.tw_size = Some(size);
        self
    }

    /// Sets the skip factor.
    #[must_use]
    pub fn skip_factor(mut self, skip: usize) -> Self {
        self.skip_factor = skip;
        self
    }

    /// Sets the trailing-window policy.
    #[must_use]
    pub fn tw_policy(mut self, policy: TwPolicy) -> Self {
        self.tw_policy = policy;
        self
    }

    /// Sets the anchor policy.
    #[must_use]
    pub fn anchor(mut self, anchor: AnchorPolicy) -> Self {
        self.anchor = anchor;
        self
    }

    /// Sets the resize policy.
    #[must_use]
    pub fn resize(mut self, resize: ResizePolicy) -> Self {
        self.resize = resize;
        self
    }

    /// Sets the similarity model.
    #[must_use]
    pub fn model(mut self, model: ModelPolicy) -> Self {
        self.model = model;
        self
    }

    /// Sets the analyzer.
    #[must_use]
    pub fn analyzer(mut self, analyzer: AnalyzerPolicy) -> Self {
        self.analyzer = analyzer;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for zero-sized windows, a zero skip
    /// factor, or analyzer parameters outside `[0, 1]`.
    pub fn build(self) -> Result<DetectorConfig, ConfigError> {
        let tw_size = self.tw_size.unwrap_or(self.cw_size);
        if self.cw_size == 0 || tw_size == 0 {
            return Err(ConfigError::ZeroWindow);
        }
        if self.skip_factor == 0 {
            return Err(ConfigError::ZeroSkipFactor);
        }
        match self.analyzer {
            AnalyzerPolicy::Threshold(t) if !(0.0..=1.0).contains(&t) => {
                return Err(ConfigError::BadThreshold(t));
            }
            AnalyzerPolicy::Average { delta } if !(0.0..=1.0).contains(&delta) => {
                return Err(ConfigError::BadDelta(delta));
            }
            _ => {}
        }
        Ok(DetectorConfig {
            cw_size: self.cw_size,
            tw_size,
            skip_factor: self.skip_factor,
            tw_policy: self.tw_policy,
            anchor: self.anchor,
            resize: self.resize,
            model: self.model,
            analyzer: self.analyzer,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = DetectorConfig::builder().build().unwrap();
        assert_eq!(c.current_window(), 5_000);
        assert_eq!(c.trailing_window(), 5_000);
        assert_eq!(c.skip_factor(), 1);
        assert_eq!(c.tw_policy(), TwPolicy::Constant);
        assert_eq!(c.model(), ModelPolicy::UnweightedSet);
        assert!(!c.is_fixed_interval());
    }

    #[test]
    fn fixed_interval_preset() {
        let c = DetectorConfig::fixed_interval(
            1_000,
            ModelPolicy::UnweightedSet,
            AnalyzerPolicy::Threshold(0.5),
        )
        .unwrap();
        assert!(c.is_fixed_interval());
        assert_eq!(c.skip_factor(), 1_000);
    }

    #[test]
    fn zero_sizes_rejected() {
        assert_eq!(
            DetectorConfig::builder().current_window(0).build(),
            Err(ConfigError::ZeroWindow)
        );
        assert_eq!(
            DetectorConfig::builder().trailing_window(0).build(),
            Err(ConfigError::ZeroWindow)
        );
        assert_eq!(
            DetectorConfig::builder().skip_factor(0).build(),
            Err(ConfigError::ZeroSkipFactor)
        );
    }

    #[test]
    fn bad_analyzer_params_rejected() {
        assert_eq!(
            DetectorConfig::builder()
                .analyzer(AnalyzerPolicy::Threshold(1.5))
                .build(),
            Err(ConfigError::BadThreshold(1.5))
        );
        assert_eq!(
            DetectorConfig::builder()
                .analyzer(AnalyzerPolicy::Average { delta: -0.1 })
                .build(),
            Err(ConfigError::BadDelta(-0.1))
        );
        let nan = f64::NAN;
        assert!(matches!(
            DetectorConfig::builder()
                .analyzer(AnalyzerPolicy::Threshold(nan))
                .build(),
            Err(ConfigError::BadThreshold(_))
        ));
    }

    #[test]
    fn display_includes_key_parameters() {
        let c = DetectorConfig::builder()
            .current_window(500)
            .tw_policy(TwPolicy::Adaptive)
            .build()
            .unwrap();
        let text = format!("{c}");
        assert!(text.contains("cw=500"), "{text}");
        assert!(text.contains("adaptive"), "{text}");
    }

    #[test]
    fn errors_display() {
        for e in [
            ConfigError::ZeroWindow,
            ConfigError::ZeroSkipFactor,
            ConfigError::BadThreshold(2.0),
            ConfigError::BadDelta(2.0),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
