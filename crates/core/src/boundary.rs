//! Detected phases and their conversion to intervals — including the
//! anchored (retroactive) phase starts used by Figure 8 of the paper.

use opd_trace::PhaseInterval;

/// One phase as recorded by the detector.
///
/// `start` is the offset of the first element labelled `P` (the
/// detection point); `anchored_start` is where the anchoring policy
/// places the *actual* beginning of the phase, at or before `start`
/// (Section 5 of the paper). `end` is the offset of the first element
/// after the phase, or `None` while the detector is still in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DetectedPhase {
    /// First element labelled `P`.
    pub start: u64,
    /// Retroactive phase start per the anchor policy.
    pub anchored_start: u64,
    /// One past the last element of the phase.
    pub end: Option<u64>,
}

impl DetectedPhase {
    /// The phase interval using the detection-point start.
    ///
    /// Open phases are closed at `total` (the trace length).
    #[must_use]
    pub fn interval(&self, total: u64) -> Option<PhaseInterval> {
        let end = self.end.unwrap_or(total);
        (self.start < end).then(|| PhaseInterval::new(self.start, end))
    }
}

/// Converts detected phases to intervals using detection-point starts.
///
/// Equivalent to extracting intervals from the state sequence.
#[must_use]
pub fn detected_intervals(phases: &[DetectedPhase], total: u64) -> Vec<PhaseInterval> {
    phases.iter().filter_map(|p| p.interval(total)).collect()
}

/// Converts detected phases to intervals using the *anchored* starts —
/// the "modified technique for finding the beginning of a phase"
/// evaluated in Figure 8 of the paper.
///
/// Anchored starts are clamped so consecutive intervals never overlap;
/// a degenerate anchor (at or past the phase end) falls back to the
/// detection-point start.
#[must_use]
pub fn anchored_intervals(phases: &[DetectedPhase], total: u64) -> Vec<PhaseInterval> {
    let mut out: Vec<PhaseInterval> = Vec::with_capacity(phases.len());
    let mut prev_end = 0u64;
    for p in phases {
        let end = p.end.unwrap_or(total).min(total);
        let mut start = p.anchored_start.max(prev_end);
        if start >= end {
            start = p.start.max(prev_end);
        }
        if start < end {
            out.push(PhaseInterval::new(start, end));
            prev_end = end;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(anchored: u64, start: u64, end: Option<u64>) -> DetectedPhase {
        DetectedPhase {
            start,
            anchored_start: anchored,
            end,
        }
    }

    #[test]
    fn detected_intervals_close_open_phase_at_total() {
        let phases = vec![phase(0, 5, Some(10)), phase(12, 15, None)];
        let iv = detected_intervals(&phases, 20);
        assert_eq!(
            iv,
            vec![PhaseInterval::new(5, 10), PhaseInterval::new(15, 20)]
        );
    }

    #[test]
    fn anchored_intervals_use_anchor() {
        let phases = vec![phase(2, 5, Some(10))];
        let iv = anchored_intervals(&phases, 20);
        assert_eq!(iv, vec![PhaseInterval::new(2, 10)]);
    }

    #[test]
    fn anchored_intervals_never_overlap() {
        let phases = vec![phase(0, 2, Some(10)), phase(8, 12, Some(20))];
        let iv = anchored_intervals(&phases, 20);
        assert_eq!(iv[0].end(), 10);
        assert_eq!(iv[1].start(), 10);
    }

    #[test]
    fn degenerate_anchor_falls_back_to_detection_start() {
        // Anchor beyond the end (cannot normally happen, but the API
        // must stay total): fall back to the detection start.
        let phases = vec![phase(50, 5, Some(10))];
        let iv = anchored_intervals(&phases, 20);
        assert_eq!(iv, vec![PhaseInterval::new(5, 10)]);
    }

    #[test]
    fn empty_phase_skipped() {
        let phases = vec![phase(5, 5, Some(5))];
        assert!(detected_intervals(&phases, 20).is_empty());
        assert!(anchored_intervals(&phases, 20).is_empty());
    }

    #[test]
    fn interval_accessor() {
        let p = phase(1, 3, None);
        assert_eq!(p.interval(9), Some(PhaseInterval::new(3, 9)));
        assert_eq!(phase(0, 9, Some(9)).interval(9), None);
    }
}
