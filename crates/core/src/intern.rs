//! Dense interning of profile elements, so sweeps can replay one trace
//! through thousands of detector configurations without re-hashing.

use std::collections::HashMap;
use std::sync::OnceLock;

use opd_trace::ProfileElement;

/// A branch trace with every distinct profile element mapped to a dense
/// id in `0..distinct_count`.
///
/// Building the interned form once and calling
/// [`PhaseDetector::run_interned`](crate::PhaseDetector::run_interned)
/// for each configuration is the fast path used by the experiment
/// harness.
///
/// # Examples
///
/// ```
/// use opd_core::InternedTrace;
/// use opd_trace::{MethodId, ProfileElement};
///
/// let a = ProfileElement::new(MethodId::new(0), 0, true);
/// let b = ProfileElement::new(MethodId::new(0), 0, false);
/// let interned = InternedTrace::from_elements([a, b, a, a]);
/// assert_eq!(interned.len(), 4);
/// assert_eq!(interned.distinct_count(), 2);
/// assert_eq!(interned.ids(), &[0, 1, 0, 0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InternedTrace {
    ids: Vec<u32>,
    distinct: u32,
    /// Lazily built per-site occurrence index for the rank-mode SWAR
    /// kernel; pure cache, so excluded from equality.
    site_index: OnceLock<SiteIndex>,
}

impl PartialEq for InternedTrace {
    fn eq(&self, other: &Self) -> bool {
        self.ids == other.ids && self.distinct == other.distinct
    }
}

impl Eq for InternedTrace {}

impl InternedTrace {
    /// Interns a sequence of profile elements.
    pub fn from_elements<I>(elements: I) -> Self
    where
        I: IntoIterator<Item = ProfileElement>,
    {
        Self::from_elements_with_capacity(elements, 0)
    }

    /// Interns a sequence of profile elements with the intern table
    /// pre-sized for `distinct_hint` distinct elements — typically the
    /// static alphabet bound from the `opd-analyze` crate — so
    /// interning a trace within the bound never rehashes.
    ///
    /// The hint is only a capacity; the result is identical to
    /// [`from_elements`](InternedTrace::from_elements) whatever its
    /// value.
    pub fn from_elements_with_capacity<I>(elements: I, distinct_hint: usize) -> Self
    where
        I: IntoIterator<Item = ProfileElement>,
    {
        let iter = elements.into_iter();
        let mut map: HashMap<u64, u32> = HashMap::with_capacity(distinct_hint);
        let mut ids = Vec::with_capacity(iter.size_hint().0);
        for e in iter {
            let next = map.len() as u32;
            let id = *map.entry(e.raw()).or_insert(next);
            ids.push(id);
        }
        InternedTrace {
            ids,
            distinct: map.len() as u32,
            site_index: OnceLock::new(),
        }
    }

    /// Number of elements in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of distinct profile elements.
    #[must_use]
    pub fn distinct_count(&self) -> u32 {
        self.distinct
    }

    /// The dense element ids, in trace order.
    #[must_use]
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// The per-site occurrence index, built on first use and cached,
    /// or `None` when the trace is outside the rank-mode envelope
    /// (empty, too many distinct sites, or an index too large to be
    /// worth the memory).
    pub(crate) fn try_site_index(&self) -> Option<&SiteIndex> {
        if !SiteIndex::eligible(self) {
            return None;
        }
        Some(self.site_index.get_or_init(|| SiteIndex::build(self)))
    }
}

/// Per-site occurrence bitmaps over a whole interned trace, with
/// per-word prefix ranks: `rank(s, x)` — how many of `trace[..x]` are
/// site `s` — in O(1). The rank-mode SWAR kernel derives both window
/// count vectors of any trace run `[a, b, c)` from six rank lookups
/// per site, paying zero work per consumed element.
///
/// Layout is site-minor: word `w` of site `s` lives at
/// `words[w * sites + s]`, so the per-judge loop over all sites at a
/// fixed trace position walks one contiguous cache line run.
#[derive(Debug, Clone)]
pub(crate) struct SiteIndex {
    sites: usize,
    words: Vec<u64>,
    ranks: Vec<u32>,
}

/// Rank mode caps: more distinct sites than this and the per-judge
/// site loop outgrows the dense kernel's per-element work...
pub(crate) const MAX_RANK_SITES: u32 = 512;
/// ...and an index bigger than this many u64 words (32 MiB of bitmap
/// plus 16 MiB of ranks) is not worth caching per trace.
const MAX_RANK_WORDS: usize = 1 << 22;

impl SiteIndex {
    /// Whether `trace` is within the rank-mode envelope.
    fn eligible(trace: &InternedTrace) -> bool {
        let sites = trace.distinct_count();
        if sites == 0 || sites > MAX_RANK_SITES || trace.is_empty() {
            return false;
        }
        Self::words_per_site(trace.len())
            .checked_mul(sites as usize)
            .is_some_and(|w| w <= MAX_RANK_WORDS)
    }

    /// Words per site: one per 64 trace positions, plus a sentinel so
    /// the rank at position `len` itself stays a plain lookup.
    fn words_per_site(len: usize) -> usize {
        len / 64 + 1
    }

    fn build(trace: &InternedTrace) -> Self {
        let sites = trace.distinct_count() as usize;
        let words_per = Self::words_per_site(trace.len());
        let mut words = vec![0u64; words_per * sites];
        for (pos, &site) in trace.ids().iter().enumerate() {
            words[(pos >> 6) * sites + site as usize] |= 1u64 << (pos & 63);
        }
        let mut ranks = vec![0u32; words_per * sites];
        let mut running = vec![0u32; sites];
        for w in 0..words_per {
            let base = w * sites;
            ranks[base..base + sites].copy_from_slice(&running);
            for s in 0..sites {
                running[s] += words[base + s].count_ones();
            }
        }
        SiteIndex {
            sites,
            words,
            ranks,
        }
    }

    /// A cursor answering `rank(s, x)` for every site at one fixed
    /// trace position `x`.
    ///
    /// # Panics
    ///
    /// Panics (via slice indexing) if `x` exceeds the trace length.
    pub(crate) fn ranker(&self, x: usize) -> SiteRanker<'_> {
        let base = (x >> 6) * self.sites;
        SiteRanker {
            words: &self.words[base..base + self.sites],
            ranks: &self.ranks[base..base + self.sites],
            mask: (1u64 << (x & 63)) - 1,
        }
    }
}

/// See [`SiteIndex::ranker`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct SiteRanker<'a> {
    words: &'a [u64],
    ranks: &'a [u32],
    mask: u64,
}

impl SiteRanker<'_> {
    /// How many of `trace[..x]` are site `s`.
    #[inline]
    pub(crate) fn rank(&self, s: usize) -> u32 {
        self.ranks[s] + (self.words[s] & self.mask).count_ones()
    }
}

impl From<&opd_trace::BranchTrace> for InternedTrace {
    fn from(trace: &opd_trace::BranchTrace) -> Self {
        InternedTrace::from_elements(trace.iter().copied())
    }
}

impl FromIterator<ProfileElement> for InternedTrace {
    fn from_iter<I: IntoIterator<Item = ProfileElement>>(iter: I) -> Self {
        InternedTrace::from_elements(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_trace::MethodId;

    #[test]
    fn empty_trace() {
        let t = InternedTrace::from_elements([]);
        assert!(t.is_empty());
        assert_eq!(t.distinct_count(), 0);
    }

    #[test]
    fn ids_are_first_seen_order() {
        let e = |o| ProfileElement::new(MethodId::new(1), o, false);
        let t = InternedTrace::from_elements([e(5), e(3), e(5), e(9)]);
        assert_eq!(t.ids(), &[0, 1, 0, 2]);
        assert_eq!(t.distinct_count(), 3);
    }

    #[test]
    fn capacity_hint_does_not_change_the_result() {
        let e = |o| ProfileElement::new(MethodId::new(1), o, false);
        let elements = [e(5), e(3), e(5), e(9)];
        let plain = InternedTrace::from_elements(elements);
        for hint in [0, 1, 3, 64] {
            assert_eq!(
                InternedTrace::from_elements_with_capacity(elements, hint),
                plain
            );
        }
    }

    #[test]
    fn from_branch_trace() {
        let e = |o| ProfileElement::new(MethodId::new(1), o, true);
        let bt: opd_trace::BranchTrace = (0..10).map(|i| e(i % 3)).collect();
        let t = InternedTrace::from(&bt);
        assert_eq!(t.len(), 10);
        assert_eq!(t.distinct_count(), 3);
    }
}
