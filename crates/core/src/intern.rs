//! Dense interning of profile elements, so sweeps can replay one trace
//! through thousands of detector configurations without re-hashing.

use std::collections::HashMap;

use opd_trace::ProfileElement;

/// A branch trace with every distinct profile element mapped to a dense
/// id in `0..distinct_count`.
///
/// Building the interned form once and calling
/// [`PhaseDetector::run_interned`](crate::PhaseDetector::run_interned)
/// for each configuration is the fast path used by the experiment
/// harness.
///
/// # Examples
///
/// ```
/// use opd_core::InternedTrace;
/// use opd_trace::{MethodId, ProfileElement};
///
/// let a = ProfileElement::new(MethodId::new(0), 0, true);
/// let b = ProfileElement::new(MethodId::new(0), 0, false);
/// let interned = InternedTrace::from_elements([a, b, a, a]);
/// assert_eq!(interned.len(), 4);
/// assert_eq!(interned.distinct_count(), 2);
/// assert_eq!(interned.ids(), &[0, 1, 0, 0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InternedTrace {
    ids: Vec<u32>,
    distinct: u32,
}

impl InternedTrace {
    /// Interns a sequence of profile elements.
    pub fn from_elements<I>(elements: I) -> Self
    where
        I: IntoIterator<Item = ProfileElement>,
    {
        Self::from_elements_with_capacity(elements, 0)
    }

    /// Interns a sequence of profile elements with the intern table
    /// pre-sized for `distinct_hint` distinct elements — typically the
    /// static alphabet bound from the `opd-analyze` crate — so
    /// interning a trace within the bound never rehashes.
    ///
    /// The hint is only a capacity; the result is identical to
    /// [`from_elements`](InternedTrace::from_elements) whatever its
    /// value.
    pub fn from_elements_with_capacity<I>(elements: I, distinct_hint: usize) -> Self
    where
        I: IntoIterator<Item = ProfileElement>,
    {
        let iter = elements.into_iter();
        let mut map: HashMap<u64, u32> = HashMap::with_capacity(distinct_hint);
        let mut ids = Vec::with_capacity(iter.size_hint().0);
        for e in iter {
            let next = map.len() as u32;
            let id = *map.entry(e.raw()).or_insert(next);
            ids.push(id);
        }
        InternedTrace {
            ids,
            distinct: map.len() as u32,
        }
    }

    /// Number of elements in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of distinct profile elements.
    #[must_use]
    pub fn distinct_count(&self) -> u32 {
        self.distinct
    }

    /// The dense element ids, in trace order.
    #[must_use]
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }
}

impl From<&opd_trace::BranchTrace> for InternedTrace {
    fn from(trace: &opd_trace::BranchTrace) -> Self {
        InternedTrace::from_elements(trace.iter().copied())
    }
}

impl FromIterator<ProfileElement> for InternedTrace {
    fn from_iter<I: IntoIterator<Item = ProfileElement>>(iter: I) -> Self {
        InternedTrace::from_elements(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_trace::MethodId;

    #[test]
    fn empty_trace() {
        let t = InternedTrace::from_elements([]);
        assert!(t.is_empty());
        assert_eq!(t.distinct_count(), 0);
    }

    #[test]
    fn ids_are_first_seen_order() {
        let e = |o| ProfileElement::new(MethodId::new(1), o, false);
        let t = InternedTrace::from_elements([e(5), e(3), e(5), e(9)]);
        assert_eq!(t.ids(), &[0, 1, 0, 2]);
        assert_eq!(t.distinct_count(), 3);
    }

    #[test]
    fn capacity_hint_does_not_change_the_result() {
        let e = |o| ProfileElement::new(MethodId::new(1), o, false);
        let elements = [e(5), e(3), e(5), e(9)];
        let plain = InternedTrace::from_elements(elements);
        for hint in [0, 1, 3, 64] {
            assert_eq!(
                InternedTrace::from_elements_with_capacity(elements, hint),
                plain
            );
        }
    }

    #[test]
    fn from_branch_trace() {
        let e = |o| ProfileElement::new(MethodId::new(1), o, true);
        let bt: opd_trace::BranchTrace = (0..10).map(|i| e(i % 3)).collect();
        let t = InternedTrace::from(&bt);
        assert_eq!(t.len(), 10);
        assert_eq!(t.distinct_count(), 3);
    }
}
