//! Similarity analyzers: mapping similarity values to phase/transition
//! states.

use core::fmt;

use opd_trace::PhaseState;

/// The analyzer policy of the framework (Section 2).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AnalyzerPolicy {
    /// Fixed threshold: report `P` when the similarity value is at
    /// least the threshold.
    Threshold(f64),
    /// Adaptive threshold: report `P` when the similarity value is at
    /// least `delta` below the running average of similarity values of
    /// the current phase.
    ///
    /// The paper does not pin down the bootstrap; this implementation
    /// initializes the running average optimistically to `1.0` at each
    /// `resetStats`, so a new phase is entered when the similarity
    /// reaches `1 - delta`, after which the cumulative in-phase mean
    /// adapts the threshold (see DESIGN.md §3).
    Average {
        /// How far below the running average a value may fall and still
        /// count as in phase.
        delta: f64,
    },
}

impl fmt::Display for AnalyzerPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzerPolicy::Threshold(t) => write!(f, "threshold({t})"),
            AnalyzerPolicy::Average { delta } => write!(f, "average({delta})"),
        }
    }
}

/// The runtime state of an analyzer: the `processValue` /
/// `updateStats` / `resetStats` trio from Figure 3 of the paper.
///
/// # Examples
///
/// ```
/// use opd_core::{Analyzer, AnalyzerPolicy};
///
/// let mut a = Analyzer::new(AnalyzerPolicy::Threshold(0.6));
/// assert!(a.judge(0.7).is_phase());
/// assert!(a.judge(0.5).is_transition());
/// ```
#[derive(Debug, Clone)]
pub struct Analyzer {
    policy: AnalyzerPolicy,
    sum: f64,
    count: u64,
}

impl Analyzer {
    /// Creates an analyzer with empty phase statistics.
    #[must_use]
    pub fn new(policy: AnalyzerPolicy) -> Self {
        Analyzer {
            policy,
            sum: 0.0,
            count: 0,
        }
    }

    /// Returns the analyzer's policy.
    #[must_use]
    pub fn policy(&self) -> AnalyzerPolicy {
        self.policy
    }

    /// The effective threshold the next value will be compared against.
    #[must_use]
    pub fn effective_threshold(&self) -> f64 {
        match self.policy {
            AnalyzerPolicy::Threshold(t) => t,
            AnalyzerPolicy::Average { delta } => {
                let avg = if self.count == 0 {
                    1.0
                } else {
                    self.sum / self.count as f64
                };
                avg - delta
            }
        }
    }

    /// `processValue`: maps a similarity value to a state.
    #[must_use]
    pub fn judge(&self, similarity: f64) -> PhaseState {
        if similarity >= self.effective_threshold() {
            PhaseState::Phase
        } else {
            PhaseState::Transition
        }
    }

    /// `updateStats`: folds an in-phase similarity value into the
    /// running statistics.
    pub fn update(&mut self, similarity: f64) {
        self.sum += similarity;
        self.count += 1;
    }

    /// `resetStats`: clears the phase statistics (called when a new
    /// phase starts).
    pub fn reset(&mut self) {
        self.sum = 0.0;
        self.count = 0;
    }

    /// The analyzer's confidence in the state it would assign to
    /// `similarity`: how far the value sits from the decision
    /// threshold, normalized to the room available on that side
    /// (Section 2 lists a state-confidence level as an optional
    /// detector feature).
    ///
    /// Returns a value in `[0, 1]`; `0` means the value lies exactly
    /// on the threshold, `1` that it is as far from it as possible.
    #[must_use]
    pub fn confidence(&self, similarity: f64) -> f64 {
        let t = self.effective_threshold().clamp(0.0, 1.0);
        let room = if similarity >= t { 1.0 - t } else { t };
        if room <= 0.0 {
            1.0
        } else {
            ((similarity - t).abs() / room).clamp(0.0, 1.0)
        }
    }

    /// Number of values folded in since the last reset.
    #[must_use]
    pub fn sample_count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_inclusive() {
        let a = Analyzer::new(AnalyzerPolicy::Threshold(0.5));
        assert!(a.judge(0.5).is_phase());
        assert!(a.judge(0.499_999).is_transition());
        assert!(a.judge(1.0).is_phase());
        assert!(a.judge(0.0).is_transition());
    }

    #[test]
    fn average_bootstrap_requires_high_similarity() {
        // Fresh stats: avg = 1.0, so P needs sim >= 1 - delta.
        let a = Analyzer::new(AnalyzerPolicy::Average { delta: 0.1 });
        assert!(a.judge(0.95).is_phase());
        assert!(a.judge(0.85).is_transition());
    }

    #[test]
    fn average_adapts_to_phase_values() {
        // Paper example: running average 0.88, delta 0.02 => values of
        // 0.86 or higher are in phase.
        let mut a = Analyzer::new(AnalyzerPolicy::Average { delta: 0.02 });
        a.update(0.88);
        a.update(0.88);
        assert!((a.effective_threshold() - 0.86).abs() < 1e-12);
        assert!(a.judge(0.86).is_phase());
        assert!(a.judge(0.859).is_transition());
    }

    #[test]
    fn reset_restores_bootstrap() {
        let mut a = Analyzer::new(AnalyzerPolicy::Average { delta: 0.3 });
        a.update(0.2);
        assert!(a.judge(0.2).is_phase()); // avg 0.2 - 0.3 < 0.2
        a.reset();
        assert_eq!(a.sample_count(), 0);
        assert!(a.judge(0.69).is_transition()); // back to 1 - 0.3
        assert!(a.judge(0.7).is_phase());
    }

    #[test]
    fn update_accumulates_mean() {
        let mut a = Analyzer::new(AnalyzerPolicy::Average { delta: 0.0 });
        for v in [0.5, 0.7, 0.9] {
            a.update(v);
        }
        assert_eq!(a.sample_count(), 3);
        assert!((a.effective_threshold() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn threshold_stats_do_not_affect_judgement() {
        let mut a = Analyzer::new(AnalyzerPolicy::Threshold(0.6));
        a.update(0.1);
        a.update(0.1);
        assert!(a.judge(0.6).is_phase());
        assert_eq!(a.effective_threshold(), 0.6);
    }

    #[test]
    fn display_names() {
        assert_eq!(AnalyzerPolicy::Threshold(0.5).to_string(), "threshold(0.5)");
        assert_eq!(
            AnalyzerPolicy::Average { delta: 0.05 }.to_string(),
            "average(0.05)"
        );
    }

    #[test]
    fn confidence_is_distance_from_threshold() {
        let a = Analyzer::new(AnalyzerPolicy::Threshold(0.5));
        assert_eq!(a.confidence(0.5), 0.0);
        assert!((a.confidence(1.0) - 1.0).abs() < 1e-12);
        assert!((a.confidence(0.0) - 1.0).abs() < 1e-12);
        assert!((a.confidence(0.75) - 0.5).abs() < 1e-12);
        assert!((a.confidence(0.25) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn confidence_handles_extreme_thresholds() {
        let hi = Analyzer::new(AnalyzerPolicy::Threshold(1.0));
        // No room above the threshold: any value at/above it is fully
        // confident.
        assert_eq!(hi.confidence(1.0), 1.0);
        let lo = Analyzer::new(AnalyzerPolicy::Threshold(0.0));
        // A value sitting exactly on the threshold is never confident.
        assert_eq!(lo.confidence(0.0), 0.0);
        assert!((lo.confidence(0.7) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn confidence_follows_adaptive_threshold() {
        let mut a = Analyzer::new(AnalyzerPolicy::Average { delta: 0.1 });
        a.update(0.8);
        a.update(0.8); // threshold now 0.7
        assert!(a.confidence(0.7) < 1e-12);
        assert!(a.confidence(0.9) > a.confidence(0.75));
    }
}
