//! The online phase detector: the `processProfile` driver of Figure 3.

use std::collections::HashMap;

use opd_trace::{BranchTrace, PhaseState, ProfileElement, StateSeq};

use crate::analyzer::Analyzer;
use crate::boundary::DetectedPhase;
use crate::config::DetectorConfig;
use crate::intern::InternedTrace;
use crate::kernel::{KernelKind, SwarKernelState, SwarWindows, WindowKernel};
use crate::window::{TwPolicy, Windows};

/// Error returned by the fallible detector entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DetectorError {
    /// A processing step carried zero profile elements.
    EmptyStep,
}

impl core::fmt::Display for DetectorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DetectorError::EmptyStep => f.write_str("a step needs at least one element"),
        }
    }
}

impl std::error::Error for DetectorError {}

/// Receives the per-element state stream of a detector run.
///
/// The detector itself only ever appends; a sink decides whether the
/// stream is materialized ([`StateSeq`]), discarded ([`NullSink`] —
/// the zero-allocation path for sweeps that only need phase
/// boundaries), or processed on the fly.
pub trait StateSink {
    /// Records that the next `len` profile elements were attributed
    /// `state`.
    fn record(&mut self, state: PhaseState, len: usize);
}

/// Discards the state stream: detector runs that only need the
/// detected phase list allocate nothing per element.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl StateSink for NullSink {
    #[inline]
    fn record(&mut self, _state: PhaseState, _len: usize) {}
}

impl StateSink for StateSeq {
    #[inline]
    fn record(&mut self, state: PhaseState, len: usize) {
        self.push_n(state, len);
    }
}

/// The kernel-independent half of a detector: configuration, analyzer,
/// the `P`/`T` state machine, and the detected-phase ledger. Split out
/// of [`PhaseDetector`] so the per-step logic is generic over the
/// [`WindowKernel`] while the detector owns the storage of both
/// kernels.
#[derive(Debug, Clone)]
struct DetectorCore {
    config: DetectorConfig,
    analyzer: Analyzer,
    state: PhaseState,
    consumed: u64,
    last_similarity: Option<f64>,
    phases: Vec<DetectedPhase>,
}

impl DetectorCore {
    fn new(config: DetectorConfig) -> Self {
        DetectorCore {
            analyzer: Analyzer::new(config.analyzer()),
            state: PhaseState::Transition,
            consumed: 0,
            last_similarity: None,
            phases: Vec::new(),
            config,
        }
    }

    fn tw_grows(&self) -> bool {
        self.config.tw_policy() == TwPolicy::Adaptive && self.state.is_phase()
    }

    fn finish_step<K: WindowKernel>(&mut self, windows: &mut K, step_len: usize) -> PhaseState {
        let step_start = self.consumed;
        self.consumed += step_len as u64;

        let new_state = if windows.is_warm() {
            let sim = windows.similarity(self.config.model());
            self.last_similarity = Some(sim);
            self.analyzer.judge(sim)
        } else {
            PhaseState::Transition
        };

        match (self.state, new_state) {
            (PhaseState::Transition, PhaseState::Phase) => {
                // Start of a phase: place the anchor, optionally resize
                // the windows (adaptive TW), and reset the analyzer's
                // phase statistics.
                let anchor_idx = windows.anchor_index(self.config.anchor());
                let anchored_start = if self.config.tw_policy() == TwPolicy::Adaptive {
                    windows.anchor_and_resize(anchor_idx, self.config.resize())
                } else {
                    windows.offset_of_index(anchor_idx)
                };
                self.analyzer.reset();
                self.phases.push(DetectedPhase {
                    start: step_start,
                    anchored_start,
                    end: None,
                });
            }
            (PhaseState::Phase, PhaseState::Transition) => {
                // End of a phase: flush the windows, re-seeding the CW
                // with this step's elements.
                windows.clear_keep_last(self.config.skip_factor());
                if let Some(open) = self.phases.last_mut() {
                    open.end = Some(step_start);
                }
            }
            (PhaseState::Phase, PhaseState::Phase) => {
                if let Some(sim) = self.last_similarity {
                    self.analyzer.update(sim);
                }
            }
            (PhaseState::Transition, PhaseState::Transition) => {}
        }

        self.state = new_state;
        new_state
    }

    fn close_open_phase(&mut self) {
        let consumed = self.consumed;
        if let Some(open) = self.phases.last_mut() {
            if open.end.is_none() {
                open.end = Some(consumed);
            }
        }
    }
}

/// The chunk loop of an interned-trace run: one kernel advance and one
/// state-machine step per `skip_factor` elements.
fn drive<K: WindowKernel, S: StateSink>(
    core: &mut DetectorCore,
    windows: &mut K,
    trace: &InternedTrace,
    sink: &mut S,
) {
    for chunk in trace.ids().chunks(core.config.skip_factor()) {
        let tw_grows = core.tw_grows();
        windows.advance(chunk, tw_grows);
        let state = core.finish_step(windows, chunk.len());
        sink.record(state, chunk.len());
    }
    core.close_open_phase();
}

/// An online phase detector: one instantiation of the framework.
///
/// The detector consumes `skip_factor` profile elements per step and
/// produces one [`PhaseState`] per step. Until both windows have filled
/// it reports `T`; once warm, the model similarity is computed and the
/// analyzer decides `P` or `T`, with the phase start/end actions of
/// Figure 3 (anchor the trailing window, reset analyzer statistics,
/// flush windows) applied at state changes.
///
/// Two interchangeable window kernels back the detector (see
/// [`KernelKind`] and the `kernel` module docs): the scalar deque
/// reference and the default SoA/bitset (SWAR) kernel. The kernel
/// choice affects only the interned-trace run paths
/// ([`run_interned`](PhaseDetector::run_interned) and friends) —
/// streaming input via [`process`](PhaseDetector::process)/
/// [`run`](PhaseDetector::run) always uses the scalar kernel, which is
/// the only one that works without the whole trace up front. Both
/// kernels produce bit-identical similarity and state streams.
///
/// # Examples
///
/// ```
/// use opd_core::{DetectorConfig, PhaseDetector};
/// use opd_microvm::workloads::Workload;
///
/// let trace = Workload::Lexgen.trace(1);
/// let config = DetectorConfig::builder().current_window(500).build()?;
/// let mut detector = PhaseDetector::new(config);
/// let states = detector.run(trace.branches());
/// assert_eq!(states.len(), trace.branches().len());
/// assert!(states.phase_count() > 0);
/// # Ok::<(), opd_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PhaseDetector {
    core: DetectorCore,
    windows: Windows,
    interner: HashMap<u64, u32>,
    kernel: KernelKind,
    swar: SwarKernelState,
}

impl PhaseDetector {
    /// Creates a detector for the given configuration, on the default
    /// kernel.
    #[must_use]
    pub fn new(config: DetectorConfig) -> Self {
        Self::with_kernel(config, KernelKind::default())
    }

    /// Creates a detector for the given configuration on an explicit
    /// window kernel (see the type docs for what the choice affects).
    #[must_use]
    pub fn with_kernel(config: DetectorConfig, kernel: KernelKind) -> Self {
        PhaseDetector {
            windows: Windows::with_weighted_tracking(
                config.current_window(),
                config.trailing_window(),
                config.model() == crate::ModelPolicy::WeightedSet,
            ),
            interner: HashMap::new(),
            kernel,
            swar: SwarKernelState::default(),
            core: DetectorCore::new(config),
        }
    }

    /// Returns the detector's configuration.
    #[must_use]
    pub fn config(&self) -> &DetectorConfig {
        &self.core.config
    }

    /// Returns the current output state.
    #[must_use]
    pub fn state(&self) -> PhaseState {
        self.core.state
    }

    /// Returns the scalar-kernel window state (for inspection and
    /// tests of the streaming paths; interned runs on the default SWAR
    /// kernel do not populate it).
    #[must_use]
    pub fn windows(&self) -> &Windows {
        &self.windows
    }

    /// The window kernel this detector's interned runs use.
    #[must_use]
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Switches the window kernel for subsequent interned runs.
    pub fn set_kernel(&mut self, kernel: KernelKind) {
        self.kernel = kernel;
    }

    /// The similarity value computed at the most recent warm step.
    #[must_use]
    pub fn last_similarity(&self) -> Option<f64> {
        self.core.last_similarity
    }

    /// Pre-sizes the per-site window tables (of both kernels) for
    /// `n_sites` distinct elements — typically a static alphabet bound
    /// from the `opd-analyze` crate — so a run over any trace with at
    /// most that many distinct elements never grows them mid-scan.
    pub fn reserve_sites(&mut self, n_sites: usize) {
        self.windows.ensure_sites(n_sites);
        self.swar.ensure_sites(n_sites);
    }

    /// Bytes of per-site kernel storage currently held — the memory
    /// high-water mark the resource certificates bound (`ensure_sites`
    /// only ever grows the columns). Counts the SWAR count/bit-lane
    /// state; the scalar window deques are bounded by `cw + tw`
    /// elements and are not per-site.
    #[must_use]
    pub fn kernel_footprint_bytes(&self) -> u64 {
        self.swar.footprint_bytes()
    }

    /// The detector's confidence in its current state, in `[0, 1]`:
    /// how decisively the most recent similarity value cleared (or
    /// missed) the analyzer's threshold. `None` until the windows have
    /// filled for the first time.
    #[must_use]
    pub fn confidence(&self) -> Option<f64> {
        self.core
            .last_similarity
            .map(|sim| self.core.analyzer.confidence(sim))
    }

    /// Total profile elements consumed so far.
    #[must_use]
    pub fn elements_consumed(&self) -> u64 {
        self.core.consumed
    }

    /// The phases detected so far, in order. The last phase has
    /// `end == None` while the detector is still in it.
    #[must_use]
    pub fn detected_phases(&self) -> &[DetectedPhase] {
        &self.core.phases
    }

    /// `processProfile`: consumes one step of profile elements
    /// (normally exactly `skip_factor` of them; the final step of a
    /// trace may be shorter) and returns the state attributed to all of
    /// them.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is empty.
    pub fn process(&mut self, elements: &[ProfileElement]) -> PhaseState {
        assert!(!elements.is_empty(), "a step needs at least one element");
        let tw_grows = self.core.tw_grows();
        for e in elements {
            let next = self.interner.len() as u32;
            let id = *self.interner.entry(e.raw()).or_insert(next);
            self.windows.push(id, tw_grows);
        }
        self.core.finish_step(&mut self.windows, elements.len())
    }

    /// Like [`process`](PhaseDetector::process), but rejects an empty
    /// step with a typed error instead of panicking — for callers
    /// feeding the detector from lossy or untrusted streams, where an
    /// upstream resync skip can legitimately produce an empty step.
    /// On error the detector state is unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::EmptyStep`] if `elements` is empty.
    pub fn try_process(
        &mut self,
        elements: &[ProfileElement],
    ) -> Result<PhaseState, DetectorError> {
        if elements.is_empty() {
            return Err(DetectorError::EmptyStep);
        }
        Ok(self.process(elements))
    }

    /// Runs the detector over a whole trace, returning one state per
    /// profile element (step states are attributed to each of the
    /// step's elements). Any phase still open at the end of the trace
    /// is closed at the trace length.
    pub fn run(&mut self, trace: &BranchTrace) -> StateSeq {
        let mut seq = StateSeq::with_capacity(trace.len());
        for chunk in trace.as_slice().chunks(self.core.config.skip_factor()) {
            let state = self.process(chunk);
            seq.push_n(state, chunk.len());
        }
        self.close_open_phase();
        seq
    }

    /// Like [`run`](PhaseDetector::run), but over a pre-interned trace —
    /// the fast path for parameter sweeps.
    ///
    /// Use a fresh detector per interned trace; mixing
    /// [`process`](PhaseDetector::process) and `run_interned` on one
    /// detector would conflate two id spaces.
    pub fn run_interned(&mut self, trace: &InternedTrace) -> StateSeq {
        let mut seq = StateSeq::with_capacity(trace.len());
        self.run_interned_with(trace, &mut seq);
        seq
    }

    /// Like [`run_interned`](PhaseDetector::run_interned), but streams
    /// each step's state into `sink` instead of materializing a
    /// [`StateSeq`]. With [`NullSink`] this is the zero-allocation run
    /// path: nothing is allocated per element, only the detected phase
    /// list grows (one entry per phase).
    pub fn run_interned_with<S: StateSink>(&mut self, trace: &InternedTrace, sink: &mut S) {
        match self.kernel {
            KernelKind::Scalar => {
                self.windows.ensure_sites(trace.distinct_count() as usize);
                drive(&mut self.core, &mut self.windows, trace, sink);
            }
            KernelKind::Swar => {
                let config = &self.core.config;
                let (skip, cw, tw) = (
                    config.skip_factor(),
                    config.current_window(),
                    config.trailing_window(),
                );
                let mut windows = SwarWindows::begin(&mut self.swar, trace, skip, cw, tw);
                drive(&mut self.core, &mut windows, trace, sink);
            }
        }
    }

    /// Runs over a pre-interned trace discarding the state stream and
    /// returns the detected phases — the cheap path for parameter
    /// sweeps that only score phase intervals.
    pub fn run_interned_phases_only(&mut self, trace: &InternedTrace) -> &[DetectedPhase] {
        self.run_interned_with(trace, &mut NullSink);
        self.detected_phases()
    }

    /// Resets this detector to a fresh run of `config`, reusing the
    /// allocations of both kernels (per-site tables, element deque,
    /// distinct lists) sized by previous runs and keeping the kernel
    /// choice. Equivalent to `*self = PhaseDetector::new(config)` but
    /// without reallocating — the sweep engine's per-thread scratch
    /// path.
    pub fn reconfigure(&mut self, config: DetectorConfig) {
        self.windows.reset_shape(
            config.current_window(),
            config.trailing_window(),
            config.model() == crate::ModelPolicy::WeightedSet,
        );
        self.core.analyzer = Analyzer::new(config.analyzer());
        self.core.state = PhaseState::Transition;
        self.interner.clear();
        self.core.consumed = 0;
        self.core.last_similarity = None;
        self.core.phases.clear();
        self.core.config = config;
    }

    /// Takes ownership of the detected phase list, leaving the
    /// detector's list empty (pairs with
    /// [`reconfigure`](PhaseDetector::reconfigure) for scratch reuse).
    #[must_use]
    pub fn take_phases(&mut self) -> Vec<DetectedPhase> {
        std::mem::take(&mut self.core.phases)
    }

    /// Closes a phase left open at end-of-trace, using the current
    /// element count as its end.
    pub fn close_open_phase(&mut self) {
        self.core.close_open_phase();
    }
}

/// The instrumented twins of the detector's run paths, available with
/// the `obs` feature.
///
/// Each twin duplicates its uninstrumented counterpart's state
/// machine and adds event emission guarded by
/// [`DetectorObserver::ACTIVE`] — with [`opd_obs::NullObserver`] the
/// guards are compile-time `false`, so the twin monomorphizes back to
/// the plain path (the observer-equivalence suite asserts the results
/// are bit-identical and the steady state allocation-free). Keep any
/// change to [`drive`] or [`DetectorCore::finish_step`] mirrored in
/// the observed twins; the equivalence suite fails loudly if they
/// drift.
#[cfg(feature = "obs")]
impl DetectorCore {
    /// `finish_step` with event emission; the state transitions are a
    /// line-for-line mirror of [`finish_step`](Self::finish_step).
    fn finish_step_observed<K: WindowKernel, O: opd_obs::DetectorObserver>(
        &mut self,
        windows: &mut K,
        step_len: usize,
        step: u64,
        observer: &mut O,
    ) -> PhaseState {
        use opd_obs::DetectorEvent;

        let step_start = self.consumed;
        self.consumed += step_len as u64;

        let warm = windows.is_warm();
        if O::ACTIVE {
            observer.on_event(&DetectorEvent::Step {
                step,
                start: step_start,
                len: step_len as u32,
                warm,
            });
        }
        let new_state = if warm {
            let sim = windows.similarity(self.config.model());
            self.last_similarity = Some(sim);
            if O::ACTIVE {
                observer.on_event(&DetectorEvent::Similarity {
                    step,
                    value: sim,
                    threshold: self.analyzer.effective_threshold(),
                    ops: windows.judge_ops(self.config.model()),
                });
            }
            self.analyzer.judge(sim)
        } else {
            PhaseState::Transition
        };
        if O::ACTIVE {
            observer.on_event(&DetectorEvent::Decision {
                step,
                prev: self.state,
                state: new_state,
            });
        }

        match (self.state, new_state) {
            (PhaseState::Transition, PhaseState::Phase) => {
                let anchor_idx = windows.anchor_index(self.config.anchor());
                let anchored_start = if self.config.tw_policy() == TwPolicy::Adaptive {
                    let offset = windows.anchor_and_resize(anchor_idx, self.config.resize());
                    if O::ACTIVE {
                        observer.on_event(&DetectorEvent::WindowResize {
                            step,
                            kind: match self.config.resize() {
                                crate::ResizePolicy::Slide => opd_obs::ResizeKind::Slide,
                                crate::ResizePolicy::Move => opd_obs::ResizeKind::Move,
                            },
                            tw_len: windows.tw_len() as u64,
                        });
                    }
                    offset
                } else {
                    windows.offset_of_index(anchor_idx)
                };
                self.analyzer.reset();
                if O::ACTIVE {
                    observer.on_event(&DetectorEvent::PhaseStart {
                        step,
                        start: step_start,
                        anchored_start,
                    });
                }
                self.phases.push(DetectedPhase {
                    start: step_start,
                    anchored_start,
                    end: None,
                });
            }
            (PhaseState::Phase, PhaseState::Transition) => {
                windows.clear_keep_last(self.config.skip_factor());
                if O::ACTIVE {
                    observer.on_event(&DetectorEvent::PhaseEnd {
                        step,
                        end: step_start,
                    });
                    observer.on_event(&DetectorEvent::WindowFlush {
                        step,
                        kept: self.config.skip_factor() as u32,
                    });
                }
                if let Some(open) = self.phases.last_mut() {
                    open.end = Some(step_start);
                }
            }
            (PhaseState::Phase, PhaseState::Phase) => {
                if let Some(sim) = self.last_similarity {
                    self.analyzer.update(sim);
                }
            }
            (PhaseState::Transition, PhaseState::Transition) => {}
        }

        self.state = new_state;
        new_state
    }
}

/// The observed twin of [`drive`].
#[cfg(feature = "obs")]
fn drive_observed<K, S, O>(
    core: &mut DetectorCore,
    windows: &mut K,
    trace: &InternedTrace,
    sink: &mut S,
    observer: &mut O,
) where
    K: WindowKernel,
    S: StateSink,
    O: opd_obs::DetectorObserver,
{
    let mut step = 0u64;
    for chunk in trace.ids().chunks(core.config.skip_factor()) {
        let tw_grows = core.tw_grows();
        windows.advance(chunk, tw_grows);
        let state = core.finish_step_observed(windows, chunk.len(), step, observer);
        sink.record(state, chunk.len());
        step += 1;
    }
    if O::ACTIVE {
        if let Some(open) = core.phases.last() {
            if open.end.is_none() {
                observer.on_event(&opd_obs::DetectorEvent::PhaseEnd {
                    step,
                    end: core.consumed,
                });
            }
        }
    }
    core.close_open_phase();
}

#[cfg(feature = "obs")]
impl PhaseDetector {
    /// Like [`run_interned_with`](PhaseDetector::run_interned_with),
    /// but emitting structured [`DetectorEvent`](opd_obs::DetectorEvent)s
    /// into `observer`.
    pub fn run_interned_with_observer<S: StateSink, O: opd_obs::DetectorObserver>(
        &mut self,
        trace: &InternedTrace,
        sink: &mut S,
        observer: &mut O,
    ) {
        match self.kernel {
            KernelKind::Scalar => {
                self.windows.ensure_sites(trace.distinct_count() as usize);
                drive_observed(&mut self.core, &mut self.windows, trace, sink, observer);
            }
            KernelKind::Swar => {
                let config = &self.core.config;
                let (skip, cw, tw) = (
                    config.skip_factor(),
                    config.current_window(),
                    config.trailing_window(),
                );
                let mut windows = SwarWindows::begin(&mut self.swar, trace, skip, cw, tw);
                drive_observed(&mut self.core, &mut windows, trace, sink, observer);
            }
        }
    }

    /// Like
    /// [`run_interned_phases_only`](PhaseDetector::run_interned_phases_only),
    /// but observed — the instrumented zero-allocation sweep path.
    pub fn run_interned_phases_observed<O: opd_obs::DetectorObserver>(
        &mut self,
        trace: &InternedTrace,
        observer: &mut O,
    ) -> &[DetectedPhase] {
        self.run_interned_with_observer(trace, &mut NullSink, observer);
        self.detected_phases()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalyzerPolicy, ModelPolicy, ResizePolicy};
    use opd_trace::MethodId;

    fn elem(offset: u32) -> ProfileElement {
        ProfileElement::new(MethodId::new(0), offset, true)
    }

    fn config(cw: usize) -> DetectorConfig {
        DetectorConfig::builder()
            .current_window(cw)
            .build()
            .unwrap()
    }

    /// A trace of `blocks` blocks, each repeating `sites_per_block`
    /// distinct sites for `block_len` elements; blocks use disjoint
    /// sites so each block is one clear phase.
    fn block_trace(blocks: u32, block_len: u32, sites_per_block: u32) -> BranchTrace {
        let mut out = BranchTrace::new();
        for b in 0..blocks {
            for i in 0..block_len {
                out.push(elem(b * sites_per_block + i % sites_per_block));
            }
        }
        out
    }

    #[test]
    fn uniform_stream_becomes_one_phase() {
        let mut d = PhaseDetector::new(config(4));
        let trace: BranchTrace = (0..40).map(|_| elem(0)).collect();
        let states = d.run(&trace);
        // Warm-up: the windows fill on the 8th element (cw + tw = 8),
        // and that step already computes a similarity, so the first 7
        // elements report T and everything after reports P.
        assert!(states.as_slice()[..7].iter().all(|s| s.is_transition()));
        assert!(states.as_slice()[7..].iter().all(|s| s.is_phase()));
        assert_eq!(d.detected_phases().len(), 1);
        assert_eq!(d.detected_phases()[0].end, Some(40));
    }

    #[test]
    fn empty_trace_yields_empty_states() {
        let mut d = PhaseDetector::new(config(4));
        let states = d.run(&BranchTrace::new());
        assert!(states.is_empty());
        assert!(d.detected_phases().is_empty());
    }

    #[test]
    fn disjoint_blocks_produce_transitions() {
        let mut d = PhaseDetector::new(config(8));
        let trace = block_trace(3, 100, 4);
        let states = d.run(&trace);
        let intervals = opd_trace::intervals_of(&states);
        assert_eq!(intervals.len(), 3, "one phase per block: {intervals:?}");
        // Each phase ends near its block boundary.
        assert!(intervals[0].end() <= 110);
        assert!(intervals[1].start() >= 100);
    }

    #[test]
    fn process_panics_on_empty_step() {
        let mut d = PhaseDetector::new(config(4));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.process(&[]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn try_process_rejects_empty_step_without_state_change() {
        let mut d = PhaseDetector::new(config(4));
        assert_eq!(d.try_process(&[]), Err(DetectorError::EmptyStep));
        assert_eq!(d.elements_consumed(), 0);
        let e = ProfileElement::new(MethodId::new(0), 0, true);
        assert!(d.try_process(&[e]).is_ok());
        assert_eq!(d.elements_consumed(), 1);
    }

    #[test]
    fn run_and_run_interned_agree() {
        for tw_policy in [TwPolicy::Constant, TwPolicy::Adaptive] {
            for model in ModelPolicy::ALL {
                let cfg = DetectorConfig::builder()
                    .current_window(16)
                    .tw_policy(tw_policy)
                    .model(model)
                    .analyzer(AnalyzerPolicy::Threshold(0.6))
                    .build()
                    .unwrap();
                let trace = block_trace(4, 200, 5);
                let states_a = PhaseDetector::new(cfg).run(&trace);
                let interned = InternedTrace::from(&trace);
                let states_b = PhaseDetector::new(cfg).run_interned(&interned);
                assert_eq!(states_a, states_b, "{tw_policy} {model}");
            }
        }
    }

    #[test]
    fn interned_runs_agree_across_kernels() {
        for kernel in [KernelKind::Scalar, KernelKind::Swar] {
            for model in ModelPolicy::ALL_EXTENDED {
                let cfg = DetectorConfig::builder()
                    .current_window(16)
                    .model(model)
                    .build()
                    .unwrap();
                let trace = block_trace(4, 200, 5);
                let interned = InternedTrace::from(&trace);
                let mut d = PhaseDetector::with_kernel(cfg, kernel);
                assert_eq!(d.kernel(), kernel);
                let states = d.run_interned(&interned);
                let reference =
                    PhaseDetector::with_kernel(cfg, KernelKind::Scalar).run_interned(&interned);
                assert_eq!(states, reference, "{kernel} {model}");
            }
        }
    }

    #[test]
    fn skip_factor_labels_whole_steps() {
        let cfg = DetectorConfig::builder()
            .current_window(10)
            .skip_factor(7)
            .build()
            .unwrap();
        let mut d = PhaseDetector::new(cfg);
        let trace = block_trace(2, 100, 3);
        let states = d.run(&trace);
        assert_eq!(states.len(), 200);
        // States are constant within each full step of 7.
        for chunk in states.as_slice().chunks(7) {
            assert!(chunk.iter().all(|s| *s == chunk[0]));
        }
    }

    #[test]
    fn fixed_interval_detector_runs() {
        let cfg = DetectorConfig::fixed_interval(
            25,
            ModelPolicy::UnweightedSet,
            AnalyzerPolicy::Threshold(0.5),
        )
        .unwrap();
        let mut d = PhaseDetector::new(cfg);
        let trace = block_trace(4, 100, 5);
        let states = d.run(&trace);
        assert_eq!(states.len(), 400);
        // The first interval is pure warm-up; the second interval is
        // the first comparable one (TW = interval 1, CW = interval 2).
        assert!(states.as_slice()[..25].iter().all(|s| s.is_transition()));
        assert!(states.phase_count() > 0);
    }

    #[test]
    fn adaptive_tw_grows_during_phase() {
        let cfg = DetectorConfig::builder()
            .current_window(8)
            .tw_policy(TwPolicy::Adaptive)
            .build()
            .unwrap();
        let mut d = PhaseDetector::new(cfg);
        for i in 0..200 {
            d.process(&[elem(i % 4)]);
        }
        assert!(d.state().is_phase());
        assert!(
            d.windows().tw_len() > d.windows().tw_cap(),
            "adaptive TW should have grown: {} <= {}",
            d.windows().tw_len(),
            d.windows().tw_cap()
        );
    }

    #[test]
    fn constant_tw_stays_at_capacity() {
        let mut d = PhaseDetector::new(config(8));
        for i in 0..200 {
            d.process(&[elem(i % 4)]);
        }
        assert!(d.state().is_phase());
        assert_eq!(d.windows().tw_len(), 8);
    }

    #[test]
    fn anchored_start_precedes_detection_start() {
        for resize in [ResizePolicy::Slide, ResizePolicy::Move] {
            let cfg = DetectorConfig::builder()
                .current_window(8)
                .tw_policy(TwPolicy::Adaptive)
                .resize(resize)
                .build()
                .unwrap();
            let mut d = PhaseDetector::new(cfg);
            let trace = block_trace(2, 300, 4);
            let _ = d.run(&trace);
            for p in d.detected_phases() {
                assert!(p.anchored_start <= p.start, "{resize}: {p:?}");
            }
        }
    }

    #[test]
    fn windows_flushed_at_phase_end() {
        let mut d = PhaseDetector::new(config(8));
        let trace = block_trace(2, 100, 4);
        let states = d.run(&trace);
        // There was a phase end (P followed by T) somewhere.
        let s = states.as_slice();
        assert!(s
            .windows(2)
            .any(|w| w[0].is_phase() && w[1].is_transition()));
        assert_eq!(d.detected_phases().len(), 2);
        assert!(d.detected_phases()[0].end.is_some());
    }

    #[test]
    fn average_analyzer_tolerates_drift() {
        // Slow drift within a phase: the average analyzer with a loose
        // delta keeps the phase alive longer than a tight threshold.
        let mut trace = BranchTrace::new();
        for i in 0..400u32 {
            // Working set slowly rotates: sites i/40 .. i/40+3.
            trace.push(elem(i / 40 + i % 4));
        }
        let loose = DetectorConfig::builder()
            .current_window(16)
            .analyzer(AnalyzerPolicy::Average { delta: 0.4 })
            .build()
            .unwrap();
        let tight = DetectorConfig::builder()
            .current_window(16)
            .analyzer(AnalyzerPolicy::Threshold(0.95))
            .build()
            .unwrap();
        let loose_p = PhaseDetector::new(loose).run(&trace).phase_count();
        let tight_p = PhaseDetector::new(tight).run(&trace).phase_count();
        assert!(loose_p >= tight_p, "loose {loose_p} vs tight {tight_p}");
    }

    #[test]
    fn last_similarity_exposed_once_warm() {
        let mut d = PhaseDetector::new(config(4));
        for _ in 0..7 {
            d.process(&[elem(0)]);
            assert_eq!(d.last_similarity(), None);
        }
        d.process(&[elem(0)]);
        assert_eq!(d.last_similarity(), Some(1.0));
    }

    #[test]
    fn confidence_reported_once_warm() {
        let mut d = PhaseDetector::new(config(4));
        for _ in 0..7 {
            d.process(&[elem(0)]);
            assert_eq!(d.confidence(), None);
        }
        d.process(&[elem(0)]);
        // Similarity 1.0 against threshold 0.5: fully confident.
        assert_eq!(d.confidence(), Some(1.0));
    }

    #[test]
    fn consumed_counter_tracks_elements() {
        let mut d = PhaseDetector::new(config(4));
        d.process(&[elem(0), elem(1), elem(2)]);
        assert_eq!(d.elements_consumed(), 3);
    }
}
