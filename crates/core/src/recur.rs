//! Recurring-phase detection: phase signatures and classification.
//!
//! The paper lists this as the framework's first planned extension
//! (Section 7): "detect phases that repeat themselves", so that "a
//! dynamic optimization system [can] record the efficacy of a
//! phase-based optimization at the end of the phase and determine
//! whether to employ the same optimization when the phase reoccurs".
//! Section 2 likewise allows a detector to report "whether a detected
//! phase is similar to a previously known phase".
//!
//! [`RecurringPhaseDetector`] wraps a [`PhaseDetector`]: while in
//! phase it accumulates the phase's *signature* (its weighted working
//! set); at the phase's end it classifies the signature against a
//! registry of previously seen phases using the symmetric weighted
//! similarity, assigning an existing [`PhaseId`] when the best match
//! clears a threshold and a fresh one otherwise.

use std::collections::HashMap;

use opd_trace::{BranchTrace, PhaseState, ProfileElement, StateSeq};

use crate::config::{ConfigError, DetectorConfig};
use crate::detector::PhaseDetector;

/// Identifier of a recurring phase class.
///
/// Ids are dense, assigned in first-appearance order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhaseId(u32);

impl PhaseId {
    /// Returns the dense class index.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for PhaseId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "phase#{}", self.0)
    }
}

/// A phase's signature: the multiset of profile elements it executed.
///
/// # Examples
///
/// ```
/// use opd_core::PhaseSignature;
/// use opd_trace::{MethodId, ProfileElement};
///
/// let e = |o| ProfileElement::new(MethodId::new(0), o, true);
/// let a: PhaseSignature = [e(1), e(1), e(2)].into_iter().collect();
/// let b: PhaseSignature = [e(1), e(2), e(2)].into_iter().collect();
/// let sim = a.similarity(&b);
/// assert!(sim > 0.6 && sim < 0.7); // min(2/3,1/3) + min(1/3,2/3)
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseSignature {
    counts: HashMap<ProfileElement, u64>,
    total: u64,
}

impl PhaseSignature {
    /// Creates an empty signature.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one executed element into the signature.
    pub fn record(&mut self, element: ProfileElement) {
        *self.counts.entry(element).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of elements recorded.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of distinct elements recorded.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Symmetric weighted similarity with another signature: the sum
    /// over elements of the minimum relative frequency, in `[0, 1]` —
    /// the same measure as the framework's weighted set model.
    #[must_use]
    pub fn similarity(&self, other: &PhaseSignature) -> f64 {
        if self.total == 0 || other.total == 0 {
            return 0.0;
        }
        let (small, large) = if self.counts.len() <= other.counts.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut sum = 0.0;
        for (e, &c) in &small.counts {
            let oc = large.counts.get(e).copied().unwrap_or(0);
            let ws = c as f64 / small.total as f64;
            let wl = oc as f64 / large.total as f64;
            sum += ws.min(wl);
        }
        sum
    }

    /// Merges another signature into this one (used when a phase
    /// recurrence refines its class's stored signature).
    pub fn merge(&mut self, other: &PhaseSignature) {
        for (&e, &c) in &other.counts {
            *self.counts.entry(e).or_insert(0) += c;
        }
        self.total += other.total;
    }
}

impl FromIterator<ProfileElement> for PhaseSignature {
    fn from_iter<I: IntoIterator<Item = ProfileElement>>(iter: I) -> Self {
        let mut sig = PhaseSignature::new();
        for e in iter {
            sig.record(e);
        }
        sig
    }
}

/// A registry of phase classes keyed by signature similarity.
#[derive(Debug, Clone)]
pub struct PhaseRegistry {
    classes: Vec<PhaseSignature>,
    occurrences: Vec<u32>,
    match_threshold: f64,
}

impl PhaseRegistry {
    /// Creates a registry. `match_threshold` is the minimum signature
    /// similarity for a phase to be considered a recurrence of a known
    /// class.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadThreshold`] if the threshold is not a
    /// finite number in `[0, 1]`.
    pub fn new(match_threshold: f64) -> Result<Self, ConfigError> {
        if !(0.0..=1.0).contains(&match_threshold) {
            return Err(ConfigError::BadThreshold(match_threshold));
        }
        Ok(PhaseRegistry {
            classes: Vec::new(),
            occurrences: Vec::new(),
            match_threshold,
        })
    }

    /// Number of distinct phase classes seen.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// How many times the given class has occurred.
    #[must_use]
    pub fn occurrences(&self, id: PhaseId) -> u32 {
        self.occurrences.get(id.0 as usize).copied().unwrap_or(0)
    }

    /// The stored signature of one class.
    #[must_use]
    pub fn signature(&self, id: PhaseId) -> Option<&PhaseSignature> {
        self.classes.get(id.0 as usize)
    }

    /// Classifies a completed phase: returns its class id and whether
    /// it is a recurrence of a previously seen class. Recurrences
    /// merge their signature into the class's stored one.
    pub fn classify(&mut self, signature: PhaseSignature) -> (PhaseId, bool) {
        let best = self
            .classes
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.similarity(&signature)))
            .max_by(|a, b| a.1.total_cmp(&b.1));
        if let Some((idx, sim)) = best {
            if sim >= self.match_threshold {
                self.classes[idx].merge(&signature);
                self.occurrences[idx] += 1;
                return (PhaseId(idx as u32), true);
            }
        }
        let id = PhaseId(self.classes.len() as u32);
        self.classes.push(signature);
        self.occurrences.push(1);
        (id, false)
    }
}

/// One phase occurrence, as reported by [`RecurringPhaseDetector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecurringPhase {
    /// Offset of the first element labelled `P`.
    pub start: u64,
    /// One past the last element of the phase.
    pub end: u64,
    /// The phase class.
    pub class: PhaseId,
    /// `true` if the class had been seen before this occurrence.
    pub recurrence: bool,
}

/// An online detector that additionally recognizes when a detected
/// phase is a recurrence of a previously seen one.
///
/// # Examples
///
/// ```
/// use opd_core::{DetectorConfig, RecurringPhaseDetector};
/// use opd_trace::{MethodId, ProfileElement};
///
/// let config = DetectorConfig::builder().current_window(8).build()?;
/// let mut det = RecurringPhaseDetector::new(config, 0.5)?;
/// // Alternate two long blocks with distinct working sets, twice.
/// let block = |base: u32| (0..400).map(move |i| {
///     ProfileElement::new(MethodId::new(0), base + i % 4, true)
/// });
/// for round in 0..2 {
///     let _ = round;
///     for e in block(0).chain(block(100)) {
///         det.process(&[e]);
///     }
/// }
/// det.finish();
/// // Two classes, each seen twice.
/// assert_eq!(det.registry().class_count(), 2);
/// # Ok::<(), opd_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RecurringPhaseDetector {
    inner: PhaseDetector,
    registry: PhaseRegistry,
    current: Option<(u64, PhaseSignature)>,
    phases: Vec<RecurringPhase>,
}

impl RecurringPhaseDetector {
    /// Creates a recurring-phase detector from a framework
    /// configuration and a signature match threshold.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadThreshold`] for an out-of-range match
    /// threshold.
    pub fn new(config: DetectorConfig, match_threshold: f64) -> Result<Self, ConfigError> {
        Ok(RecurringPhaseDetector {
            inner: PhaseDetector::new(config),
            registry: PhaseRegistry::new(match_threshold)?,
            current: None,
            phases: Vec::new(),
        })
    }

    /// The wrapped online detector.
    #[must_use]
    pub fn detector(&self) -> &PhaseDetector {
        &self.inner
    }

    /// The phase-class registry.
    #[must_use]
    pub fn registry(&self) -> &PhaseRegistry {
        &self.registry
    }

    /// The classified phase occurrences so far (completed phases
    /// only; call [`finish`](RecurringPhaseDetector::finish) to close
    /// a phase still open at end of input).
    #[must_use]
    pub fn phases(&self) -> &[RecurringPhase] {
        &self.phases
    }

    /// Consumes one step of profile elements (see
    /// [`PhaseDetector::process`]).
    ///
    /// # Panics
    ///
    /// Panics if `elements` is empty.
    pub fn process(&mut self, elements: &[ProfileElement]) -> PhaseState {
        let before = self.inner.state();
        let step_start = self.inner.elements_consumed();
        let state = self.inner.process(elements);
        match (before, state) {
            (PhaseState::Transition, PhaseState::Phase) => {
                let mut sig = PhaseSignature::new();
                for &e in elements {
                    sig.record(e);
                }
                self.current = Some((step_start, sig));
            }
            (PhaseState::Phase, PhaseState::Phase) => {
                if let Some((_, sig)) = &mut self.current {
                    for &e in elements {
                        sig.record(e);
                    }
                }
            }
            (PhaseState::Phase, PhaseState::Transition) => {
                self.close_phase(step_start);
            }
            (PhaseState::Transition, PhaseState::Transition) => {}
        }
        state
    }

    /// Runs over a whole trace, returning the per-element states and
    /// classifying every completed phase.
    pub fn run(&mut self, trace: &BranchTrace) -> StateSeq {
        let mut seq = StateSeq::with_capacity(trace.len());
        let skip = self.inner.config().skip_factor();
        for chunk in trace.as_slice().chunks(skip) {
            let state = self.process(chunk);
            seq.push_n(state, chunk.len());
        }
        self.finish();
        seq
    }

    /// Closes and classifies a phase still open at end of input.
    pub fn finish(&mut self) {
        let end = self.inner.elements_consumed();
        self.close_phase(end);
        self.inner.close_open_phase();
    }

    fn close_phase(&mut self, end: u64) {
        if let Some((start, sig)) = self.current.take() {
            let (class, recurrence) = self.registry.classify(sig);
            self.phases.push(RecurringPhase {
                start,
                end,
                class,
                recurrence,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_trace::MethodId;

    fn elem(offset: u32) -> ProfileElement {
        ProfileElement::new(MethodId::new(0), offset, true)
    }

    fn config(cw: usize) -> DetectorConfig {
        DetectorConfig::builder()
            .current_window(cw)
            .build()
            .unwrap()
    }

    /// blocks of `len` elements drawn from `sites_base..sites_base+k`.
    fn block(base: u32, len: u32) -> impl Iterator<Item = ProfileElement> {
        (0..len).map(move |i| elem(base + i % 4))
    }

    #[test]
    fn signature_similarity_identical_and_disjoint() {
        let a: PhaseSignature = block(0, 100).collect();
        let b: PhaseSignature = block(0, 100).collect();
        let c: PhaseSignature = block(50, 100).collect();
        assert!((a.similarity(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.similarity(&c), 0.0);
        assert!(a.similarity(&PhaseSignature::new()) == 0.0);
        assert_eq!(a.distinct(), 4);
        assert_eq!(a.len(), 100);
        assert!(!a.is_empty());
    }

    #[test]
    fn signature_similarity_is_symmetric() {
        let a: PhaseSignature = block(0, 77).chain(block(2, 13)).collect();
        let b: PhaseSignature = block(1, 200).collect();
        assert!((a.similarity(&b) - b.similarity(&a)).abs() < 1e-12);
    }

    #[test]
    fn registry_assigns_and_recognizes_classes() {
        let mut reg = PhaseRegistry::new(0.5).unwrap();
        let (id_a, rec) = reg.classify(block(0, 100).collect());
        assert!(!rec);
        let (id_b, rec) = reg.classify(block(50, 100).collect());
        assert!(!rec);
        assert_ne!(id_a, id_b);
        let (id_a2, rec) = reg.classify(block(0, 120).collect());
        assert!(rec);
        assert_eq!(id_a, id_a2);
        assert_eq!(reg.class_count(), 2);
        assert_eq!(reg.occurrences(id_a), 2);
        assert_eq!(reg.occurrences(id_b), 1);
        assert!(reg.signature(id_a).is_some());
        assert!(reg.signature(PhaseId(9)).is_none());
        assert_eq!(format!("{id_a}"), "phase#0");
    }

    #[test]
    fn bad_threshold_rejected() {
        assert!(PhaseRegistry::new(1.5).is_err());
        assert!(RecurringPhaseDetector::new(config(8), -0.1).is_err());
    }

    #[test]
    fn detector_classifies_recurring_blocks() {
        let mut det = RecurringPhaseDetector::new(config(8), 0.5).unwrap();
        let trace: BranchTrace = block(0, 500)
            .chain(block(100, 500))
            .chain(block(0, 500))
            .chain(block(100, 500))
            .collect();
        let states = det.run(&trace);
        assert_eq!(states.len(), 2000);
        let phases = det.phases();
        assert_eq!(phases.len(), 4, "{phases:?}");
        assert_eq!(det.registry().class_count(), 2);
        assert_eq!(phases[0].class, phases[2].class);
        assert_eq!(phases[1].class, phases[3].class);
        assert!(!phases[0].recurrence && !phases[1].recurrence);
        assert!(phases[2].recurrence && phases[3].recurrence);
    }

    #[test]
    fn uniform_stream_is_one_class() {
        let mut det = RecurringPhaseDetector::new(config(8), 0.5).unwrap();
        let trace: BranchTrace = block(0, 1000).collect();
        let _ = det.run(&trace);
        assert_eq!(det.registry().class_count(), 1);
        assert_eq!(det.phases().len(), 1);
        assert_eq!(det.phases()[0].end, 1000);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut det = RecurringPhaseDetector::new(config(4), 0.5).unwrap();
        for e in block(0, 100) {
            det.process(&[e]);
        }
        det.finish();
        det.finish();
        assert_eq!(det.phases().len(), 1);
    }

    #[test]
    fn states_match_inner_detector() {
        let trace: BranchTrace = block(0, 300).chain(block(30, 300)).collect();
        let mut plain = PhaseDetector::new(config(8));
        let expected = plain.run(&trace);
        let mut rec = RecurringPhaseDetector::new(config(8), 0.5).unwrap();
        let got = rec.run(&trace);
        assert_eq!(expected, got);
        assert_eq!(rec.detector().elements_consumed(), 600);
    }
}
