//! Property tests: for random traces and random config grids, the
//! sweep engine's phases are bit-identical to a fresh sequential
//! [`PhaseDetector`] per config — across both trailing-window
//! policies, all models and analyzers, and skip factors larger than
//! the current window (which must route to the private path).

use opd_core::{
    AnalyzerPolicy, AnchorPolicy, DetectorConfig, InternedTrace, ModelPolicy, PhaseDetector,
    ResizePolicy, SweepEngine, TwPolicy,
};
use opd_trace::{MethodId, ProfileElement};
use proptest::prelude::*;

fn interned(sites: &[u32]) -> InternedTrace {
    InternedTrace::from_elements(
        sites
            .iter()
            .map(|&s| ProfileElement::new(MethodId::new(0), s, true)),
    )
}

/// Decodes one packed parameter tuple into a detector config. `flags`
/// packs tw-policy, anchor, resize, and analyzer-kind choices.
fn decode(cw: usize, tw: usize, skip: usize, flags: u8, model: u8, x: f64) -> DetectorConfig {
    let model = match model {
        0 => ModelPolicy::UnweightedSet,
        1 => ModelPolicy::WeightedSet,
        _ => ModelPolicy::Pearson,
    };
    let analyzer = if flags & 8 == 0 {
        AnalyzerPolicy::Threshold(x)
    } else {
        AnalyzerPolicy::Average { delta: x / 2.0 }
    };
    DetectorConfig::builder()
        .current_window(cw)
        .trailing_window(tw)
        .skip_factor(skip)
        .tw_policy(if flags & 1 == 0 {
            TwPolicy::Constant
        } else {
            TwPolicy::Adaptive
        })
        .anchor(if flags & 2 == 0 {
            AnchorPolicy::RightmostNoisy
        } else {
            AnchorPolicy::LeftmostNonNoisy
        })
        .resize(if flags & 4 == 0 {
            ResizePolicy::Slide
        } else {
            ResizePolicy::Move
        })
        .model(model)
        .analyzer(analyzer)
        .build()
        .expect("generated parameters are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_is_bit_identical_to_sequential_detectors(
        sites in prop::collection::vec(0u32..10, 0..500),
        params in prop::collection::vec(
            (1usize..24, 1usize..24, 1usize..32, 0u8..16, 0u8..3, 0.05f64..0.95),
            1..10,
        ),
    ) {
        let trace = interned(&sites);
        let configs: Vec<DetectorConfig> = params
            .iter()
            .map(|&(cw, tw, skip, flags, model, x)| decode(cw, tw, skip, flags, model, x))
            .collect();
        let engine = SweepEngine::new(&configs);
        let covered: usize = engine
            .units()
            .iter()
            .map(|u| u.config_indices().len())
            .sum();
        prop_assert_eq!(covered, configs.len());
        let all = engine.run_all(&trace);
        for (i, &config) in configs.iter().enumerate() {
            let mut detector = PhaseDetector::new(config);
            let _ = detector.run_interned(&trace);
            prop_assert_eq!(
                all[i].as_slice(),
                detector.detected_phases(),
                "config {}: {:?}",
                i,
                config
            );
        }
    }

    #[test]
    fn shared_scan_count_never_exceeds_config_count(
        params in prop::collection::vec(
            (1usize..24, 1usize..24, 1usize..32, 0u8..16, 0u8..3, 0.05f64..0.95),
            1..16,
        ),
    ) {
        let configs: Vec<DetectorConfig> = params
            .iter()
            .map(|&(cw, tw, skip, flags, model, x)| decode(cw, tw, skip, flags, model, x))
            .collect();
        let engine = SweepEngine::new(&configs);
        prop_assert!(engine.total_scans() <= configs.len());
        for unit in engine.units() {
            if unit.is_shared() {
                let first = configs[unit.config_indices()[0]];
                // Both TW policies share scans now; only skip > cw
                // routes privately.
                prop_assert!(first.skip_factor() <= first.current_window());
                let shape = first.shape();
                for &i in unit.config_indices() {
                    prop_assert_eq!(configs[i].tw_policy(), first.tw_policy());
                    prop_assert_eq!(configs[i].shape(), shape);
                }
            } else {
                let first = configs[unit.config_indices()[0]];
                prop_assert!(first.skip_factor() > first.current_window());
                prop_assert_eq!(unit.config_indices().len(), 1);
            }
        }
    }
}
