//! Property tests: the incrementally maintained [`Windows`] state
//! against a brute-force reference model built from plain vectors.

use proptest::prelude::*;

use opd_core::{AnchorPolicy, ModelPolicy, Windows};

/// The reference model: the same FIFO semantics, implemented naively.
#[derive(Debug, Clone)]
struct NaiveWindows {
    tw: Vec<u32>,
    cw: Vec<u32>,
    cw_cap: usize,
    tw_cap: usize,
}

impl NaiveWindows {
    fn new(cw_cap: usize, tw_cap: usize) -> Self {
        NaiveWindows {
            tw: Vec::new(),
            cw: Vec::new(),
            cw_cap,
            tw_cap,
        }
    }

    fn push(&mut self, site: u32, tw_grows: bool) {
        self.cw.push(site);
        if self.cw.len() > self.cw_cap {
            let moved = self.cw.remove(0);
            self.tw.push(moved);
        }
        if !tw_grows {
            while self.tw.len() > self.tw_cap {
                self.tw.remove(0);
            }
        }
    }

    fn clear_keep_last(&mut self, keep: usize) {
        let mut all = self.tw.clone();
        all.extend(&self.cw);
        let start = all.len().saturating_sub(keep);
        self.cw = all[start..].to_vec();
        self.tw.clear();
    }

    fn count(v: &[u32], site: u32) -> u32 {
        v.iter().filter(|&&s| s == site).count() as u32
    }

    fn unweighted(&self) -> f64 {
        let mut distinct: Vec<u32> = self.cw.clone();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.is_empty() {
            return 0.0;
        }
        let shared = distinct
            .iter()
            .filter(|&&s| Self::count(&self.tw, s) > 0)
            .count();
        shared as f64 / distinct.len() as f64
    }

    fn weighted(&self) -> f64 {
        if self.cw.is_empty() || self.tw.is_empty() {
            return 0.0;
        }
        let mut distinct: Vec<u32> = self.cw.clone();
        distinct.sort_unstable();
        distinct.dedup();
        distinct
            .iter()
            .map(|&s| {
                let wc = f64::from(Self::count(&self.cw, s)) / self.cw.len() as f64;
                let wt = f64::from(Self::count(&self.tw, s)) / self.tw.len() as f64;
                wc.min(wt)
            })
            .sum()
    }

    fn anchor_rn(&self) -> usize {
        for j in (0..self.tw.len()).rev() {
            if Self::count(&self.cw, self.tw[j]) == 0 {
                return j + 1;
            }
        }
        0
    }

    fn anchor_lnn(&self) -> usize {
        for (j, &site) in self.tw.iter().enumerate() {
            if Self::count(&self.cw, site) > 0 {
                return j;
            }
        }
        self.tw.len()
    }
}

/// An operation on the window pair.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u32, bool),
    Clear(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            8 => (0u32..12, any::<bool>()).prop_map(|(s, g)| Op::Push(s, g)),
            1 => (0usize..6).prop_map(Op::Clear),
        ],
        1..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn windows_match_naive_model(
        cw_cap in 1usize..12,
        tw_cap in 1usize..12,
        ops in arb_ops(),
    ) {
        let mut fast = Windows::new(cw_cap, tw_cap);
        let mut slow = NaiveWindows::new(cw_cap, tw_cap);
        for op in ops {
            match op {
                Op::Push(site, grows) => {
                    fast.push(site, grows);
                    slow.push(site, grows);
                }
                Op::Clear(keep) => {
                    fast.clear_keep_last(keep);
                    slow.clear_keep_last(keep);
                }
            }
            prop_assert_eq!(fast.cw_len(), slow.cw.len());
            prop_assert_eq!(fast.tw_len(), slow.tw.len());
            for s in 0..12 {
                prop_assert_eq!(fast.cw_count(s), NaiveWindows::count(&slow.cw, s), "cw {}", s);
                prop_assert_eq!(fast.tw_count(s), NaiveWindows::count(&slow.tw, s), "tw {}", s);
            }
            let (fu, su) = (ModelPolicy::UnweightedSet.similarity(&fast), slow.unweighted());
            prop_assert!((fu - su).abs() < 1e-9, "unweighted {fu} vs {su}");
            let (fw, sw) = (ModelPolicy::WeightedSet.similarity(&fast), slow.weighted());
            prop_assert!((fw - sw).abs() < 1e-9, "weighted {fw} vs {sw}");
            prop_assert_eq!(
                fast.anchor_index(AnchorPolicy::RightmostNoisy),
                slow.anchor_rn()
            );
            prop_assert_eq!(
                fast.anchor_index(AnchorPolicy::LeftmostNonNoisy),
                slow.anchor_lnn()
            );
        }
    }

    #[test]
    fn pearson_is_bounded_and_symmetric_in_support(
        cw_cap in 1usize..10,
        tw_cap in 1usize..10,
        sites in prop::collection::vec(0u32..8, 1..120),
    ) {
        let mut w = Windows::new(cw_cap, tw_cap);
        for s in sites {
            w.push(s, false);
            let p = ModelPolicy::Pearson.similarity(&w);
            prop_assert!((0.0..=1.0).contains(&p), "{p}");
        }
    }
}
