//! Exploration models of the repository's concurrent subsystems, plus
//! the seeded-bug mutants that prove the auditor is not vacuous.
//!
//! Each model is a closure suitable for [`crate::Explorer::explore`]:
//! it builds its shared state fresh, runs a small but schedule-complete
//! instance of the real protocol on the instrumented sync layer, and
//! asserts the protocol's invariant with [`crate::check`]. The model
//! for the metrics registry lives in `opd-obs` (behind its `sched`
//! feature) because it drives the *real* `MetricsRegistry` — the two
//! models here abstract protocols whose real implementations are
//! structurally tied to files and OS threads.
//!
//! Sizes are chosen so exhaustive DPOR exploration stays in the
//! thousands of schedules: 2 worker threads and 2–3 shared slots
//! already cover every ordering class of each protocol (every pair of
//! operations that *can* commute or conflict does so somewhere in the
//! state space).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::sync::{check, thread, SyncAtomicU64, SyncCell};

/// Model of the sweep runner's disjoint-bucket protocol
/// (`crates/experiments/src/runner.rs`): an LPT plan statically
/// assigns each work item to exactly one bucket, workers fill only
/// their own result slots, and a shared `Relaxed` progress counter
/// ticks per item. The invariant: after joining both workers, every
/// slot holds its item's result and the counter equals the item
/// count. Disjointness is what makes the `Relaxed` counter and the
/// unsynchronized slots safe — the joins provide the only
/// happens-before edges the protocol needs.
pub fn runner_disjoint_buckets() {
    // LPT on costs [3, 2, 2] over 2 buckets: bucket 0 <- item 0,
    // bucket 1 <- items 1, 2 (mirrors `lpt_plan`).
    const BUCKETS: [&[usize]; 2] = [&[0], &[1, 2]];
    let slots: Arc<Vec<SyncCell<u64>>> = Arc::new(
        (0..3)
            .map(|i| SyncCell::labeled(0u64, format!("results[{i}]")))
            .collect(),
    );
    let progress = Arc::new(SyncAtomicU64::labeled(0, "progress"));
    let workers: Vec<thread::JoinHandle> = BUCKETS
        .iter()
        .map(|bucket| {
            let slots = Arc::clone(&slots);
            let progress = Arc::clone(&progress);
            thread::spawn(move || {
                for &item in *bucket {
                    slots[item].write(item as u64 + 10);
                    progress.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for w in workers {
        w.join();
    }
    for (i, slot) in slots.iter().enumerate() {
        check(slot.read() == i as u64 + 10, "slot filled exactly once");
    }
    check(
        progress.load(Ordering::Relaxed) == 3,
        "progress counter counts every item",
    );
}

/// Model of the checkpoint append/flush/longest-valid-prefix protocol
/// (`crates/experiments/src/checkpoint.rs`): a writer appends record
/// payloads and then publishes the new valid-prefix length with a
/// `Release` store; a concurrent reader takes an `Acquire` snapshot of
/// the length and must see fully written payloads for the whole
/// prefix — the in-memory analogue of "a record's bytes and checksum
/// are durable before the reader can parse them".
pub fn checkpoint_writer_reader() {
    const RECORDS: u64 = 2;
    let payload: Arc<Vec<SyncCell<u64>>> = Arc::new(
        (0..RECORDS)
            .map(|i| SyncCell::labeled(0u64, format!("record[{i}]")))
            .collect(),
    );
    let committed = Arc::new(SyncAtomicU64::labeled(0, "committed"));
    let writer = {
        let payload = Arc::clone(&payload);
        let committed = Arc::clone(&committed);
        thread::spawn(move || {
            for i in 0..RECORDS {
                payload[i as usize].write(100 + i);
                committed.store(i + 1, Ordering::Release);
            }
        })
    };
    let reader = {
        let payload = Arc::clone(&payload);
        let committed = Arc::clone(&committed);
        thread::spawn(move || {
            let prefix = committed.load(Ordering::Acquire);
            check(prefix <= RECORDS, "prefix never exceeds written records");
            for i in 0..prefix {
                check(
                    payload[i as usize].read() == 100 + i,
                    "committed prefix is fully written",
                );
            }
        })
    };
    writer.join();
    reader.join();
}

/// Seeded bug: a metrics-style counter updated with `load` + `store`
/// instead of `fetch_add`. Two writers each "increment" once; one
/// increment can vanish. The auditor reports a
/// [`crate::FindingKind::LostUpdate`] on `hits` — the exact failure
/// `fetch_add` exists to prevent.
pub fn metrics_lost_update() {
    let hits = Arc::new(SyncAtomicU64::labeled(0, "hits"));
    let workers: Vec<thread::JoinHandle> = (0..2)
        .map(|_| {
            let hits = Arc::clone(&hits);
            thread::spawn(move || {
                let v = hits.load(Ordering::Relaxed);
                hits.store(v + 1, Ordering::Relaxed);
            })
        })
        .collect();
    for w in workers {
        w.join();
    }
}

/// Seeded bug: an off-by-one in the bucket plan makes two workers
/// share item 1. The auditor reports a
/// [`crate::FindingKind::DataRace`] on `results[1]` — the disjointness
/// invariant the real `lpt_plan` guarantees.
pub fn runner_overlapping_buckets() {
    const BUCKETS: [&[usize]; 2] = [&[0, 1], &[1, 2]];
    let slots: Arc<Vec<SyncCell<u64>>> = Arc::new(
        (0..3)
            .map(|i| SyncCell::labeled(0u64, format!("results[{i}]")))
            .collect(),
    );
    let workers: Vec<thread::JoinHandle> = BUCKETS
        .iter()
        .map(|bucket| {
            let slots = Arc::clone(&slots);
            thread::spawn(move || {
                for &item in *bucket {
                    slots[item].write(item as u64 + 10);
                }
            })
        })
        .collect();
    for w in workers {
        w.join();
    }
}

/// Seeded bug: the main thread reads result slots *before* joining
/// the worker. Without the join edge the reads race the worker's
/// writes — a [`crate::FindingKind::DataRace`] on `results[0]`.
pub fn runner_dropped_join() {
    let slots: Arc<Vec<SyncCell<u64>>> = Arc::new(vec![SyncCell::labeled(0u64, "results[0]")]);
    let worker = {
        let slots = Arc::clone(&slots);
        thread::spawn(move || {
            slots[0].write(10);
        })
    };
    let _ = slots[0].read();
    worker.join();
}

/// Seeded bug: the checkpoint writer publishes the prefix length with
/// a `Relaxed` read-modify-write. No happens-before edge covers the
/// payload, so the reader's payload access races the writer's — a
/// [`crate::FindingKind::DataRace`] on `record[0]`, and the site
/// profile shows exactly the weakened publication shape the
/// `OPD-R202` lint flags (Relaxed RMW writes, Acquire reads).
pub fn checkpoint_relaxed_publish() {
    let payload = Arc::new(SyncCell::labeled(0u64, "record[0]"));
    let committed = Arc::new(SyncAtomicU64::labeled(0, "committed"));
    let writer = {
        let payload = Arc::clone(&payload);
        let committed = Arc::clone(&committed);
        thread::spawn(move || {
            payload.write(100);
            committed.fetch_add(1, Ordering::Relaxed);
        })
    };
    let reader = {
        let payload = Arc::clone(&payload);
        let committed = Arc::clone(&committed);
        thread::spawn(move || {
            if committed.load(Ordering::Acquire) == 1 {
                check(payload.read() == 100, "published record is written");
            }
        })
    };
    writer.join();
    reader.join();
}

/// The shared-object labels each clean model is expected to touch —
/// the ground truth for the `OPD-R201` (unexplored atomic) lint.
#[must_use]
pub fn runner_expected_objects() -> Vec<String> {
    let mut v: Vec<String> = (0..3).map(|i| format!("results[{i}]")).collect();
    v.push("progress".to_owned());
    v
}

/// Expected objects of [`checkpoint_writer_reader`].
#[must_use]
pub fn checkpoint_expected_objects() -> Vec<String> {
    vec![
        "record[0]".to_owned(),
        "record[1]".to_owned(),
        "committed".to_owned(),
    ]
}
