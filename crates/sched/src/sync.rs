//! The instrumented sync layer model code is written against:
//! [`SyncAtomicU64`], [`SyncCell`], [`thread::spawn`]/[`thread::JoinHandle`],
//! and [`check`]. Inside an active exploration every operation is a
//! schedule point routed through the controller; outside one, each
//! call falls through to the plain `std` primitive with the requested
//! ordering, so the same code runs unchanged (and unslowed) in
//! production builds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::runtime::{with_current, AtomicEffect, ObjSlot, OpRequest};

/// An `AtomicU64` whose operations become schedule points under the
/// explorer. Drop-in for the `load`/`store`/`fetch_add` subset of
/// `std::sync::atomic::AtomicU64`.
#[derive(Debug, Default)]
pub struct SyncAtomicU64 {
    storage: AtomicU64,
    slot: ObjSlot,
}

impl SyncAtomicU64 {
    /// A new atomic holding `v`.
    #[must_use]
    pub fn new(v: u64) -> Self {
        SyncAtomicU64 {
            storage: AtomicU64::new(v),
            slot: ObjSlot::new(),
        }
    }

    /// A new atomic with a label used in witnesses, profiles, and
    /// lints (e.g. `"ops[3]"`, `"committed"`).
    #[must_use]
    pub fn labeled(v: u64, label: impl Into<String>) -> Self {
        let a = SyncAtomicU64::new(v);
        let _ = a.slot.label.set(label.into());
        a
    }

    /// Labels the atomic after creation (the first label wins; later
    /// calls are ignored). Useful when the atomic lives inside a
    /// container built before labels are known.
    pub fn set_label(&self, label: impl Into<String>) {
        let _ = self.slot.label.set(label.into());
    }

    /// Atomic load.
    pub fn load(&self, order: Ordering) -> u64 {
        with_current(|exec, me| {
            exec.scheduled_op(
                me,
                OpRequest::Atomic {
                    slot: &self.slot,
                    effect: AtomicEffect::Load(&self.storage),
                    order,
                },
            )
        })
        .unwrap_or_else(|| self.storage.load(order))
    }

    /// Atomic store.
    pub fn store(&self, v: u64, order: Ordering) {
        with_current(|exec, me| {
            exec.scheduled_op(
                me,
                OpRequest::Atomic {
                    slot: &self.slot,
                    effect: AtomicEffect::Store(&self.storage, v),
                    order,
                },
            );
        })
        .unwrap_or_else(|| self.storage.store(v, order));
    }

    /// Atomic fetch-add, returning the previous value.
    pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        with_current(|exec, me| {
            exec.scheduled_op(
                me,
                OpRequest::Atomic {
                    slot: &self.slot,
                    effect: AtomicEffect::FetchAdd(&self.storage, v),
                    order,
                },
            )
        })
        .unwrap_or_else(|| self.storage.fetch_add(v, order))
    }
}

/// A plain (non-atomic) shared cell. Under the explorer every access
/// is a schedule point and the vector-clock auditor reports a
/// [`crate::FindingKind::DataRace`] the moment two unordered accesses
/// (one a write) touch it. Outside the explorer it is just a mutex'd
/// value, so production code should not route hot paths through it —
/// it exists to model *data* (payload bytes, result slots) whose
/// safety the surrounding synchronization is supposed to guarantee.
#[derive(Debug, Default)]
pub struct SyncCell<T> {
    value: Mutex<T>,
    slot: ObjSlot,
}

impl<T: Copy + Into<u64>> SyncCell<T> {
    /// A new cell holding `v`.
    #[must_use]
    pub fn new(v: T) -> Self {
        SyncCell {
            value: Mutex::new(v),
            slot: ObjSlot::new(),
        }
    }

    /// A new labeled cell (see [`SyncAtomicU64::labeled`]).
    #[must_use]
    pub fn labeled(v: T, label: impl Into<String>) -> Self {
        let c = SyncCell::new(v);
        let _ = c.slot.label.set(label.into());
        c
    }

    /// Labels the cell after creation (the first label wins).
    pub fn set_label(&self, label: impl Into<String>) {
        let _ = self.slot.label.set(label.into());
    }

    /// Reads the cell (a plain, non-atomic access to the auditor).
    ///
    /// Under the explorer the value is sampled *after* the grant —
    /// only the granted thread executes, so the read reflects exactly
    /// the serialized schedule and replay stays deterministic.
    pub fn read(&self) -> T {
        with_current(|exec, me| {
            exec.scheduled_op(
                me,
                OpRequest::Cell {
                    slot: &self.slot,
                    write: false,
                    shown: None,
                },
            );
        });
        *self.value.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Writes the cell (a plain, non-atomic access to the auditor).
    pub fn write(&self, v: T) {
        with_current(|exec, me| {
            exec.scheduled_op(
                me,
                OpRequest::Cell {
                    slot: &self.slot,
                    write: true,
                    shown: Some(v.into()),
                },
            );
        });
        *self.value.lock().unwrap_or_else(PoisonError::into_inner) = v;
    }
}

/// Asserts a model invariant. Inside an exploration a failure becomes
/// a [`crate::FindingKind::CheckFailed`] finding with the full event
/// trace as witness; outside one it panics like `assert!`.
pub fn check(cond: bool, message: &str) {
    if cond {
        return;
    }
    // Inside a model, fail_check unwinds and this call never returns;
    // reaching the panic below means we are on an ordinary thread.
    with_current(|exec, me| {
        exec.fail_check(me, message.to_owned());
    });
    panic!("check failed: {message}");
}

/// Spawn/join hooks mirroring `std::thread` for model code.
pub mod thread {
    use super::{with_current, OpRequest};
    use std::sync::Arc;

    /// A handle to a spawned model thread. Dropping without joining
    /// detaches: the explorer still waits for the thread to finish
    /// its schedule points, but no happens-before edge is created —
    /// exactly the bug a dropped join introduces in real code.
    #[derive(Debug)]
    pub struct JoinHandle {
        child: Option<usize>,
        os: std::thread::JoinHandle<()>,
    }

    /// Spawns `f`. Inside an exploration this is a schedule point and
    /// the child becomes a controlled model thread; outside one it is
    /// `std::thread::spawn`.
    pub fn spawn<F>(f: F) -> JoinHandle
    where
        F: FnOnce() + Send + 'static,
    {
        let mut job = Some(f);
        let spawned = with_current(|exec, me| {
            let child = exec.scheduled_op(me, OpRequest::Spawn) as usize;
            let f = job.take().expect("spawn body runs at most once");
            let child_exec = Arc::clone(exec);
            let os = std::thread::spawn(move || child_exec.run_thread(child, f));
            (child, os)
        });
        match spawned {
            Some((child, os)) => JoinHandle {
                child: Some(child),
                os,
            },
            None => JoinHandle {
                child: None,
                os: std::thread::spawn(job.take().expect("model closure was not run")),
            },
        }
    }

    impl JoinHandle {
        /// Joins the thread. Inside an exploration the join is a
        /// schedule point enabled only once the child is terminal,
        /// and it merges the child's final vector clock (the
        /// happens-before edge real joins provide).
        pub fn join(self) {
            if let Some(child) = self.child {
                with_current(|exec, me| {
                    exec.scheduled_op(me, OpRequest::Join { target: child });
                });
            }
            let _ = self.os.join();
        }
    }
}
