//! Observed synchronization profiles: which objects an exploration
//! touched, how (access kinds, orderings, threads), and whether any
//! read/write pair was ever concurrent. The `OPD-R` lint family in
//! `opd-analyze` consumes a plain-data conversion of this.

use std::collections::BTreeSet;

use crate::runtime::{AccessKind, MemOrder, ObjAudit};

/// Everything observed about one shared object across an exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteProfile {
    /// The object's label (shared objects are labeled at creation;
    /// unlabeled ones get `objN` in creation order).
    pub label: String,
    /// Whether the object is an atomic (vs a plain cell).
    pub atomic: bool,
    /// Every `(kind, ordering)` pair observed reading the object.
    pub reads: BTreeSet<(AccessKind, MemOrder)>,
    /// Every `(kind, ordering)` pair observed writing the object.
    pub writes: BTreeSet<(AccessKind, MemOrder)>,
    /// Model threads that read the object.
    pub reader_threads: BTreeSet<usize>,
    /// Model threads that wrote the object.
    pub writer_threads: BTreeSet<usize>,
    /// Whether any explored schedule had a read and a write of this
    /// object unordered by happens-before.
    pub concurrent_rw: bool,
    /// Total accesses across every explored schedule.
    pub accesses: u64,
}

impl SiteProfile {
    fn from_audit(o: &ObjAudit) -> Self {
        SiteProfile {
            label: o.label.clone(),
            atomic: o.atomic,
            reads: o.reads.clone(),
            writes: o.writes.clone(),
            reader_threads: o.reader_threads.clone(),
            writer_threads: o.writer_threads.clone(),
            concurrent_rw: o.concurrent_rw,
            accesses: o.accesses,
        }
    }

    fn absorb(&mut self, o: &ObjAudit) {
        self.reads.extend(o.reads.iter().copied());
        self.writes.extend(o.writes.iter().copied());
        self.reader_threads.extend(o.reader_threads.iter().copied());
        self.writer_threads.extend(o.writer_threads.iter().copied());
        self.concurrent_rw |= o.concurrent_rw;
        self.accesses += o.accesses;
    }

    /// Whether the object is written by a `Relaxed` read-modify-write.
    #[must_use]
    pub fn has_relaxed_rmw_write(&self) -> bool {
        self.writes.contains(&(AccessKind::Rmw, MemOrder::Relaxed))
    }

    /// Whether the object is read with acquire (or stronger) ordering.
    #[must_use]
    pub fn has_acquire_read(&self) -> bool {
        self.reads.contains(&(AccessKind::Load, MemOrder::Acquire))
            || self.reads.contains(&(AccessKind::Load, MemOrder::SeqCst))
    }

    /// The shard-family part of the label: `ops[3]` -> `ops`. Labels
    /// without an index are their own family.
    #[must_use]
    pub fn family(&self) -> &str {
        self.label.split('[').next().unwrap_or(&self.label)
    }
}

/// The merged site profiles of one exploration (or several — profiles
/// merge by label).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncProfile {
    /// One entry per distinct object label, sorted by label.
    pub sites: Vec<SiteProfile>,
}

impl SyncProfile {
    /// The empty profile.
    #[must_use]
    pub fn new() -> Self {
        SyncProfile::default()
    }

    pub(crate) fn absorb_objects(&mut self, objects: &[ObjAudit]) {
        for o in objects {
            match self.sites.binary_search_by(|s| s.label.cmp(&o.label)) {
                Ok(i) => self.sites[i].absorb(o),
                Err(i) => self.sites.insert(i, SiteProfile::from_audit(o)),
            }
        }
    }

    /// Looks up a site by exact label.
    #[must_use]
    pub fn site(&self, label: &str) -> Option<&SiteProfile> {
        self.sites
            .binary_search_by(|s| s.label.as_str().cmp(label))
            .ok()
            .map(|i| &self.sites[i])
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &SyncProfile) {
        for s in &other.sites {
            match self.sites.binary_search_by(|x| x.label.cmp(&s.label)) {
                Ok(i) => {
                    let t = &mut self.sites[i];
                    t.reads.extend(s.reads.iter().copied());
                    t.writes.extend(s.writes.iter().copied());
                    t.reader_threads.extend(s.reader_threads.iter().copied());
                    t.writer_threads.extend(s.writer_threads.iter().copied());
                    t.concurrent_rw |= s.concurrent_rw;
                    t.accesses += s.accesses;
                }
                Err(i) => self.sites.insert(i, s.clone()),
            }
        }
    }
}
