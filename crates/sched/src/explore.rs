//! The deterministic schedule explorer: depth-first search over
//! thread interleavings with dynamic partial-order reduction (DPOR),
//! an optional preemption bound, seeded search order, and replayable
//! schedule witnesses.
//!
//! Exploration is *stateless*: every schedule reruns the model
//! closure from scratch, with the controller forcing the recorded
//! choice at each replayed step and branching at the frontier. A
//! choice point is one granted scheduling step; DPOR adds backtrack
//! choices only where two concurrent, conflicting accesses prove the
//! commutation is not free, so the explored set covers every
//! Mazurkiewicz trace (exhaustive up to commuting independent steps)
//! while visiting far fewer interleavings than naive DFS — the
//! pruning ratio is part of `BENCH_sched.json`.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::profile::SyncProfile;
use crate::runtime::{Event, Execution, FindingKind};

/// A replayable schedule: the thread chosen at every step, plus the
/// rendered event trace for humans.
#[derive(Debug, Clone, Default)]
pub struct ScheduleWitness {
    /// The thread granted at each scheduling step, in order. Feeding
    /// this to [`Explorer::replay`] reproduces the execution exactly.
    pub choices: Vec<usize>,
    /// The rendered event trace (one line per step).
    pub trace: Vec<String>,
}

impl fmt::Display for ScheduleWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schedule: {:?}", self.choices)?;
        for (i, line) in self.trace.iter().enumerate() {
            writeln!(f, "  #{i}: {line}")?;
        }
        Ok(())
    }
}

/// A violation found by the auditor, with the schedule that exhibits
/// it.
#[derive(Debug, Clone)]
pub struct Finding {
    /// What went wrong.
    pub kind: FindingKind,
    /// The exact schedule and event trace exhibiting it.
    pub witness: ScheduleWitness,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.kind)?;
        write!(f, "{}", self.witness)
    }
}

/// The result of exploring one model.
#[derive(Debug)]
pub struct ExplorationReport {
    /// Schedules (maximal interleavings) executed.
    pub executions: u64,
    /// Total scheduling steps across all executions.
    pub transitions: u64,
    /// Whether the `max_executions` cap stopped the search early.
    pub truncated: bool,
    /// The first violation found, if any (the search stops at it).
    pub finding: Option<Finding>,
    /// Everything observed about the model's shared objects.
    pub profile: SyncProfile,
    /// The deepest execution, in scheduling steps.
    pub max_depth: usize,
}

impl ExplorationReport {
    /// `true` when the search completed with no violation.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.finding.is_none() && !self.truncated
    }
}

/// SplitMix64's finalizer, used only to vary the (complete) search
/// order by seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One node of the DFS stack: the state reached by the prefix, which
/// thread ran from it, and which alternatives remain.
#[derive(Debug)]
struct ChoicePoint {
    enabled: Vec<usize>,
    chosen: usize,
    done: BTreeSet<usize>,
    backtrack: BTreeSet<usize>,
    prev: Option<usize>,
    /// Preemptions in the prefix *before* this choice.
    prefix_preemptions: u32,
}

impl ChoicePoint {
    /// Whether choosing `t` here preempts a still-runnable previous
    /// thread.
    fn is_preemption(&self, t: usize) -> bool {
        match self.prev {
            Some(p) => t != p && self.enabled.contains(&p),
            None => false,
        }
    }
}

/// The schedule explorer. Fields are the search configuration; the
/// defaults give seeded, exhaustive DPOR search.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Hard cap on executed schedules; the report marks truncation.
    pub max_executions: u64,
    /// `Some(n)`: only schedules with at most `n` preemptive context
    /// switches are explored (a bug-finding heuristic, not
    /// exhaustive). `None`: unbounded, exhaustive.
    pub preemption_bound: Option<u32>,
    /// Seed permuting the search order (the explored set is identical
    /// for every seed; witnesses record the seed's choices verbatim).
    pub seed: u64,
    /// Dynamic partial-order reduction on (default). Off explores
    /// every interleaving — the baseline for the pruning ratio.
    pub dpor: bool,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_executions: 1 << 20,
            preemption_bound: None,
            seed: 0,
            dpor: true,
        }
    }
}

impl Explorer {
    /// An exhaustive DPOR explorer with default limits.
    #[must_use]
    pub fn new() -> Self {
        Explorer::default()
    }

    /// The same search without partial-order reduction (every
    /// interleaving): the denominator of the DPOR pruning ratio.
    #[must_use]
    pub fn naive(mut self) -> Self {
        self.dpor = false;
        self
    }

    /// Explores every schedule of `model` (up to the configured
    /// bounds), stopping at the first violation.
    ///
    /// The model closure is rerun once per schedule; it must create
    /// its shared state inside the closure and be deterministic apart
    /// from scheduling (the replay machinery asserts this).
    pub fn explore<F>(&self, model: F) -> ExplorationReport
    where
        F: Fn() + Send + Sync + 'static,
    {
        let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
        let mut search = Search {
            options: self.clone(),
            stack: Vec::new(),
            forced: None,
        };
        search.run(&model)
    }

    /// Replays exactly one schedule (a witness's `choices`) and
    /// returns that single execution's report — the reproduction
    /// command for a recorded failure.
    ///
    /// # Panics
    ///
    /// Panics if the model diverges from the witness (a choice names
    /// a thread that is not enabled), which means the model is not
    /// deterministic.
    pub fn replay<F>(&self, model: F, choices: &[usize]) -> ExplorationReport
    where
        F: Fn() + Send + Sync + 'static,
    {
        let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
        let mut search = Search {
            options: self.clone(),
            stack: Vec::new(),
            forced: Some(choices.to_vec()),
        };
        search.run(&model)
    }
}

struct Search {
    options: Explorer,
    stack: Vec<ChoicePoint>,
    /// Replay mode: the forced schedule (single execution).
    forced: Option<Vec<usize>>,
}

impl Search {
    fn run(&mut self, model: &Arc<dyn Fn() + Send + Sync>) -> ExplorationReport {
        let mut report = ExplorationReport {
            executions: 0,
            transitions: 0,
            truncated: false,
            finding: None,
            profile: SyncProfile::new(),
            max_depth: 0,
        };
        loop {
            if report.executions >= self.options.max_executions {
                report.truncated = true;
                return report;
            }
            let (events, findings, choices) = self.run_once(model, &mut report.profile);
            report.executions += 1;
            report.transitions += events.len() as u64;
            report.max_depth = report.max_depth.max(events.len());
            if let Some(kind) = findings.into_iter().next() {
                report.finding = Some(Finding {
                    kind,
                    witness: ScheduleWitness {
                        choices,
                        trace: events.iter().map(Event::to_string).collect(),
                    },
                });
                return report;
            }
            if self.forced.is_some() {
                return report;
            }
            if self.options.dpor {
                self.add_dpor_backtracks(&events);
            }
            if !self.advance() {
                return report;
            }
        }
    }

    /// One full execution under the current stack prefix; fresh
    /// choice points are pushed past the prefix.
    fn run_once(
        &mut self,
        model: &Arc<dyn Fn() + Send + Sync>,
        profile: &mut SyncProfile,
    ) -> (Vec<Event>, Vec<FindingKind>, Vec<usize>) {
        let exec = Execution::new();
        let thread_exec = Arc::clone(&exec);
        let thread_model = Arc::clone(model);
        let t0 = std::thread::spawn(move || {
            let m = Arc::clone(&thread_model);
            thread_exec.run_thread(0, move || m());
        });
        let mut step = 0usize;
        let mut choices = Vec::new();
        loop {
            if exec.wait_quiescent() {
                break;
            }
            let enabled = exec.enabled();
            if enabled.is_empty() {
                exec.fail_deadlock();
                continue;
            }
            debug_assert_eq!(step, exec.steps(), "one choice per scheduling step");
            let choice = if let Some(forced) = &self.forced {
                let c = forced.get(step).copied().unwrap_or_else(|| {
                    panic!("witness ended at step {step} but threads are still enabled")
                });
                assert!(
                    enabled.contains(&c),
                    "witness diverged at step {step}: t{c} not in enabled {enabled:?} \
                     (the model is not deterministic)"
                );
                c
            } else if step < self.stack.len() {
                let cp = &self.stack[step];
                assert_eq!(
                    cp.enabled, enabled,
                    "replayed prefix diverged at step {step}: the model is not deterministic"
                );
                cp.chosen
            } else {
                self.push_fresh_point(step, enabled)
            };
            choices.push(choice);
            exec.grant(choice);
            step += 1;
        }
        t0.join().expect("model wrapper never panics");
        let outcome = exec.take_outcome();
        profile.absorb_objects(&outcome.objects);
        (outcome.events, outcome.findings, choices)
    }

    /// Pushes a fresh choice point at `step` and returns its chosen
    /// thread.
    fn push_fresh_point(&mut self, step: usize, enabled: Vec<usize>) -> usize {
        let prev = step.checked_sub(1).map(|i| self.stack[i].chosen);
        let prefix_preemptions = match step.checked_sub(1) {
            Some(i) => {
                let p = &self.stack[i];
                p.prefix_preemptions + u32::from(p.is_preemption(p.chosen))
            }
            None => 0,
        };
        let mut point = ChoicePoint {
            enabled,
            chosen: 0,
            done: BTreeSet::new(),
            backtrack: BTreeSet::new(),
            prev,
            prefix_preemptions,
        };
        // Candidate order: the previous thread first (no preemption),
        // then the rest rotated by the seed. Under a preemption
        // budget that has run out, the previous thread is the only
        // candidate while it remains enabled.
        let mut candidates: Vec<usize> = Vec::with_capacity(point.enabled.len());
        if let Some(p) = prev {
            if point.enabled.contains(&p) {
                candidates.push(p);
            }
        }
        let mut rest: Vec<usize> = point
            .enabled
            .iter()
            .copied()
            .filter(|t| Some(*t) != prev)
            .collect();
        if !rest.is_empty() {
            let r = (splitmix64(self.options.seed ^ step as u64) as usize) % rest.len();
            rest.rotate_left(r);
        }
        let out_of_budget = self
            .options
            .preemption_bound
            .is_some_and(|b| prefix_preemptions >= b)
            && !candidates.is_empty();
        if !out_of_budget {
            candidates.extend(rest);
        }
        point.chosen = candidates[0];
        if self.options.dpor {
            point.backtrack.insert(point.chosen);
        } else {
            point.backtrack.extend(candidates.iter().copied());
        }
        let chosen = point.chosen;
        self.stack.push(point);
        chosen
    }

    /// Flanagan–Godefroid backtrack-set computation over the finished
    /// execution's event trace: for each step, the most recent
    /// concurrent conflicting step of another thread forces a branch
    /// at the state before it.
    fn add_dpor_backtracks(&mut self, events: &[Event]) {
        debug_assert_eq!(events.len(), self.stack.len());
        for i in 0..events.len() {
            let p = events[i].thread;
            let Some(j) = (0..i).rev().find(|&j| events[j].conflicts(&events[i])) else {
                continue;
            };
            if events[j].happens_before(&events[i]) {
                continue;
            }
            let over_budget = self.options.preemption_bound.is_some_and(|b| {
                let cp = &self.stack[j];
                cp.prefix_preemptions >= b && cp.is_preemption(p)
            });
            if over_budget {
                continue;
            }
            let cp = &mut self.stack[j];
            if cp.enabled.contains(&p) {
                if !cp.done.contains(&p) {
                    cp.backtrack.insert(p);
                }
            } else {
                for q in cp.enabled.clone() {
                    if !cp.done.contains(&q) {
                        cp.backtrack.insert(q);
                    }
                }
            }
        }
    }

    /// Pops fully-explored choice points and switches the deepest one
    /// with remaining backtrack work; `false` means the search space
    /// is exhausted.
    fn advance(&mut self) -> bool {
        while let Some(cp) = self.stack.last_mut() {
            let chosen = cp.chosen;
            cp.done.insert(chosen);
            if let Some(&next) = cp.backtrack.iter().find(|t| !cp.done.contains(*t)) {
                cp.chosen = next;
                return true;
            }
            self.stack.pop();
        }
        false
    }
}
