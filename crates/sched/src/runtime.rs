//! The instrumented execution runtime: serializes model threads so a
//! controller chooses every interleaving, records the event trace,
//! maintains vector clocks, and runs the happens-before auditor at
//! every shared access.
//!
//! One [`Execution`] is one run of a model closure under one schedule.
//! Model threads are real OS threads, but only the thread holding the
//! controller's grant ever executes: every shared operation first
//! posts a pending descriptor and blocks until granted, so the code
//! between two shared operations is an atomic block by construction.
//! The explorer (see [`crate::explore`]) is the controller: it waits
//! until every live thread has posted, picks one, and grants a single
//! step.

use std::collections::BTreeSet;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::vc::VectorClock;

/// How a shared object was touched, as recorded in event traces and
/// site profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessKind {
    /// An atomic load.
    Load,
    /// An atomic store.
    Store,
    /// An atomic read-modify-write (`fetch_add`).
    Rmw,
    /// A plain (non-atomic) cell read.
    CellRead,
    /// A plain (non-atomic) cell write.
    CellWrite,
}

impl AccessKind {
    /// Whether the access writes the object.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(
            self,
            AccessKind::Store | AccessKind::Rmw | AccessKind::CellWrite
        )
    }

    /// Whether the access reads the object.
    #[must_use]
    pub fn is_read(self) -> bool {
        matches!(
            self,
            AccessKind::Load | AccessKind::Rmw | AccessKind::CellRead
        )
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
            AccessKind::Rmw => "fetch_add",
            AccessKind::CellRead => "read",
            AccessKind::CellWrite => "write",
        })
    }
}

/// The memory-ordering lattice the model distinguishes (`SeqCst` is
/// treated as `AcqRel` for happens-before purposes, which is sound:
/// it only drops the total-order constraint, never an edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemOrder {
    /// No synchronization: the operation creates no happens-before
    /// edge.
    Relaxed,
    /// Load side of a release/acquire pair.
    Acquire,
    /// Store side of a release/acquire pair.
    Release,
    /// Both sides (read-modify-write).
    AcqRel,
    /// Sequentially consistent (modeled as `AcqRel`).
    SeqCst,
    /// A plain, non-atomic access (cells).
    Plain,
}

impl MemOrder {
    pub(crate) fn from_std(o: Ordering) -> Self {
        match o {
            Ordering::Relaxed => MemOrder::Relaxed,
            Ordering::Acquire => MemOrder::Acquire,
            Ordering::Release => MemOrder::Release,
            Ordering::AcqRel => MemOrder::AcqRel,
            _ => MemOrder::SeqCst,
        }
    }

    fn acquires(self) -> bool {
        matches!(
            self,
            MemOrder::Acquire | MemOrder::AcqRel | MemOrder::SeqCst
        )
    }

    fn releases(self) -> bool {
        matches!(
            self,
            MemOrder::Release | MemOrder::AcqRel | MemOrder::SeqCst
        )
    }
}

impl fmt::Display for MemOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemOrder::Relaxed => "Relaxed",
            MemOrder::Acquire => "Acquire",
            MemOrder::Release => "Release",
            MemOrder::AcqRel => "AcqRel",
            MemOrder::SeqCst => "SeqCst",
            MemOrder::Plain => "plain",
        })
    }
}

/// One step of an execution's event trace.
#[derive(Debug, Clone)]
pub struct Event {
    /// The model thread that took the step.
    pub thread: usize,
    /// What the step did.
    pub desc: EventDesc,
    pub(crate) clock: VectorClock,
    /// For acquiring accesses: the thread's clock *before* joining the
    /// object's release clock. The DPOR race check must use this —
    /// the direct reads-from edge of the very pair under test would
    /// otherwise make the pair look ordered and suppress the reversal
    /// that explores the other read value. `None` means no acquire
    /// join happened, i.e. the base clock equals `clock`.
    pub(crate) pre_acquire: Option<VectorClock>,
}

/// The payload of one trace event.
#[derive(Debug, Clone)]
pub enum EventDesc {
    /// A shared-memory access.
    Access {
        /// Object index within this execution.
        obj: usize,
        /// The object's label.
        label: String,
        /// Access kind.
        kind: AccessKind,
        /// Memory ordering (`Plain` for cells).
        order: MemOrder,
        /// The value written (stores and RMW operands).
        value: Option<u64>,
        /// The value read or returned.
        result: Option<u64>,
    },
    /// A thread was spawned.
    Spawn {
        /// The new thread's index.
        child: usize,
    },
    /// A thread was joined.
    Join {
        /// The joined thread's index.
        child: usize,
    },
    /// A model-level invariant check failed.
    CheckFailed {
        /// The check's message.
        message: String,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{} ", self.thread)?;
        match &self.desc {
            EventDesc::Access {
                label,
                kind,
                order,
                value,
                result,
                ..
            } => {
                write!(f, "{kind}")?;
                if let Some(v) = value {
                    write!(f, "({v}, {order})")?;
                } else if *order != MemOrder::Plain {
                    write!(f, "({order})")?;
                }
                write!(f, " {label}")?;
                if let Some(r) = result {
                    write!(f, " -> {r}")?;
                }
                Ok(())
            }
            EventDesc::Spawn { child } => write!(f, "spawn t{child}"),
            EventDesc::Join { child } => write!(f, "join t{child}"),
            EventDesc::CheckFailed { message } => write!(f, "check failed: {message}"),
        }
    }
}

/// What the auditor or the runtime found wrong with an execution.
#[derive(Debug, Clone)]
pub enum FindingKind {
    /// Two unordered accesses to a plain cell, at least one a write.
    DataRace {
        /// The raced object's label.
        object: String,
        /// Event index of the earlier access.
        first: usize,
        /// Event index of the later access.
        second: usize,
    },
    /// A store overwrote another thread's write that the storing
    /// thread never observed — classic lost update.
    LostUpdate {
        /// The clobbered object's label.
        object: String,
        /// Event index of the overwritten write.
        lost: usize,
        /// Event index of the overwriting store.
        second: usize,
    },
    /// A `sched::check` invariant failed.
    CheckFailed {
        /// The check's message.
        message: String,
    },
    /// A model thread panicked.
    Panic {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// Live threads exist but none is enabled.
    Deadlock,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FindingKind::DataRace {
                object,
                first,
                second,
            } => write!(f, "data race on `{object}` (events #{first} and #{second})"),
            FindingKind::LostUpdate {
                object,
                lost,
                second,
            } => write!(
                f,
                "lost update on `{object}` (write #{lost} overwritten unobserved by #{second})"
            ),
            FindingKind::CheckFailed { message } => write!(f, "check failed: {message}"),
            FindingKind::Panic { message } => write!(f, "model thread panicked: {message}"),
            FindingKind::Deadlock => f.write_str("deadlock: live threads, none enabled"),
        }
    }
}

/// Per-object state the auditor keeps during one execution.
#[derive(Debug)]
pub(crate) struct ObjAudit {
    pub(crate) label: String,
    pub(crate) atomic: bool,
    /// Release clock: joined into acquiring readers.
    sync: VectorClock,
    /// Per-thread stamp (own clock component) + event of last read.
    last_reads: Vec<Option<(u64, usize)>>,
    /// Per-thread stamp + event of last write.
    last_writes: Vec<Option<(u64, usize)>>,
    /// Monotone count of writes; `last_write` holds the newest.
    write_seq: u64,
    last_write: Option<(usize, usize, u64)>, // (thread, event, seq)
    /// Per-thread: seq of the newest write this thread has observed.
    observed: Vec<u64>,
    // -- profile accumulation --
    pub(crate) reads: BTreeSet<(AccessKind, MemOrder)>,
    pub(crate) writes: BTreeSet<(AccessKind, MemOrder)>,
    pub(crate) reader_threads: BTreeSet<usize>,
    pub(crate) writer_threads: BTreeSet<usize>,
    pub(crate) concurrent_rw: bool,
    pub(crate) accesses: u64,
}

impl ObjAudit {
    fn new(label: String, atomic: bool) -> Self {
        ObjAudit {
            label,
            atomic,
            sync: VectorClock::new(),
            last_reads: Vec::new(),
            last_writes: Vec::new(),
            write_seq: 0,
            last_write: None,
            observed: Vec::new(),
            reads: BTreeSet::new(),
            writes: BTreeSet::new(),
            reader_threads: BTreeSet::new(),
            writer_threads: BTreeSet::new(),
            concurrent_rw: false,
            accesses: 0,
        }
    }

    fn slot<T: Default + Clone>(v: &mut Vec<T>, t: usize) -> &mut T {
        if v.len() <= t {
            v.resize(t + 1, T::default());
        }
        &mut v[t]
    }
}

/// One registered-object handle living inside a [`crate::SyncAtomicU64`]
/// or [`crate::SyncCell`]: a lazily assigned per-execution id plus an
/// optional label for witnesses.
#[derive(Debug, Default)]
pub(crate) struct ObjSlot {
    /// `generation << 20 | (id + 1)`; zero means unregistered.
    packed: AtomicU64,
    pub(crate) label: OnceLock<String>,
}

impl ObjSlot {
    pub(crate) fn new() -> Self {
        ObjSlot::default()
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    /// Granted (or newly spawned) and executing invisible local code.
    Running,
    /// Blocked at a schedule point, descriptor posted.
    Pending(PendingDesc),
    /// Closure returned (or unwound on abort).
    Finished,
    /// Closure panicked for real.
    Panicked,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct PendingDesc {
    /// `Some(t)` when the pending operation is `join(t)`, which is
    /// only enabled once `t` is terminal.
    join_target: Option<usize>,
}

/// The effect an atomic schedule point applies once granted.
pub(crate) enum AtomicEffect<'a> {
    Load(&'a AtomicU64),
    Store(&'a AtomicU64, u64),
    FetchAdd(&'a AtomicU64, u64),
}

/// A schedule-point request from a model thread.
pub(crate) enum OpRequest<'a> {
    Atomic {
        slot: &'a ObjSlot,
        effect: AtomicEffect<'a>,
        order: Ordering,
    },
    Cell {
        slot: &'a ObjSlot,
        write: bool,
        shown: Option<u64>,
    },
    Spawn,
    Join {
        target: usize,
    },
}

struct ExecState {
    generation: u64,
    threads: Vec<Phase>,
    grant: Option<usize>,
    aborting: bool,
    clocks: Vec<VectorClock>,
    final_clocks: Vec<Option<VectorClock>>,
    events: Vec<Event>,
    objects: Vec<ObjAudit>,
    findings: Vec<FindingKind>,
    next_anon: u64,
}

/// One model execution: the shared handshake + trace state.
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
}

/// The extracted result of a finished execution.
#[derive(Debug)]
pub(crate) struct Outcome {
    pub(crate) events: Vec<Event>,
    pub(crate) findings: Vec<FindingKind>,
    pub(crate) objects: Vec<ObjAudit>,
}

/// Sentinel panic payload used to unwind model threads on abort
/// without tripping the panic hook.
struct Abort;

static GENERATION: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The model-thread index of the calling thread, when it is running
/// inside an active schedule exploration. `None` on ordinary threads
/// — callers use this to substitute a deterministic identity (e.g. a
/// metrics shard tag) under the explorer.
#[must_use]
pub fn current_thread_index() -> Option<usize> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(_, me)| *me))
}

pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Execution>, usize) -> R) -> Option<R> {
    let ctx = CURRENT.with(|c| c.borrow().clone());
    ctx.map(|(exec, me)| f(&exec, me))
}

impl Execution {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Execution {
            state: Mutex::new(ExecState {
                generation: GENERATION.fetch_add(1, Ordering::Relaxed),
                threads: vec![Phase::Running],
                grant: None,
                aborting: false,
                clocks: vec![VectorClock::new()],
                final_clocks: vec![None],
                events: Vec::new(),
                objects: Vec::new(),
                findings: Vec::new(),
                next_anon: 0,
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs `f` as model thread `me`, catching panics and publishing
    /// the terminal phase.
    pub(crate) fn run_thread(self: &Arc<Self>, me: usize, f: impl FnOnce()) {
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(self), me)));
        let result = catch_unwind(AssertUnwindSafe(f));
        CURRENT.with(|c| *c.borrow_mut() = None);
        let mut st = self.lock();
        st.final_clocks[me] = Some(st.clocks[me].clone());
        match result {
            Ok(()) => st.threads[me] = Phase::Finished,
            Err(payload) if payload.is::<Abort>() => st.threads[me] = Phase::Finished,
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                st.findings.push(FindingKind::Panic { message });
                st.threads[me] = Phase::Panicked;
                st.aborting = true;
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Blocks until every live thread is pending (returns `false`) or
    /// all threads are terminal (returns `true`).
    pub(crate) fn wait_quiescent(&self) -> bool {
        let st = self.lock();
        let st = self
            .cv
            .wait_while(st, |st| {
                st.threads.contains(&Phase::Running)
                    || (st.aborting && st.threads.iter().any(|p| matches!(p, Phase::Pending(_))))
            })
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.threads
            .iter()
            .all(|p| matches!(p, Phase::Finished | Phase::Panicked))
    }

    /// Threads that have posted an operation which can execute now.
    pub(crate) fn enabled(&self) -> Vec<usize> {
        let st = self.lock();
        st.threads
            .iter()
            .enumerate()
            .filter_map(|(t, p)| match p {
                Phase::Pending(d) => match d.join_target {
                    Some(target)
                        if !matches!(st.threads[target], Phase::Finished | Phase::Panicked) =>
                    {
                        None
                    }
                    _ => Some(t),
                },
                _ => None,
            })
            .collect()
    }

    /// Grants thread `t` one step. The phase flips to `Running` here,
    /// under the controller's lock — not when the thread wakes — so
    /// the controller's next `wait_quiescent` cannot observe the
    /// pre-wake `Pending` state and race ahead of the granted step.
    pub(crate) fn grant(&self, t: usize) {
        let mut st = self.lock();
        debug_assert!(matches!(st.threads[t], Phase::Pending(_)));
        st.grant = Some(t);
        st.threads[t] = Phase::Running;
        drop(st);
        self.cv.notify_all();
    }

    /// Records a controller-side finding (deadlock) and aborts.
    pub(crate) fn fail_deadlock(&self) {
        let mut st = self.lock();
        st.findings.push(FindingKind::Deadlock);
        st.aborting = true;
        drop(st);
        self.cv.notify_all();
    }

    /// Extracts the trace once every thread is terminal.
    pub(crate) fn take_outcome(&self) -> Outcome {
        let mut st = self.lock();
        Outcome {
            events: std::mem::take(&mut st.events),
            findings: std::mem::take(&mut st.findings),
            objects: std::mem::take(&mut st.objects),
        }
    }

    /// The number of events recorded so far (the step counter).
    pub(crate) fn steps(&self) -> usize {
        self.lock().events.len()
    }

    /// A model thread executes one schedule point: post, wait for the
    /// grant, apply the operation's effect, record the event, audit.
    pub(crate) fn scheduled_op(self: &Arc<Self>, me: usize, op: OpRequest<'_>) -> u64 {
        let desc = PendingDesc {
            join_target: match op {
                OpRequest::Join { target } => Some(target),
                _ => None,
            },
        };
        let mut st = self.lock();
        st.threads[me] = Phase::Pending(desc);
        self.cv.notify_all();
        let mut st = self
            .cv
            .wait_while(st, |st| !st.aborting && st.grant != Some(me))
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if st.aborting {
            drop(st);
            resume_unwind(Box::new(Abort));
        }
        st.grant = None;
        st.threads[me] = Phase::Running;
        let result = st.apply(me, op);
        let abort_self = st.aborting;
        drop(st);
        self.cv.notify_all();
        if abort_self {
            resume_unwind(Box::new(Abort));
        }
        result
    }

    /// Records a failed model invariant and aborts the execution; the
    /// calling thread unwinds.
    pub(crate) fn fail_check(self: &Arc<Self>, me: usize, message: String) -> ! {
        let mut st = self.lock();
        let clock = st.clocks[me].clone();
        st.events.push(Event {
            thread: me,
            desc: EventDesc::CheckFailed {
                message: message.clone(),
            },
            clock,
            pre_acquire: None,
        });
        st.findings.push(FindingKind::CheckFailed { message });
        st.aborting = true;
        drop(st);
        self.cv.notify_all();
        resume_unwind(Box::new(Abort));
    }
}

impl ExecState {
    fn register(&mut self, slot: &ObjSlot, atomic: bool) -> usize {
        let packed = slot.packed.load(Ordering::Relaxed);
        if packed >> 20 == self.generation {
            return (packed & 0xF_FFFF) as usize - 1;
        }
        let id = self.objects.len();
        assert!(id < 0xF_FFFF - 1, "too many model objects");
        slot.packed
            .store((self.generation << 20) | (id as u64 + 1), Ordering::Relaxed);
        let label = slot.label.get().cloned().unwrap_or_else(|| {
            self.next_anon += 1;
            format!("obj{}", self.next_anon - 1)
        });
        self.objects.push(ObjAudit::new(label, atomic));
        id
    }

    fn apply(&mut self, me: usize, op: OpRequest<'_>) -> u64 {
        let event_idx = self.events.len();
        let mut clock = std::mem::take(&mut self.clocks[me]);
        clock.tick(me);
        let mut pre_acquire = None;
        let (desc, result) = match op {
            OpRequest::Atomic {
                slot,
                effect,
                order,
            } => {
                let obj = self.register(slot, true);
                let mo = MemOrder::from_std(order);
                if mo.acquires()
                    && matches!(effect, AtomicEffect::Load(_) | AtomicEffect::FetchAdd(..))
                {
                    pre_acquire = Some(clock.clone());
                    clock.join(&self.objects[obj].sync);
                }
                let (kind, value, result) = match effect {
                    AtomicEffect::Load(a) => (AccessKind::Load, None, a.load(Ordering::Relaxed)),
                    AtomicEffect::Store(a, v) => {
                        a.store(v, Ordering::Relaxed);
                        (AccessKind::Store, Some(v), v)
                    }
                    AtomicEffect::FetchAdd(a, v) => {
                        (AccessKind::Rmw, Some(v), a.fetch_add(v, Ordering::Relaxed))
                    }
                };
                if mo.releases() && kind.is_write() {
                    if kind == AccessKind::Rmw {
                        let c = clock.clone();
                        self.objects[obj].sync.join(&c);
                    } else {
                        self.objects[obj].sync = clock.clone();
                    }
                }
                self.audit(obj, me, kind, mo, &clock, event_idx);
                let label = self.objects[obj].label.clone();
                (
                    EventDesc::Access {
                        obj,
                        label,
                        kind,
                        order: mo,
                        value,
                        result: Some(result),
                    },
                    result,
                )
            }
            OpRequest::Cell { slot, write, shown } => {
                let obj = self.register(slot, false);
                let kind = if write {
                    AccessKind::CellWrite
                } else {
                    AccessKind::CellRead
                };
                self.audit(obj, me, kind, MemOrder::Plain, &clock, event_idx);
                let label = self.objects[obj].label.clone();
                (
                    EventDesc::Access {
                        obj,
                        label,
                        kind,
                        order: MemOrder::Plain,
                        value: if write { shown } else { None },
                        result: if write { None } else { shown },
                    },
                    0,
                )
            }
            OpRequest::Spawn => {
                let child = self.threads.len();
                self.threads.push(Phase::Running);
                self.clocks.push(clock.clone());
                self.final_clocks.push(None);
                (EventDesc::Spawn { child }, child as u64)
            }
            OpRequest::Join { target } => {
                let final_clock = self.final_clocks[target]
                    .clone()
                    .expect("join granted only once the target is terminal");
                clock.join(&final_clock);
                (EventDesc::Join { child: target }, 0)
            }
        };
        self.events.push(Event {
            thread: me,
            desc,
            clock: clock.clone(),
            pre_acquire,
        });
        self.clocks[me] = clock;
        result
    }

    /// The happens-before auditor: race, torn-concurrency, and
    /// lost-update detection at one access.
    fn audit(
        &mut self,
        obj: usize,
        me: usize,
        kind: AccessKind,
        order: MemOrder,
        clock: &VectorClock,
        event_idx: usize,
    ) {
        let o = &mut self.objects[obj];
        o.accesses += 1;
        if kind.is_read() {
            o.reads.insert((kind, order));
            o.reader_threads.insert(me);
        }
        if kind.is_write() {
            o.writes.insert((kind, order));
            o.writer_threads.insert(me);
        }
        // Unordered-conflict scan: any other thread's last write (or,
        // when we write, last read) not covered by our clock is
        // concurrent with this access.
        let mut conflict: Option<usize> = None;
        for (u, lw) in o.last_writes.iter().enumerate() {
            if u == me {
                continue;
            }
            if let Some((stamp, ev)) = lw {
                if clock.get(u) < *stamp {
                    conflict = Some(*ev);
                }
            }
        }
        if kind.is_write() {
            for (u, lr) in o.last_reads.iter().enumerate() {
                if u == me {
                    continue;
                }
                if let Some((stamp, ev)) = lr {
                    if clock.get(u) < *stamp {
                        conflict = Some(*ev);
                    }
                }
            }
        }
        if let Some(first) = conflict {
            if o.atomic {
                o.concurrent_rw = true;
            } else {
                let object = o.label.clone();
                self.findings.push(FindingKind::DataRace {
                    object,
                    first,
                    second: event_idx,
                });
                self.aborting = true;
                return;
            }
        }
        let o = &mut self.objects[obj];
        // Lost update: a blind store clobbering a write this thread
        // never observed.
        if o.atomic && kind == AccessKind::Store {
            if let Some((wt, wev, wseq)) = o.last_write {
                if wt != me && *ObjAudit::slot(&mut o.observed, me) < wseq {
                    let object = o.label.clone();
                    self.findings.push(FindingKind::LostUpdate {
                        object,
                        lost: wev,
                        second: event_idx,
                    });
                    self.aborting = true;
                    return;
                }
            }
        }
        if kind.is_read() {
            *ObjAudit::slot(&mut o.last_reads, me) = Some((clock.get(me), event_idx));
            let seen = o.last_write.map_or(0, |(_, _, seq)| seq);
            *ObjAudit::slot(&mut o.observed, me) = seen;
        }
        if kind.is_write() {
            o.write_seq += 1;
            o.last_write = Some((me, event_idx, o.write_seq));
            *ObjAudit::slot(&mut o.observed, me) = o.write_seq;
            *ObjAudit::slot(&mut o.last_writes, me) = Some((clock.get(me), event_idx));
        }
    }
}

impl Event {
    /// Whether two events conflict for partial-order reduction: same
    /// object, different threads, at least one write.
    #[must_use]
    pub(crate) fn conflicts(&self, other: &Event) -> bool {
        if self.thread == other.thread {
            return false;
        }
        match (&self.desc, &other.desc) {
            (
                EventDesc::Access {
                    obj: a, kind: ka, ..
                },
                EventDesc::Access {
                    obj: b, kind: kb, ..
                },
            ) => a == b && (ka.is_write() || kb.is_write()),
            _ => false,
        }
    }

    /// Whether this event happens-before `other` through a path that
    /// does not rely on `other`'s own acquire join (vector-clock
    /// test against `other`'s pre-acquire clock). This is the
    /// reversibility test for DPOR: if the only ordering between a
    /// conflicting pair is the reads-from edge between them, the pair
    /// is a race and both orders must be explored.
    #[must_use]
    pub(crate) fn happens_before(&self, other: &Event) -> bool {
        let base = other.pre_acquire.as_ref().unwrap_or(&other.clock);
        self.clock.get(self.thread) <= base.get(self.thread)
    }
}
