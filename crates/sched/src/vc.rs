//! Vector clocks: the happens-before backbone of the auditor and the
//! explorer's partial-order reduction.

/// A grow-on-demand vector clock over model-thread indices.
///
/// Component `t` counts the scheduling steps of thread `t` that
/// happen-before the clock's owner. Missing components are zero, so
/// clocks over different thread counts compare soundly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    stamps: Vec<u64>,
}

impl VectorClock {
    /// The all-zero clock.
    #[must_use]
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// Component `t` (zero if never ticked or joined).
    #[must_use]
    pub fn get(&self, t: usize) -> u64 {
        self.stamps.get(t).copied().unwrap_or(0)
    }

    /// Advances component `t` by one step.
    pub fn tick(&mut self, t: usize) {
        if self.stamps.len() <= t {
            self.stamps.resize(t + 1, 0);
        }
        self.stamps[t] += 1;
    }

    /// Pointwise maximum: after `self.join(o)`, everything that
    /// happened-before `o` also happens-before `self`.
    pub fn join(&mut self, other: &VectorClock) {
        if self.stamps.len() < other.stamps.len() {
            self.stamps.resize(other.stamps.len(), 0);
        }
        for (s, &o) in self.stamps.iter_mut().zip(&other.stamps) {
            *s = (*s).max(o);
        }
    }

    /// Whether every component of `self` is `<=` the matching
    /// component of `other` (the happens-before partial order).
    #[must_use]
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.stamps
            .iter()
            .enumerate()
            .all(|(t, &s)| s <= other.get(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_and_compare() {
        let mut a = VectorClock::new();
        let mut b = VectorClock::new();
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 0);
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(1), 1);
        assert!(VectorClock::new().leq(&a));
    }
}
