//! Deterministic schedule exploration and vector-clock race auditing.
//!
//! The concurrent pieces of this repository — the sharded metrics
//! registry, the LPT bucket runner, the checkpoint writer — were
//! historically verified by "it passed under one OS schedule". This
//! crate makes concurrency correctness a checked, repeatable analysis:
//!
//! - **Instrumented sync layer** ([`SyncAtomicU64`], [`SyncCell`],
//!   [`thread`], [`check`]): model code written against these runs as
//!   plain `std::sync::atomic` on ordinary threads, but under an
//!   active exploration every operation becomes a schedule point
//!   serialized by the controller.
//! - **Schedule explorer** ([`Explorer`]): stateless depth-first
//!   search over thread interleavings with dynamic partial-order
//!   reduction (Flanagan–Godefroid backtrack sets over a vector-clock
//!   happens-before relation), an optional preemption bound, seeded
//!   search order, and replayable [`ScheduleWitness`]es.
//! - **Happens-before auditor**: at every shared access, vector
//!   clocks decide whether the access is ordered with every other
//!   thread's last conflicting access. Unordered accesses to plain
//!   cells are data races; blind stores over unobserved foreign
//!   writes are lost updates; `check` failures and deadlocks complete
//!   the finding taxonomy ([`FindingKind`]).
//!
//! Exactness: within the modeled memory semantics (acquire/release
//! edges, spawn/join edges, `SeqCst` conservatively treated as
//! `AcqRel`, release sequences ignored), the DPOR search visits at
//! least one representative of every Mazurkiewicz trace, so a clean
//! exhaustive run means *no* reachable schedule exhibits a race, lost
//! update, failed check, or deadlock in the model. Both
//! simplifications only drop happens-before edges, which can produce
//! false positives, never false negatives.
//!
//! [`models`] ports the runner and checkpoint protocols; the metrics
//! registry model lives in `opd-obs` behind its `sched` feature, where
//! it drives the real registry code.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod explore;
pub mod models;
mod profile;
mod runtime;
mod sync;
mod vc;

pub use explore::{ExplorationReport, Explorer, Finding, ScheduleWitness};
pub use profile::{SiteProfile, SyncProfile};
pub use runtime::{current_thread_index, AccessKind, Event, EventDesc, FindingKind, MemOrder};
pub use sync::{check, thread, SyncAtomicU64, SyncCell};
pub use vc::VectorClock;
