//! Temporary review probes (not part of the PR).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use opd_sched::{thread, Explorer, FindingKind, SyncAtomicU64, SyncCell};

// A blind store that is fully happens-before-ordered (via join) after
// another thread's write. Classically NOT a lost update.
#[test]
fn probe_ordered_blind_store() {
    let report = Explorer::new().explore(|| {
        let a = Arc::new(SyncAtomicU64::labeled(0, "a"));
        let t = {
            let a = Arc::clone(&a);
            thread::spawn(move || {
                a.store(1, Ordering::Relaxed);
            })
        };
        t.join();
        a.store(2, Ordering::Relaxed);
    });
    match &report.finding {
        None => println!("PROBE1: clean (no false positive)"),
        Some(f) => println!("PROBE1: finding = {}", f.kind),
    }
}

// A relaxed store by a third thread overwrites a Release store; an
// Acquire load reading the relaxed value gets no synchronization in
// C11, so the cell read races the writer's cell write.
#[test]
fn probe_relaxed_overwrite_breaks_release() {
    let report = Explorer::new().explore(|| {
        let cell = Arc::new(SyncCell::labeled(0u64, "data"));
        let flag = Arc::new(SyncAtomicU64::labeled(0, "flag"));
        let t1 = {
            let cell = Arc::clone(&cell);
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                cell.write(1);
                flag.store(1, Ordering::Release);
            })
        };
        let t2 = {
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                flag.store(2, Ordering::Relaxed);
            })
        };
        let r = {
            let cell = Arc::clone(&cell);
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                if flag.load(Ordering::Acquire) == 2 {
                    let _ = cell.read();
                }
            })
        };
        t1.join();
        t2.join();
        r.join();
    });
    match &report.finding {
        None => println!("PROBE2: clean (race MISSED)"),
        Some(f) => {
            let is_race =
                matches!(&f.kind, FindingKind::DataRace { object, .. } if object == "data");
            println!(
                "PROBE2: finding = {} (is_data_race_on_data={is_race})",
                f.kind
            );
        }
    }
}
