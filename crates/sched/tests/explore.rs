//! Explorer correctness: schedule counts on toy models, DPOR/naive
//! agreement, replay determinism, and the seeded-bug mutants each
//! caught with the specific expected witness.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use opd_sched::{check, models, thread, Explorer, FindingKind, SyncAtomicU64, SyncCell};

/// Two threads doing one independent (distinct-object) write each:
/// naive DFS sees both interleavings, DPOR sees the operations
/// commute and explores just one.
#[test]
fn dpor_prunes_independent_writes() {
    let model = || {
        let a = Arc::new(SyncAtomicU64::labeled(0, "a"));
        let b = Arc::new(SyncAtomicU64::labeled(0, "b"));
        let ta = {
            let a = Arc::clone(&a);
            thread::spawn(move || {
                a.store(1, Ordering::Relaxed);
            })
        };
        let tb = {
            let b = Arc::clone(&b);
            thread::spawn(move || {
                b.store(1, Ordering::Relaxed);
            })
        };
        ta.join();
        tb.join();
    };
    let naive = Explorer::new().naive().explore(model);
    let dpor = Explorer::new().explore(model);
    assert!(naive.is_clean(), "{:?}", naive.finding);
    assert!(dpor.is_clean(), "{:?}", dpor.finding);
    // Naive DFS interleaves the stores with the spawn/join points
    // too; DPOR sees that nothing conflicts and runs one schedule.
    assert_eq!(naive.executions, 5);
    assert_eq!(dpor.executions, 1, "independent stores commute");
}

/// Conflicting accesses cannot be pruned: two unordered RMWs on one
/// atomic must still be explored in both orders.
#[test]
fn dpor_keeps_conflicting_orders() {
    let model = || {
        let a = Arc::new(SyncAtomicU64::labeled(0, "a"));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let a = Arc::clone(&a);
                thread::spawn(move || {
                    a.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for t in ts {
            t.join();
        }
        check(a.load(Ordering::Relaxed) == 2, "both increments landed");
    };
    let naive = Explorer::new().naive().explore(model);
    let dpor = Explorer::new().explore(model);
    assert!(naive.is_clean(), "{:?}", naive.finding);
    assert!(dpor.is_clean(), "{:?}", dpor.finding);
    assert_eq!(naive.executions, 5);
    assert_eq!(dpor.executions, 2, "conflicting RMWs do not commute");
    let site = dpor.profile.site("a").expect("profiled");
    assert!(site.concurrent_rw, "the RMWs are concurrent");
}

/// The seed permutes search order but never the explored set or the
/// verdict; replaying a witness reproduces the same finding.
#[test]
fn seeds_agree_and_witnesses_replay() {
    let reports: Vec<_> = [0u64, 1, 42]
        .into_iter()
        .map(|seed| {
            let mut e = Explorer::new();
            e.seed = seed;
            e.explore(models::metrics_lost_update)
        })
        .collect();
    for r in &reports {
        let finding = r.finding.as_ref().expect("lost update must be found");
        assert!(
            matches!(&finding.kind, FindingKind::LostUpdate { object, .. } if object == "hits"),
            "unexpected finding: {}",
            finding.kind
        );
        // Replay is deterministic: the recorded schedule reproduces
        // the exact same finding kind and trace.
        let replayed =
            Explorer::new().replay(models::metrics_lost_update, &finding.witness.choices);
        assert_eq!(replayed.executions, 1);
        let again = replayed.finding.expect("replay reproduces the finding");
        assert_eq!(again.witness.trace, finding.witness.trace);
    }
}

/// Preemption bounding restricts the explored set (and finds nothing
/// on a clean model).
#[test]
fn preemption_bound_restricts_search() {
    let unbounded = Explorer::new().explore(models::runner_disjoint_buckets);
    let mut bounded = Explorer::new();
    bounded.preemption_bound = Some(0);
    let bounded = bounded.explore(models::runner_disjoint_buckets);
    assert!(unbounded.is_clean(), "{:?}", unbounded.finding);
    assert!(bounded.finding.is_none(), "{:?}", bounded.finding);
    assert!(
        bounded.executions <= unbounded.executions,
        "bounding never enlarges the search ({} > {})",
        bounded.executions,
        unbounded.executions
    );
}

/// A deadlock (join cycle via a never-satisfied guard) is reported,
/// not hung. Modeled as a thread joining itself indirectly: t1 waits
/// on a flag only t1 would set after the join.
#[test]
fn check_failure_carries_trace_witness() {
    let report = Explorer::new().explore(|| {
        let flag = Arc::new(SyncAtomicU64::labeled(0, "flag"));
        let t = {
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                flag.store(1, Ordering::Release);
            })
        };
        t.join();
        check(flag.load(Ordering::Acquire) == 2, "flag is two");
    });
    let finding = report.finding.expect("check must fail");
    assert!(
        matches!(&finding.kind, FindingKind::CheckFailed { message } if message == "flag is two")
    );
    let rendered = finding.to_string();
    assert!(
        rendered.contains("store(1, Release) flag"),
        "witness trace shows the store: {rendered}"
    );
    assert!(rendered.contains("check failed"), "{rendered}");
}

// -- clean subsystem models --

#[test]
fn runner_model_explores_clean() {
    let report = Explorer::new().explore(models::runner_disjoint_buckets);
    assert!(report.is_clean(), "{:?}", report.finding);
    for label in models::runner_expected_objects() {
        assert!(
            report.profile.site(&label).is_some(),
            "expected object `{label}` unexplored"
        );
    }
    // The Relaxed progress counter is genuinely concurrent — that is
    // the documented contract, not a bug.
    assert!(report.profile.site("progress").unwrap().concurrent_rw);
    // Disjoint slots never race and never interleave.
    assert!(!report.profile.site("results[0]").unwrap().concurrent_rw);
}

#[test]
fn checkpoint_model_explores_clean() {
    let report = Explorer::new().explore(models::checkpoint_writer_reader);
    assert!(report.is_clean(), "{:?}", report.finding);
    // One schedule per observable prefix (0, 1, 2 records): the
    // reads-from edge between the Release publish and the Acquire
    // snapshot must not suppress its own reversal.
    assert_eq!(report.executions, 3);
    for label in models::checkpoint_expected_objects() {
        assert!(
            report.profile.site(&label).is_some(),
            "expected object `{label}` unexplored"
        );
    }
}

// -- seeded-bug mutants: the detector is not vacuous --

#[test]
fn mutant_lost_update_is_caught() {
    let report = Explorer::new().explore(models::metrics_lost_update);
    let finding = report.finding.expect("mutant must be caught");
    assert!(
        matches!(&finding.kind, FindingKind::LostUpdate { object, .. } if object == "hits"),
        "wrong finding: {}",
        finding.kind
    );
    assert!(!finding.witness.choices.is_empty());
}

#[test]
fn mutant_overlapping_buckets_is_caught() {
    let report = Explorer::new().explore(models::runner_overlapping_buckets);
    let finding = report.finding.expect("mutant must be caught");
    assert!(
        matches!(&finding.kind, FindingKind::DataRace { object, .. } if object == "results[1]"),
        "wrong finding: {}",
        finding.kind
    );
}

#[test]
fn mutant_dropped_join_is_caught() {
    let report = Explorer::new().explore(models::runner_dropped_join);
    let finding = report.finding.expect("mutant must be caught");
    assert!(
        matches!(&finding.kind, FindingKind::DataRace { object, .. } if object == "results[0]"),
        "wrong finding: {}",
        finding.kind
    );
}

#[test]
fn mutant_relaxed_publish_is_caught() {
    let report = Explorer::new().explore(models::checkpoint_relaxed_publish);
    let finding = report.finding.expect("mutant must be caught");
    assert!(
        matches!(&finding.kind, FindingKind::DataRace { object, .. } if object == "record[0]"),
        "wrong finding: {}",
        finding.kind
    );
    // The profile exposes the R202 shape: Relaxed RMW writes paired
    // with Acquire reads on the publication flag.
    let site = report.profile.site("committed").expect("profiled");
    assert!(site.has_relaxed_rmw_write());
    assert!(site.has_acquire_read());
}

/// Outside an exploration the sync layer is plain std behavior.
#[test]
fn plain_mode_falls_through() {
    let a = SyncAtomicU64::new(5);
    assert_eq!(a.fetch_add(2, Ordering::SeqCst), 5);
    assert_eq!(a.load(Ordering::SeqCst), 7);
    a.store(1, Ordering::SeqCst);
    assert_eq!(a.load(Ordering::SeqCst), 1);
    let c = SyncCell::new(9u64);
    assert_eq!(c.read(), 9);
    c.write(3);
    assert_eq!(c.read(), 3);
    assert!(opd_sched::current_thread_index().is_none());
}
