//! Property tests: baseline-solution invariants over arbitrary
//! well-nested call-loop structures.

use proptest::prelude::*;

use opd_baseline::CallLoopForest;
use opd_trace::{ExecutionTrace, LoopId, MethodId, ProfileElement, TraceSink};

/// A recipe for one construct execution, recursively nested.
#[derive(Debug, Clone)]
enum Node {
    Branches(u8),
    Loop(Vec<Node>),
    Method(u8, Vec<Node>),
}

fn arb_node(depth: u32) -> impl Strategy<Value = Node> {
    let leaf = (1u8..30).prop_map(Node::Branches);
    leaf.prop_recursive(depth, 32, 5, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Node::Loop),
            ((0u8..4), prop::collection::vec(inner, 1..4))
                .prop_map(|(m, body)| Node::Method(m, body)),
        ]
    })
}

fn record(nodes: &[Node], t: &mut ExecutionTrace, next_loop: &mut u32) {
    for node in nodes {
        match node {
            Node::Branches(n) => {
                for i in 0..*n {
                    t.record_branch(ProfileElement::new(
                        MethodId::new(0),
                        u32::from(i) % 11,
                        true,
                    ));
                }
            }
            Node::Loop(body) => {
                let id = LoopId::new(*next_loop);
                *next_loop += 1;
                t.record_loop_enter(id);
                record(body, t, next_loop);
                t.record_loop_exit(id);
            }
            Node::Method(m, body) => {
                let id = MethodId::new(u32::from(*m) + 1);
                t.record_method_enter(id);
                record(body, t, next_loop);
                t.record_method_exit(id);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn solutions_are_sound_for_all_structures(
        nodes in prop::collection::vec(arb_node(4), 1..5),
        mpl in 1u64..200,
    ) {
        let mut trace = ExecutionTrace::new();
        let mut next_loop = 0;
        record(&nodes, &mut trace, &mut next_loop);
        let total = trace.branches().len() as u64;

        let forest = CallLoopForest::build(&trace).expect("well nested by construction");
        prop_assert_eq!(forest.total_branches(), total);

        let sol = forest.solve(mpl);
        // Phases are sorted, disjoint, within bounds, and >= MPL.
        for w in sol.phases().windows(2) {
            prop_assert!(w[0].end() <= w[1].start());
        }
        for p in sol.phases() {
            prop_assert!(p.len() >= mpl, "{p} < {mpl}");
            prop_assert!(p.end() <= total);
        }
        // Label bookkeeping is self-consistent.
        prop_assert_eq!(sol.states().phase_count() as u64, sol.in_phase_elements());
        prop_assert!(sol.percent_in_phase() <= 100.0 + 1e-9);

        // The hierarchy's leaves are exactly the flat solution, and
        // every hierarchy node satisfies the MPL and proper nesting.
        let hier = forest.solve_hierarchy(mpl);
        prop_assert_eq!(hier.leaves(), sol.phases().to_vec());
        fn check(node: &opd_baseline::HierPhase, mpl: u64) -> Result<(), TestCaseError> {
            prop_assert!(node.interval().len() >= mpl);
            for c in node.children() {
                prop_assert!(node.interval().start() <= c.interval().start());
                prop_assert!(c.interval().end() <= node.interval().end());
                check(c, mpl)?;
            }
            Ok(())
        }
        for r in hier.roots() {
            check(r, mpl)?;
        }
    }

    #[test]
    fn phase_count_never_increases_with_mpl(
        nodes in prop::collection::vec(arb_node(3), 1..4),
    ) {
        let mut trace = ExecutionTrace::new();
        let mut next_loop = 0;
        record(&nodes, &mut trace, &mut next_loop);
        let forest = CallLoopForest::build(&trace).expect("well nested");
        // Phase count is non-increasing in MPL... for count but the
        // paper notes %-in-phase is NOT monotonic; assert only counts.
        let counts: Vec<usize> = [1u64, 5, 20, 80, 320]
            .iter()
            .map(|&mpl| forest.solve(mpl).phase_count())
            .collect();
        for w in counts.windows(2) {
            prop_assert!(w[0] >= w[1], "{counts:?}");
        }
    }
}
