//! Building the dynamic call-loop forest from a call-loop trace.

use core::fmt;
use std::collections::{BTreeSet, HashMap};

use opd_trace::{CallLoopEventKind, CallLoopTrace, ExecutionTrace, LoopId, MethodId};

use crate::select;
use crate::solution::BaselineSolution;

/// The static identity of a repetition construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Construct {
    /// A source loop.
    Loop(LoopId),
    /// A method.
    Method(MethodId),
}

impl fmt::Display for Construct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Construct::Loop(id) => write!(f, "{id}"),
            Construct::Method(id) => write!(f, "{id}"),
        }
    }
}

/// One dynamic execution of a repetition construct: a whole loop
/// execution (all iterations) or a whole method execution, spanning
/// profile-element offsets `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepNode {
    pub(crate) construct: Construct,
    pub(crate) start: u64,
    pub(crate) end: u64,
    pub(crate) recursion_root: bool,
    pub(crate) children: Vec<RepNode>,
}

impl RepNode {
    /// The construct this node is an execution of.
    #[must_use]
    pub fn construct(&self) -> Construct {
        self.construct
    }

    /// Offset of the first profile element inside the execution.
    #[must_use]
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Offset one past the last profile element inside the execution.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Number of profile elements spanned.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// `true` if the execution spans no profile elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// `true` if this is a method execution that is the root of a
    /// recursive execution (Section 3.1 of the paper).
    #[must_use]
    pub fn is_recursion_root(&self) -> bool {
        self.recursion_root
    }

    /// Child executions nested directly inside this one.
    #[must_use]
    pub fn children(&self) -> &[RepNode] {
        &self.children
    }

    /// Total number of nodes in this subtree (including `self`).
    #[must_use]
    pub fn subtree_size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(RepNode::subtree_size)
            .sum::<usize>()
    }
}

/// Error produced when a call-loop trace is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ForestError {
    /// An exit event did not match the innermost open construct.
    MismatchedExit {
        /// What the exit event named.
        found: Construct,
        /// What was open (if anything).
        expected: Option<Construct>,
        /// The branch offset of the offending event.
        offset: u64,
    },
}

impl fmt::Display for ForestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForestError::MismatchedExit {
                found,
                expected,
                offset,
            } => match expected {
                Some(e) => write!(f, "exit of {found} at offset {offset} while {e} is open"),
                None => write!(f, "exit of {found} at offset {offset} with nothing open"),
            },
        }
    }
}

impl std::error::Error for ForestError {}

/// The dynamic call-loop forest of one execution, built once and then
/// solvable for any number of MPL values.
///
/// # Examples
///
/// ```
/// use opd_baseline::CallLoopForest;
/// use opd_microvm::workloads::Workload;
///
/// let trace = Workload::Querydb.trace(1);
/// let forest = CallLoopForest::build(&trace)?;
/// let coarse = forest.solve(100_000);
/// let fine = forest.solve(1_000);
/// assert!(fine.phase_count() >= coarse.phase_count());
/// # Ok::<(), opd_baseline::ForestError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CallLoopForest {
    roots: Vec<RepNode>,
    total_branches: u64,
}

impl CallLoopForest {
    /// Builds the forest from a recorded execution trace.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::MismatchedExit`] if enter/exit events are
    /// improperly nested. Constructs still open at the end of the trace
    /// (e.g. a truncated recording) are closed at the trace end.
    pub fn build(trace: &ExecutionTrace) -> Result<Self, ForestError> {
        Self::from_events(trace.events(), trace.branches().len() as u64)
    }

    /// Builds the forest from a call-loop trace and the total number of
    /// profile elements.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::MismatchedExit`] on improper nesting.
    pub fn from_events(events: &CallLoopTrace, total_branches: u64) -> Result<Self, ForestError> {
        struct Frame {
            node: RepNode,
        }

        let mut stack: Vec<Frame> = Vec::new();
        let mut roots: Vec<RepNode> = Vec::new();
        // For recursion-root marking: stack indices of each method's
        // open frames.
        let mut method_frames: HashMap<MethodId, Vec<usize>> = HashMap::new();

        let close = |stack: &mut Vec<Frame>,
                     roots: &mut Vec<RepNode>,
                     method_frames: &mut HashMap<MethodId, Vec<usize>>,
                     end: u64| {
            let mut frame = stack.pop().expect("caller checks non-empty");
            frame.node.end = end;
            if let Construct::Method(m) = frame.node.construct {
                if let Some(v) = method_frames.get_mut(&m) {
                    v.pop();
                }
            }
            match stack.last_mut() {
                Some(parent) => parent.node.children.push(frame.node),
                None => roots.push(frame.node),
            }
        };

        for ev in events {
            let offset = ev.offset();
            match ev.kind() {
                CallLoopEventKind::LoopEnter(id) => {
                    stack.push(Frame {
                        node: RepNode {
                            construct: Construct::Loop(id),
                            start: offset,
                            end: offset,
                            recursion_root: false,
                            children: Vec::new(),
                        },
                    });
                }
                CallLoopEventKind::MethodEnter(m) => {
                    let frames = method_frames.entry(m).or_default();
                    if let Some(&root_idx) = frames.first() {
                        stack[root_idx].node.recursion_root = true;
                    }
                    frames.push(stack.len());
                    stack.push(Frame {
                        node: RepNode {
                            construct: Construct::Method(m),
                            start: offset,
                            end: offset,
                            recursion_root: false,
                            children: Vec::new(),
                        },
                    });
                }
                CallLoopEventKind::LoopExit(id) => {
                    let expected = stack.last().map(|f| f.node.construct);
                    if expected != Some(Construct::Loop(id)) {
                        return Err(ForestError::MismatchedExit {
                            found: Construct::Loop(id),
                            expected,
                            offset,
                        });
                    }
                    close(&mut stack, &mut roots, &mut method_frames, offset);
                }
                CallLoopEventKind::MethodExit(m) => {
                    let expected = stack.last().map(|f| f.node.construct);
                    if expected != Some(Construct::Method(m)) {
                        return Err(ForestError::MismatchedExit {
                            found: Construct::Method(m),
                            expected,
                            offset,
                        });
                    }
                    close(&mut stack, &mut roots, &mut method_frames, offset);
                }
            }
        }

        // Close anything still open at the end of the trace.
        while !stack.is_empty() {
            close(&mut stack, &mut roots, &mut method_frames, total_branches);
        }

        Ok(CallLoopForest {
            roots,
            total_branches,
        })
    }

    /// The top-level construct executions.
    #[must_use]
    pub fn roots(&self) -> &[RepNode] {
        &self.roots
    }

    /// Total number of profile elements in the underlying trace.
    #[must_use]
    pub fn total_branches(&self) -> u64 {
        self.total_branches
    }

    /// Total number of construct executions recorded.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.roots.iter().map(RepNode::subtree_size).sum()
    }

    /// Every distinct `(parent construct, child construct)` nesting
    /// edge realized by this execution. Static analyses compare
    /// against this set: a sound static nesting relation must contain
    /// every edge returned here.
    #[must_use]
    pub fn construct_edges(&self) -> BTreeSet<(Construct, Construct)> {
        fn walk(node: &RepNode, edges: &mut BTreeSet<(Construct, Construct)>) {
            for child in node.children() {
                edges.insert((node.construct(), child.construct()));
                walk(child, edges);
            }
        }
        let mut edges = BTreeSet::new();
        for root in &self.roots {
            walk(root, &mut edges);
        }
        edges
    }

    /// The distinct constructs appearing at the forest roots.
    #[must_use]
    pub fn root_constructs(&self) -> BTreeSet<Construct> {
        self.roots.iter().map(RepNode::construct).collect()
    }

    /// The deepest nesting level of any node, counting roots as level
    /// 1; 0 for an empty forest.
    #[must_use]
    pub fn max_depth(&self) -> u32 {
        fn depth(node: &RepNode) -> u32 {
            1 + node.children().iter().map(depth).max().unwrap_or(0)
        }
        self.roots.iter().map(depth).max().unwrap_or(0)
    }

    /// Runs the MPL-driven phase selection of Section 3.1, producing
    /// the baseline solution for one minimum phase length.
    #[must_use]
    pub fn solve(&self, mpl: u64) -> BaselineSolution {
        let phases = select::select_phases(&self.roots, mpl);
        BaselineSolution::from_parts(mpl, self.total_branches, phases)
    }

    /// Like [`solve`](CallLoopForest::solve), but exposing phases at
    /// *every* qualifying nesting level rather than only the innermost
    /// (the hierarchy Section 2 of the paper describes). The flat
    /// solution equals this tree's leaves.
    #[must_use]
    pub fn solve_hierarchy(&self, mpl: u64) -> crate::PhaseHierarchy {
        crate::hierarchy::build_hierarchy(&self.roots, mpl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_trace::{ExecutionTrace, ProfileElement, TraceSink};

    fn m(i: u32) -> MethodId {
        MethodId::new(i)
    }

    fn l(i: u32) -> LoopId {
        LoopId::new(i)
    }

    fn branch(t: &mut ExecutionTrace, n: u32) {
        for i in 0..n {
            t.record_branch(ProfileElement::new(m(0), i % 7, true));
        }
    }

    #[test]
    fn nested_loops_build_a_tree() {
        let mut t = ExecutionTrace::new();
        t.record_loop_enter(l(0));
        branch(&mut t, 2);
        t.record_loop_enter(l(1));
        branch(&mut t, 5);
        t.record_loop_exit(l(1));
        branch(&mut t, 3);
        t.record_loop_exit(l(0));
        let f = CallLoopForest::build(&t).unwrap();
        assert_eq!(f.roots().len(), 1);
        let outer = &f.roots()[0];
        assert_eq!(outer.construct(), Construct::Loop(l(0)));
        assert_eq!((outer.start(), outer.end()), (0, 10));
        assert_eq!(outer.len(), 10);
        assert_eq!(outer.children().len(), 1);
        let inner = &outer.children()[0];
        assert_eq!((inner.start(), inner.end()), (2, 7));
        assert_eq!(f.node_count(), 2);
    }

    #[test]
    fn recursion_root_marked() {
        let mut t = ExecutionTrace::new();
        t.record_method_enter(m(1));
        branch(&mut t, 1);
        t.record_method_enter(m(2));
        t.record_method_enter(m(1)); // recursion on m1
        branch(&mut t, 1);
        t.record_method_exit(m(1));
        t.record_method_exit(m(2));
        t.record_method_exit(m(1));
        let f = CallLoopForest::build(&t).unwrap();
        let root = &f.roots()[0];
        assert!(root.is_recursion_root());
        let mid = &root.children()[0];
        assert!(!mid.is_recursion_root());
        let leaf = &mid.children()[0];
        assert!(!leaf.is_recursion_root());
    }

    #[test]
    fn mismatched_exit_rejected() {
        let mut t = ExecutionTrace::new();
        t.record_loop_enter(l(0));
        t.record_loop_exit(l(9));
        let err = CallLoopForest::build(&t).unwrap_err();
        assert!(matches!(err, ForestError::MismatchedExit { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn exit_with_empty_stack_rejected() {
        let mut t = ExecutionTrace::new();
        t.record_method_exit(m(0));
        assert!(CallLoopForest::build(&t).is_err());
    }

    #[test]
    fn truncated_trace_closes_open_constructs() {
        let mut t = ExecutionTrace::new();
        t.record_loop_enter(l(0));
        branch(&mut t, 4);
        // No exit: simulate a truncated recording.
        let f = CallLoopForest::build(&t).unwrap();
        assert_eq!(f.roots()[0].end(), 4);
    }

    #[test]
    fn empty_trace_is_empty_forest() {
        let f = CallLoopForest::build(&ExecutionTrace::new()).unwrap();
        assert!(f.roots().is_empty());
        assert_eq!(f.node_count(), 0);
        assert_eq!(f.total_branches(), 0);
    }

    #[test]
    fn siblings_in_temporal_order() {
        let mut t = ExecutionTrace::new();
        for _ in 0..3 {
            t.record_loop_enter(l(0));
            branch(&mut t, 2);
            t.record_loop_exit(l(0));
            branch(&mut t, 1);
        }
        let f = CallLoopForest::build(&t).unwrap();
        assert_eq!(f.roots().len(), 3);
        assert!(f.roots().windows(2).all(|w| w[0].end() <= w[1].start()));
    }

    #[test]
    fn construct_views_summarize_the_forest() {
        let mut t = ExecutionTrace::new();
        t.record_method_enter(m(1));
        t.record_loop_enter(l(0));
        branch(&mut t, 2);
        t.record_loop_enter(l(1));
        branch(&mut t, 2);
        t.record_loop_exit(l(1));
        t.record_loop_exit(l(0));
        t.record_method_exit(m(1));
        t.record_method_enter(m(2));
        t.record_method_exit(m(2));
        let f = CallLoopForest::build(&t).unwrap();
        let edges = f.construct_edges();
        assert_eq!(
            edges.into_iter().collect::<Vec<_>>(),
            vec![
                (Construct::Loop(l(0)), Construct::Loop(l(1))),
                (Construct::Method(m(1)), Construct::Loop(l(0))),
            ]
        );
        assert_eq!(
            f.root_constructs().into_iter().collect::<Vec<_>>(),
            vec![Construct::Method(m(1)), Construct::Method(m(2))]
        );
        assert_eq!(f.max_depth(), 3);
        assert_eq!(
            CallLoopForest::build(&ExecutionTrace::new())
                .unwrap()
                .max_depth(),
            0
        );
    }

    #[test]
    fn workload_forest_builds() {
        let trace = opd_microvm::workloads::Workload::Audiodec.trace(1);
        let f = CallLoopForest::build(&trace).unwrap();
        assert!(f.node_count() > 10_000);
        assert_eq!(f.total_branches(), trace.branches().len() as u64);
    }
}
