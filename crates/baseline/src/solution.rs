//! The baseline solution: oracle phases, labels, and statistics.

use core::fmt;

use opd_trace::{
    boundaries_of, states_from_intervals, Boundary, ExecutionTrace, PhaseInterval, PhaseState,
    StateSeq,
};

use crate::forest::{CallLoopForest, ForestError};

/// The baseline (oracle) phases of one execution for one minimum phase
/// length, used as ground truth when scoring online detectors.
///
/// # Examples
///
/// ```
/// use opd_baseline::BaselineSolution;
/// use opd_microvm::workloads::Workload;
///
/// let trace = Workload::Parsegen.trace(1);
/// let oracle = BaselineSolution::compute(&trace, 10_000)?;
/// for phase in oracle.phases() {
///     assert!(phase.len() >= 10_000);
/// }
/// # Ok::<(), opd_baseline::ForestError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BaselineSolution {
    mpl: u64,
    total: u64,
    phases: Vec<PhaseInterval>,
}

impl BaselineSolution {
    /// Builds the call-loop forest of `trace` and solves it for `mpl`.
    ///
    /// When solving one trace for several MPL values, build a
    /// [`CallLoopForest`] once and call
    /// [`solve`](CallLoopForest::solve) per MPL instead.
    ///
    /// # Errors
    ///
    /// Returns a [`ForestError`] if the call-loop trace is malformed.
    pub fn compute(trace: &ExecutionTrace, mpl: u64) -> Result<Self, ForestError> {
        Ok(CallLoopForest::build(trace)?.solve(mpl))
    }

    pub(crate) fn from_parts(mpl: u64, total: u64, phases: Vec<PhaseInterval>) -> Self {
        debug_assert!(phases.windows(2).all(|w| w[0].end() <= w[1].start()));
        BaselineSolution { mpl, total, phases }
    }

    /// The minimum phase length this solution was computed for.
    #[must_use]
    pub fn mpl(&self) -> u64 {
        self.mpl
    }

    /// Total number of profile elements in the execution.
    #[must_use]
    pub fn total_elements(&self) -> u64 {
        self.total
    }

    /// The oracle phases, sorted and disjoint.
    #[must_use]
    pub fn phases(&self) -> &[PhaseInterval] {
        &self.phases
    }

    /// Number of oracle phases (Table 1(b), "# Phases").
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    /// Number of profile elements inside some phase.
    #[must_use]
    pub fn in_phase_elements(&self) -> u64 {
        self.phases.iter().map(|p| p.len()).sum()
    }

    /// Percentage of profile elements inside some phase
    /// (Table 1(b), "% in Phase").
    #[must_use]
    pub fn percent_in_phase(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.in_phase_elements() as f64 / self.total as f64
        }
    }

    /// The oracle phase boundaries, in offset order.
    #[must_use]
    pub fn boundaries(&self) -> Vec<Boundary> {
        boundaries_of(&self.phases)
    }

    /// Materializes the per-element `P`/`T` labels.
    #[must_use]
    pub fn states(&self) -> StateSeq {
        states_from_intervals(&self.phases, self.total)
    }

    /// The label of one profile element, by binary search (no
    /// materialization).
    #[must_use]
    pub fn state_of(&self, offset: u64) -> PhaseState {
        let idx = self.phases.partition_point(|p| p.end() <= offset);
        match self.phases.get(idx) {
            Some(p) if p.contains(offset) => PhaseState::Phase,
            _ => PhaseState::Transition,
        }
    }
}

impl fmt::Display for BaselineSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "baseline(mpl={}): {} phases, {:.2}% of {} elements in phase",
            self.mpl,
            self.phase_count(),
            self.percent_in_phase(),
            self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::workloads::Workload;

    fn solution(phases: &[(u64, u64)], total: u64) -> BaselineSolution {
        BaselineSolution::from_parts(
            100,
            total,
            phases
                .iter()
                .map(|&(s, e)| PhaseInterval::new(s, e))
                .collect(),
        )
    }

    #[test]
    fn statistics() {
        let s = solution(&[(10, 30), (50, 100)], 200);
        assert_eq!(s.phase_count(), 2);
        assert_eq!(s.in_phase_elements(), 70);
        assert!((s.percent_in_phase() - 35.0).abs() < 1e-12);
        assert_eq!(s.boundaries().len(), 4);
        assert_eq!(s.mpl(), 100);
        assert_eq!(s.total_elements(), 200);
    }

    #[test]
    fn states_and_state_of_agree() {
        let s = solution(&[(3, 6), (9, 12)], 15);
        let states = s.states();
        for off in 0..15 {
            assert_eq!(states.get(off as usize).unwrap(), s.state_of(off), "{off}");
        }
        assert_eq!(s.state_of(999), PhaseState::Transition);
    }

    #[test]
    fn empty_solution() {
        let s = solution(&[], 0);
        assert_eq!(s.percent_in_phase(), 0.0);
        assert!(s.states().is_empty());
        assert_eq!(s.state_of(0), PhaseState::Transition);
    }

    #[test]
    fn end_to_end_on_workload() {
        let trace = Workload::Lexgen.trace(1);
        let s = BaselineSolution::compute(&trace, 5_000).unwrap();
        assert!(s.phase_count() > 0);
        assert!(s.percent_in_phase() > 50.0, "{}", s.percent_in_phase());
        assert_eq!(s.states().len(), trace.branches().len());
        let text = format!("{s}");
        assert!(text.contains("baseline(mpl=5000)"), "{text}");
    }

    #[test]
    fn phase_count_decreases_with_mpl() {
        // The paper's Table 1(b) trend: larger MPL, fewer phases.
        let trace = Workload::Audiodec.trace(1);
        let forest = crate::CallLoopForest::build(&trace).unwrap();
        let counts: Vec<usize> = [1_000u64, 10_000, 100_000]
            .iter()
            .map(|&mpl| forest.solve(mpl).phase_count())
            .collect();
        assert!(
            counts[0] >= counts[1] && counts[1] >= counts[2],
            "{counts:?}"
        );
    }
}
