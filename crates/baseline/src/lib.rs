//! The offline baseline ("oracle") solution of Section 3.1 of *Online
//! Phase Detection Algorithms* (CGO 2006).
//!
//! The baseline is **not** an online detector: it takes a global view
//! of one execution's call-loop trace, identifies *complete repetitive
//! instances* (CRIs) — whole loop executions and recursive method
//! executions — and selects phases among them subject to a
//! client-supplied *minimum phase length* (MPL). Its per-element `P`/`T`
//! labels are the ground truth online detectors are scored against.
//!
//! The pipeline is:
//!
//! 1. [`CallLoopForest::build`] — parse the call-loop trace into a
//!    forest of repetition-construct executions, marking recursion
//!    roots;
//! 2. [`CallLoopForest::solve`] — for a given MPL, select phases:
//!    innermost qualifying constructs win, temporally adjacent CRIs
//!    with the same static identifier (distance ≤ 1 profile element)
//!    merge, and too-small constructs defer to their enclosing nest;
//! 3. [`BaselineSolution`] — the resulting phase intervals, labels, and
//!    summary statistics (Table 1(b) of the paper).
//!
//! # Examples
//!
//! ```
//! use opd_baseline::BaselineSolution;
//! use opd_microvm::workloads::Workload;
//!
//! let trace = Workload::Lexgen.trace(1);
//! let oracle = BaselineSolution::compute(&trace, 1_000)?;
//! assert!(oracle.phase_count() > 0);
//! assert!(oracle.percent_in_phase() > 50.0);
//! # Ok::<(), opd_baseline::ForestError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod forest;
mod hierarchy;
mod select;
mod solution;

pub use forest::{CallLoopForest, Construct, ForestError, RepNode};
pub use hierarchy::{HierPhase, PhaseHierarchy};
pub use solution::BaselineSolution;
