//! Hierarchical phase structure.
//!
//! Section 2 of the paper observes that "in practice, the profile
//! elements may form a hierarchy of phases, such as what one might
//! expect from a nested-loop structure. Ideally, an online phase
//! detector will find this hierarchy so that the detector's client can
//! exploit it" — and then presents flat detectors only, because extant
//! clients do not consume nesting. The baseline's call-loop forest,
//! however, carries the hierarchy for free; this module exposes it.
//!
//! [`CallLoopForest::solve_hierarchy`](crate::CallLoopForest::solve_hierarchy)
//! returns every qualifying phase at *every* nesting level; the flat
//! solution of Section 3.1 is exactly the set of leaves of this tree
//! (which the tests assert).

use opd_trace::PhaseInterval;

use crate::forest::RepNode;
use crate::select::{for_each_run, items_of, Item};

/// One node of the hierarchical phase structure: a phase whose span
/// may contain nested, smaller phases that also satisfy the MPL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierPhase {
    interval: PhaseInterval,
    children: Vec<HierPhase>,
}

impl HierPhase {
    /// The phase's extent.
    #[must_use]
    pub fn interval(&self) -> PhaseInterval {
        self.interval
    }

    /// Qualifying phases nested directly inside this one.
    #[must_use]
    pub fn children(&self) -> &[HierPhase] {
        &self.children
    }

    /// `true` if no smaller phase nests inside this one.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Depth of the subtree rooted here (a leaf has depth 1).
    #[must_use]
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(HierPhase::depth)
            .max()
            .unwrap_or(0)
    }

    /// Total number of phases in this subtree.
    #[must_use]
    pub fn subtree_size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(HierPhase::subtree_size)
            .sum::<usize>()
    }

    /// The intervals of the subtree's leaves, left to right.
    pub(crate) fn collect_leaves(&self, out: &mut Vec<PhaseInterval>) {
        if self.is_leaf() {
            out.push(self.interval);
        } else {
            for c in &self.children {
                c.collect_leaves(out);
            }
        }
    }
}

/// The hierarchical phases of one execution for one MPL.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseHierarchy {
    roots: Vec<HierPhase>,
}

impl PhaseHierarchy {
    /// Top-level phases (not themselves nested in a qualifying phase).
    #[must_use]
    pub fn roots(&self) -> &[HierPhase] {
        &self.roots
    }

    /// Total number of phases at all levels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.roots.iter().map(HierPhase::subtree_size).sum()
    }

    /// `true` if no phase qualifies.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Deepest nesting level present (0 when empty).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.roots.iter().map(HierPhase::depth).max().unwrap_or(0)
    }

    /// The innermost qualifying phases — identical to the flat
    /// baseline solution of Section 3.1.
    #[must_use]
    pub fn leaves(&self) -> Vec<PhaseInterval> {
        let mut out = Vec::new();
        for r in &self.roots {
            r.collect_leaves(&mut out);
        }
        out
    }
}

/// Builds the hierarchy for a forest (used by
/// [`CallLoopForest::solve_hierarchy`](crate::CallLoopForest::solve_hierarchy)).
pub(crate) fn build_hierarchy(roots: &[RepNode], mpl: u64) -> PhaseHierarchy {
    PhaseHierarchy {
        roots: hier_items(&items_of(roots), mpl),
    }
}

fn hier_items(items: &[Item<'_>], mpl: u64) -> Vec<HierPhase> {
    let mut out = Vec::new();
    for_each_run(items, |run| {
        let mut inner = Vec::new();
        for item in run {
            inner.extend(hier_items(&items_of(item.node.children()), mpl));
        }
        let start = run[0].start;
        let end = run[run.len() - 1].end;
        if start < end && end - start >= mpl {
            out.push(HierPhase {
                interval: PhaseInterval::new(start, end),
                children: inner,
            });
        } else {
            // The run itself does not qualify; qualifying descendants
            // float up to the enclosing level.
            out.extend(inner);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::CallLoopForest;
    use opd_trace::{ExecutionTrace, LoopId, MethodId, ProfileElement, TraceSink};

    fn branches(t: &mut ExecutionTrace, n: u32) {
        for i in 0..n {
            t.record_branch(ProfileElement::new(MethodId::new(0), i % 5, true));
        }
    }

    /// outer loop [0, 130) with two inner executions of 50.
    fn nested_trace() -> ExecutionTrace {
        let mut t = ExecutionTrace::new();
        t.record_loop_enter(LoopId::new(0));
        branches(&mut t, 5);
        for _ in 0..2 {
            t.record_loop_enter(LoopId::new(1));
            branches(&mut t, 50);
            t.record_loop_exit(LoopId::new(1));
            branches(&mut t, 10);
        }
        t.record_loop_exit(LoopId::new(0));
        t
    }

    #[test]
    fn nesting_is_exposed() {
        let forest = CallLoopForest::build(&nested_trace()).unwrap();
        let h = forest.solve_hierarchy(40);
        // The outer loop qualifies AND both inner executions qualify:
        // one root with two children.
        assert_eq!(h.roots().len(), 1);
        let outer = &h.roots()[0];
        assert_eq!(outer.interval(), PhaseInterval::new(0, 125));
        assert_eq!(outer.children().len(), 2);
        assert_eq!(outer.depth(), 2);
        assert_eq!(h.len(), 3);
        assert_eq!(h.depth(), 2);
        assert!(!h.is_empty());
        assert!(outer.children().iter().all(HierPhase::is_leaf));
    }

    #[test]
    fn leaves_equal_flat_solution_on_synthetic() {
        let forest = CallLoopForest::build(&nested_trace()).unwrap();
        for mpl in [10, 40, 60, 100, 200] {
            let flat = forest.solve(mpl);
            let hier = forest.solve_hierarchy(mpl);
            assert_eq!(hier.leaves(), flat.phases(), "mpl {mpl}");
        }
    }

    #[test]
    fn leaves_equal_flat_solution_on_workloads() {
        for w in [
            opd_microvm::workloads::Workload::Audiodec,
            opd_microvm::workloads::Workload::Srccomp,
        ] {
            let trace = w.trace(1);
            let forest = CallLoopForest::build(&trace).unwrap();
            for mpl in [1_000u64, 10_000, 100_000] {
                let flat = forest.solve(mpl);
                let hier = forest.solve_hierarchy(mpl);
                assert_eq!(hier.leaves(), flat.phases(), "{w} mpl {mpl}");
                assert!(hier.len() >= flat.phase_count(), "{w} mpl {mpl}");
            }
        }
    }

    #[test]
    fn hierarchy_nests_properly() {
        let trace = opd_microvm::workloads::Workload::Tracer.trace(1);
        let forest = CallLoopForest::build(&trace).unwrap();
        let h = forest.solve_hierarchy(1_000);
        fn check(node: &HierPhase) {
            for c in node.children() {
                assert!(
                    node.interval().start() <= c.interval().start()
                        && c.interval().end() <= node.interval().end(),
                    "child {c:?} escapes parent {:?}",
                    node.interval()
                );
                check(c);
            }
            for pair in node.children().windows(2) {
                assert!(pair[0].interval().end() <= pair[1].interval().start());
            }
        }
        assert!(h.depth() >= 2, "tracer has bands within frames");
        for r in h.roots() {
            check(r);
        }
    }

    #[test]
    fn empty_forest_gives_empty_hierarchy() {
        let forest = CallLoopForest::build(&ExecutionTrace::new()).unwrap();
        let h = forest.solve_hierarchy(100);
        assert!(h.is_empty());
        assert_eq!(h.depth(), 0);
        assert!(h.leaves().is_empty());
    }
}
