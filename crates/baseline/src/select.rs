//! MPL-driven phase selection over the call-loop forest (Section 3.1).
//!
//! Complete repetitive instances (CRIs) are whole loop executions,
//! recursive method executions (recursion roots), and temporally
//! adjacent repeated invocations of one method. Selection is
//! innermost-first: a construct's executions are phases only if no
//! construct nested inside them qualifies; runs of same-identifier CRIs
//! at distance ≤ 1 profile element merge into a single candidate (this
//! both combines repeated method invocations and collapses perfect
//! loop nests onto their enclosing extent); and a candidate qualifies
//! when its span reaches the minimum phase length.

use opd_trace::PhaseInterval;

use crate::forest::{Construct, RepNode};

/// A CRI candidate at one nesting level.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Item<'a> {
    pub(crate) id: Construct,
    pub(crate) start: u64,
    pub(crate) end: u64,
    pub(crate) node: &'a RepNode,
}

/// Splits a sibling item list into maximal runs of same-identifier
/// CRIs at distance ≤ 1, invoking `f` on each run.
pub(crate) fn for_each_run<'a>(items: &[Item<'a>], mut f: impl FnMut(&[Item<'a>])) {
    let mut i = 0;
    while i < items.len() {
        let mut j = i + 1;
        while j < items.len()
            && items[j].id == items[i].id
            && items[j].start.saturating_sub(items[j - 1].end) <= 1
        {
            j += 1;
        }
        f(&items[i..j]);
        i = j;
    }
}

/// Computes the baseline phases for one MPL value.
pub(crate) fn select_phases(roots: &[RepNode], mpl: u64) -> Vec<PhaseInterval> {
    let items = items_of(roots);
    let mut out = Vec::new();
    select_items(&items, mpl, &mut out);
    out
}

/// Lifts a sibling list into CRI candidates: loop executions and
/// recursion roots are CRIs; a method execution is a CRI if a raw
/// neighbour is an invocation of the same method at distance ≤ 1
/// (a repeated-invocation run); any other method execution is
/// *transparent* — its children are spliced in its place so the loops
/// inside it stay visible at this level.
pub(crate) fn items_of(children: &[RepNode]) -> Vec<Item<'_>> {
    let mut out = Vec::with_capacity(children.len());
    for (idx, c) in children.iter().enumerate() {
        let is_cri = match c.construct() {
            Construct::Loop(_) => true,
            Construct::Method(_) => c.is_recursion_root() || in_method_run(children, idx),
        };
        if is_cri {
            out.push(Item {
                id: c.construct(),
                start: c.start(),
                end: c.end(),
                node: c,
            });
        } else {
            out.extend(items_of(c.children()));
        }
    }
    out
}

/// `true` if `children[idx]` is a method execution immediately adjacent
/// (distance ≤ 1) to a sibling execution of the same method.
fn in_method_run(children: &[RepNode], idx: usize) -> bool {
    let c = &children[idx];
    let before = idx
        .checked_sub(1)
        .map(|p| &children[p])
        .filter(|p| p.construct() == c.construct() && c.start().saturating_sub(p.end()) <= 1);
    let after = children
        .get(idx + 1)
        .filter(|n| n.construct() == c.construct() && n.start().saturating_sub(c.end()) <= 1);
    before.is_some() || after.is_some()
}

/// Innermost-first selection over a sibling item list.
fn select_items(items: &[Item<'_>], mpl: u64, out: &mut Vec<PhaseInterval>) {
    for_each_run(items, |run| {
        // Innermost constructs win: if anything nested inside the run
        // qualifies, those are the phases for this span.
        let before = out.len();
        for item in run {
            let inner = items_of(item.node.children());
            select_items(&inner, mpl, out);
        }
        if out.len() == before {
            let start = run[0].start;
            let end = run[run.len() - 1].end;
            if end - start >= mpl && start < end {
                out.push(PhaseInterval::new(start, end));
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::CallLoopForest;
    use opd_trace::{ExecutionTrace, LoopId, MethodId, ProfileElement, TraceSink};

    fn l(i: u32) -> LoopId {
        LoopId::new(i)
    }

    fn m(i: u32) -> MethodId {
        MethodId::new(i)
    }

    fn branches(t: &mut ExecutionTrace, n: u32) {
        for i in 0..n {
            t.record_branch(ProfileElement::new(m(0), i % 5, true));
        }
    }

    fn phases_of(t: &ExecutionTrace, mpl: u64) -> Vec<PhaseInterval> {
        select_phases(CallLoopForest::build(t).unwrap().roots(), mpl)
    }

    #[test]
    fn big_loop_is_a_phase() {
        let mut t = ExecutionTrace::new();
        t.record_loop_enter(l(0));
        branches(&mut t, 100);
        t.record_loop_exit(l(0));
        assert_eq!(phases_of(&t, 50), vec![PhaseInterval::new(0, 100)]);
    }

    #[test]
    fn small_loop_is_not_a_phase() {
        let mut t = ExecutionTrace::new();
        t.record_loop_enter(l(0));
        branches(&mut t, 30);
        t.record_loop_exit(l(0));
        assert!(phases_of(&t, 50).is_empty());
    }

    #[test]
    fn innermost_qualifying_loop_wins() {
        // outer [0, 120) containing two inner executions of 50,
        // separated by more than one element.
        let mut t = ExecutionTrace::new();
        t.record_loop_enter(l(0));
        branches(&mut t, 5);
        t.record_loop_enter(l(1));
        branches(&mut t, 50);
        t.record_loop_exit(l(1));
        branches(&mut t, 10);
        t.record_loop_enter(l(1));
        branches(&mut t, 50);
        t.record_loop_exit(l(1));
        branches(&mut t, 5);
        t.record_loop_exit(l(0));
        let phases = phases_of(&t, 40);
        assert_eq!(
            phases,
            vec![PhaseInterval::new(5, 55), PhaseInterval::new(65, 115)]
        );
    }

    #[test]
    fn small_inner_defers_to_outer() {
        // Same structure, but inner executions are below MPL: the
        // outer loop is selected instead.
        let mut t = ExecutionTrace::new();
        t.record_loop_enter(l(0));
        branches(&mut t, 5);
        for _ in 0..2 {
            t.record_loop_enter(l(1));
            branches(&mut t, 20);
            t.record_loop_exit(l(1));
            branches(&mut t, 10);
        }
        t.record_loop_exit(l(0));
        let phases = phases_of(&t, 40);
        assert_eq!(phases, vec![PhaseInterval::new(0, 65)]);
    }

    #[test]
    fn perfect_nest_merges_inner_executions() {
        // Inner executions separated by exactly one element (the outer
        // loop's back-edge branch) merge into one candidate covering
        // nearly the whole outer loop.
        let mut t = ExecutionTrace::new();
        t.record_loop_enter(l(0));
        for _ in 0..4 {
            t.record_loop_enter(l(1));
            branches(&mut t, 20);
            t.record_loop_exit(l(1));
            branches(&mut t, 1); // back edge
        }
        t.record_loop_exit(l(0));
        let phases = phases_of(&t, 40);
        assert_eq!(phases, vec![PhaseInterval::new(0, 83)]);
    }

    #[test]
    fn adjacent_method_invocations_merge() {
        let mut t = ExecutionTrace::new();
        for _ in 0..3 {
            t.record_method_enter(m(7));
            branches(&mut t, 30);
            t.record_method_exit(m(7));
        }
        // 3 adjacent invocations of m7 merge into one 90-element phase.
        assert_eq!(phases_of(&t, 80), vec![PhaseInterval::new(0, 90)]);
    }

    #[test]
    fn separated_method_invocations_do_not_merge() {
        let mut t = ExecutionTrace::new();
        for _ in 0..3 {
            t.record_method_enter(m(7));
            branches(&mut t, 30);
            t.record_method_exit(m(7));
            branches(&mut t, 10);
        }
        // Isolated single invocations are not CRIs (only recursive
        // executions and temporally adjacent runs are), so nothing
        // qualifies at any MPL.
        assert!(phases_of(&t, 80).is_empty());
        assert!(phases_of(&t, 25).is_empty());
    }

    #[test]
    fn single_plain_method_is_transparent() {
        // main() { f() { loop of 100 } }: the loop inside the
        // non-repeated method must still be found.
        let mut t = ExecutionTrace::new();
        t.record_method_enter(m(0));
        t.record_method_enter(m(1));
        t.record_loop_enter(l(0));
        branches(&mut t, 100);
        t.record_loop_exit(l(0));
        t.record_method_exit(m(1));
        t.record_method_exit(m(0));
        assert_eq!(phases_of(&t, 50), vec![PhaseInterval::new(0, 100)]);
    }

    #[test]
    fn recursion_root_is_a_cri() {
        let mut t = ExecutionTrace::new();
        t.record_method_enter(m(1));
        branches(&mut t, 10);
        t.record_method_enter(m(1));
        branches(&mut t, 40);
        t.record_method_exit(m(1));
        branches(&mut t, 10);
        t.record_method_exit(m(1));
        // Root spans [0, 60). The nested invocation is not separately
        // selected (it is below the root and the root is the CRI that
        // qualifies once nothing inner does).
        assert_eq!(phases_of(&t, 50), vec![PhaseInterval::new(0, 60)]);
    }

    #[test]
    fn loop_inside_recursion_wins_when_big_enough() {
        let mut t = ExecutionTrace::new();
        t.record_method_enter(m(1));
        t.record_loop_enter(l(0));
        branches(&mut t, 60);
        t.record_loop_exit(l(0));
        t.record_method_enter(m(1));
        branches(&mut t, 5);
        t.record_method_exit(m(1));
        t.record_method_exit(m(1));
        assert_eq!(phases_of(&t, 50), vec![PhaseInterval::new(0, 60)]);
    }

    #[test]
    fn phases_are_sorted_and_disjoint() {
        let trace = opd_microvm::workloads::Workload::Ruleng.trace(1);
        let forest = CallLoopForest::build(&trace).unwrap();
        for mpl in [1_000, 10_000, 100_000] {
            let phases = select_phases(forest.roots(), mpl);
            for w in phases.windows(2) {
                assert!(w[0].end() <= w[1].start(), "mpl {mpl}: {w:?}");
            }
            for p in &phases {
                assert!(p.len() >= mpl, "mpl {mpl}: {p}");
            }
        }
    }

    #[test]
    fn empty_forest_has_no_phases() {
        assert!(phases_of(&ExecutionTrace::new(), 10).is_empty());
    }
}
