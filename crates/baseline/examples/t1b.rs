//! Prints the Table 1(b)-style phase summary straight from the
//! baseline crate — handy when iterating on workload shapes without
//! building the full experiment harness.
//!
//! ```sh
//! cargo run --release -p opd-baseline --example t1b
//! ```

use opd_baseline::CallLoopForest;
use opd_microvm::workloads::Workload;

fn main() {
    println!(
        "{:<10} {:>9}  (#phases, % in phase) per MPL 1K 5K 10K 25K 50K 100K",
        "bench", "branches"
    );
    for w in Workload::ALL {
        let t = w.trace(1);
        let f = CallLoopForest::build(&t).expect("workload traces are well nested");
        print!("{:<10} {:>9} ", w.name(), t.branches().len());
        for mpl in [1_000u64, 5_000, 10_000, 25_000, 50_000, 100_000] {
            let s = f.solve(mpl);
            print!(" ({}, {:.0}%)", s.phase_count(), s.percent_in_phase());
        }
        println!();
    }
}
