//! Pre-order IR walkers: flat iteration over every statement of a
//! [`Program`] with its static context (enclosing function, loop
//! stack, argument guard).
//!
//! The walkers are the substrate `opd-analyze` builds its call graph,
//! nesting tree, and bound computations on, and what
//! [`Program::validate`](crate::Program::validate) uses to keep the
//! builder's checks and the lint engine's checks identical.

use opd_trace::LoopId;

use crate::ir::{FuncId, Program, Stmt};

/// The static context of one visited statement: which function it is
/// in, the stack of enclosing loops *within that function*, and
/// whether it sits under an `arg > 0` guard.
#[derive(Debug, Clone)]
pub struct WalkCtx<'a> {
    func: FuncId,
    loops: &'a [LoopId],
    arg_guarded: bool,
}

impl WalkCtx<'_> {
    /// The function the statement belongs to.
    #[must_use]
    pub fn func(&self) -> FuncId {
        self.func
    }

    /// Enclosing loops within the current function, outermost first.
    #[must_use]
    pub fn loops(&self) -> &[LoopId] {
        self.loops
    }

    /// The innermost enclosing loop, if the statement is inside one.
    #[must_use]
    pub fn innermost_loop(&self) -> Option<LoopId> {
        self.loops.last().copied()
    }

    /// Loop-nesting depth within the current function (0 at the top
    /// level of a body).
    #[must_use]
    pub fn loop_depth(&self) -> usize {
        self.loops.len()
    }

    /// `true` if the statement is inside an
    /// [`IfArgPositive`](Stmt::IfArgPositive) guard.
    #[must_use]
    pub fn is_arg_guarded(&self) -> bool {
        self.arg_guarded
    }
}

fn walk_block<F: FnMut(&WalkCtx<'_>, &Stmt)>(
    func: FuncId,
    stmts: &[Stmt],
    loops: &mut Vec<LoopId>,
    arg_guarded: bool,
    f: &mut F,
) {
    for stmt in stmts {
        {
            let ctx = WalkCtx {
                func,
                loops,
                arg_guarded,
            };
            f(&ctx, stmt);
        }
        match stmt {
            Stmt::Branch(_) | Stmt::Call { .. } => {}
            Stmt::Loop { id, body, .. } => {
                loops.push(*id);
                walk_block(func, body, loops, arg_guarded, f);
                loops.pop();
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                walk_block(func, then_body, loops, arg_guarded, f);
                walk_block(func, else_body, loops, arg_guarded, f);
            }
            Stmt::IfArgPositive { body } => {
                walk_block(func, body, loops, true, f);
            }
        }
    }
}

impl Program {
    /// Visits every statement of every function in pre-order,
    /// supplying the static context of each.
    ///
    /// # Examples
    ///
    /// ```
    /// use opd_microvm::{ProgramBuilder, Stmt, TakenDist, Trip};
    ///
    /// let mut b = ProgramBuilder::new();
    /// let main = b.declare("main");
    /// b.define(main, |f| {
    ///     f.repeat(Trip::Fixed(2), |l| {
    ///         l.branch(TakenDist::Always);
    ///     });
    /// });
    /// let program = b.build()?;
    /// let mut nested_branches = 0;
    /// program.walk(|ctx, stmt| {
    ///     if matches!(stmt, Stmt::Branch(_)) && ctx.loop_depth() == 1 {
    ///         nested_branches += 1;
    ///     }
    /// });
    /// assert_eq!(nested_branches, 1);
    /// # Ok::<(), opd_microvm::BuildError>(())
    /// ```
    pub fn walk<F: FnMut(&WalkCtx<'_>, &Stmt)>(&self, mut f: F) {
        for (i, func) in self.functions().iter().enumerate() {
            let id = FuncId(i as u32);
            let mut loops = Vec::new();
            walk_block(id, func.body(), &mut loops, false, &mut f);
        }
    }

    /// Visits every statement of one function in pre-order.
    pub fn walk_function<F: FnMut(&WalkCtx<'_>, &Stmt)>(&self, id: FuncId, mut f: F) {
        let mut loops = Vec::new();
        walk_block(id, self.function(id).body(), &mut loops, false, &mut f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArgExpr, ProgramBuilder, TakenDist, Trip};

    #[test]
    fn walk_reports_context() {
        let mut b = ProgramBuilder::new();
        let helper = b.declare("helper");
        let main = b.declare("main");
        b.define(helper, |f| {
            f.branch(TakenDist::Always);
            f.if_arg_positive(|g| {
                g.call(helper, ArgExpr::Dec);
            });
        });
        b.define(main, |f| {
            f.repeat(Trip::Fixed(2), |outer| {
                outer.repeat(Trip::Fixed(3), |inner| {
                    inner.branch(TakenDist::Never);
                });
            });
            f.call(helper, ArgExpr::Const(4));
        });
        let p = b.entry(main).build().unwrap();

        let mut guarded_calls = 0;
        let mut deepest = 0;
        let mut stmts = 0;
        p.walk(|ctx, stmt| {
            stmts += 1;
            deepest = deepest.max(ctx.loop_depth());
            if matches!(stmt, Stmt::Call { .. }) && ctx.is_arg_guarded() {
                guarded_calls += 1;
                assert_eq!(ctx.func(), helper);
            }
            if ctx.loop_depth() == 2 {
                assert!(ctx.innermost_loop().is_some());
                assert_eq!(ctx.loops().len(), 2);
            }
        });
        assert_eq!(guarded_calls, 1);
        assert_eq!(deepest, 2);
        // helper: branch + guard + call; main: loop + loop + branch + call.
        assert_eq!(stmts, 7);
    }

    #[test]
    fn walk_function_restricts_to_one_body() {
        let mut b = ProgramBuilder::new();
        let a = b.declare("a");
        let c = b.declare("c");
        b.define(a, |f| {
            f.branch(TakenDist::Always);
        });
        b.define(c, |f| {
            f.branches(3, TakenDist::Never);
        });
        let p = b.entry(c).build().unwrap();
        let mut seen = 0;
        p.walk_function(a, |ctx, _| {
            assert_eq!(ctx.func(), a);
            seen += 1;
        });
        assert_eq!(seen, 1);
    }
}
