//! The MicroVM interpreter: executes a [`Program`] and streams both
//! profile streams into a [`TraceSink`].

use core::fmt;

use opd_trace::{CallLoopEventKind, ProfileElement, TraceSink};

use crate::ir::{ArgExpr, BranchStmt, FuncId, Program, Stmt, TakenDist, Trip};
use crate::rng::SplitMix64;

/// Error produced by a runaway execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InterpError {
    /// The call stack exceeded the configured limit — almost always an
    /// unguarded recursive call (missing
    /// [`if_arg_positive`](crate::BlockBuilder::if_arg_positive) or a
    /// non-decreasing [`ArgExpr`]).
    CallDepthExceeded {
        /// The limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::CallDepthExceeded { limit } => {
                write!(f, "call depth exceeded the limit of {limit}")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// What one execution did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunSummary {
    /// Profile elements (dynamic branches) emitted.
    pub branches: u64,
    /// Call-loop events emitted.
    pub events: u64,
    /// Deepest call stack reached.
    pub max_depth: usize,
    /// `true` if the branch budget ran out and the program was halted
    /// early (the trace is still well-formed: every enter event has a
    /// matching exit).
    pub exhausted: bool,
}

/// Executes a MicroVM program deterministically.
///
/// Equal (program, seed) pairs produce identical traces. The optional
/// branch budget ([`with_fuel`](Interpreter::with_fuel)) halts emission
/// early while still unwinding cleanly, so truncated traces remain
/// balanced.
///
/// # Examples
///
/// ```
/// use opd_microvm::{Interpreter, ProgramBuilder, TakenDist, Trip};
/// use opd_trace::ExecutionTrace;
///
/// let mut b = ProgramBuilder::new();
/// let main = b.declare("main");
/// b.define(main, |f| {
///     f.repeat(Trip::Fixed(10), |l| {
///         l.branch(TakenDist::Alternating);
///     });
/// });
/// let program = b.build()?;
/// let mut trace = ExecutionTrace::new();
/// let summary = Interpreter::new(&program, 1).run(&mut trace)?;
/// assert_eq!(summary.branches, 10);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    rng: SplitMix64,
    fuel: u64,
    depth_limit: usize,
    site_state: Vec<u32>,
}

struct Exec<'p, 'a, S: TraceSink> {
    program: &'p Program,
    rng: &'a mut SplitMix64,
    sink: &'a mut S,
    site_state: &'a mut [u32],
    branches: u64,
    events: u64,
    fuel: u64,
    halted: bool,
    depth: usize,
    max_depth: usize,
    depth_limit: usize,
}

impl<'p> Interpreter<'p> {
    /// Default call-depth limit.
    pub const DEFAULT_DEPTH_LIMIT: usize = 512;

    /// Creates an interpreter for `program` with the given RNG seed.
    #[must_use]
    pub fn new(program: &'p Program, seed: u64) -> Self {
        Interpreter {
            program,
            rng: SplitMix64::new(seed),
            fuel: u64::MAX,
            depth_limit: Self::DEFAULT_DEPTH_LIMIT,
            site_state: vec![0; program.state_slot_count() as usize],
        }
    }

    /// Caps the number of profile elements emitted. The program is
    /// halted (and unwound cleanly) once the budget is spent.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Overrides the call-depth limit.
    #[must_use]
    pub fn with_depth_limit(mut self, limit: usize) -> Self {
        self.depth_limit = limit;
        self
    }

    /// Runs the program to completion (or until fuel runs out),
    /// streaming into `sink`. A `&mut` sink reference also works, since
    /// `TraceSink` is implemented for mutable references.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::CallDepthExceeded`] if recursion exceeds
    /// the depth limit; the sink will have received a partial,
    /// possibly unbalanced trace in that case.
    pub fn run<S: TraceSink>(&mut self, sink: &mut S) -> Result<RunSummary, InterpError> {
        let mut exec = Exec {
            program: self.program,
            rng: &mut self.rng,
            sink,
            site_state: &mut self.site_state,
            branches: 0,
            events: 0,
            fuel: self.fuel,
            halted: false,
            depth: 0,
            max_depth: 0,
            depth_limit: self.depth_limit,
        };
        exec.call(self.program.entry(), self.program.entry_arg())?;
        Ok(RunSummary {
            branches: exec.branches,
            events: exec.events,
            max_depth: exec.max_depth,
            exhausted: exec.halted,
        })
    }
}

impl<S: TraceSink> Exec<'_, '_, S> {
    fn emit_event(&mut self, kind: CallLoopEventKind) {
        self.sink.record_event(kind, self.branches);
        self.events += 1;
    }

    fn call(&mut self, id: FuncId, arg: u32) -> Result<(), InterpError> {
        if self.depth >= self.depth_limit {
            return Err(InterpError::CallDepthExceeded {
                limit: self.depth_limit,
            });
        }
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
        self.emit_event(CallLoopEventKind::MethodEnter(id.method_id()));
        let body = self.program.function(id).body();
        let result = self.block(id, arg, body);
        self.emit_event(CallLoopEventKind::MethodExit(id.method_id()));
        self.depth -= 1;
        result
    }

    fn block(&mut self, func: FuncId, arg: u32, stmts: &[Stmt]) -> Result<(), InterpError> {
        for stmt in stmts {
            if self.halted {
                break;
            }
            match stmt {
                Stmt::Branch(b) => {
                    self.exec_branch(func, b);
                }
                Stmt::Loop { id, trip, body } => {
                    let n = self.draw_trip(*trip, arg);
                    self.emit_event(CallLoopEventKind::LoopEnter(*id));
                    for _ in 0..n {
                        if self.halted {
                            break;
                        }
                        self.block(func, arg, body)?;
                    }
                    self.emit_event(CallLoopEventKind::LoopExit(*id));
                }
                Stmt::Call { callee, arg: expr } => {
                    let value = self.eval_arg(*expr, arg);
                    self.call(*callee, value)?;
                }
                Stmt::If {
                    branch,
                    then_body,
                    else_body,
                } => {
                    let taken = self.exec_branch(func, branch);
                    if taken {
                        self.block(func, arg, then_body)?;
                    } else {
                        self.block(func, arg, else_body)?;
                    }
                }
                Stmt::IfArgPositive { body } => {
                    if arg > 0 {
                        self.block(func, arg, body)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn exec_branch(&mut self, func: FuncId, b: &BranchStmt) -> bool {
        let taken = match b.dist {
            TakenDist::Always => true,
            TakenDist::Never => false,
            TakenDist::Bernoulli(p) => self.rng.next_bool(p),
            TakenDist::Alternating => {
                let s = &mut self.site_state[b.state_slot as usize];
                *s ^= 1;
                *s == 1
            }
            TakenDist::Periodic(period) => {
                let s = &mut self.site_state[b.state_slot as usize];
                *s += 1;
                if *s >= period {
                    *s = 0;
                    true
                } else {
                    false
                }
            }
        };
        if self.fuel == 0 {
            self.halted = true;
            return taken;
        }
        self.fuel -= 1;
        self.sink
            .record_branch(ProfileElement::new(func.method_id(), b.offset, taken));
        self.branches += 1;
        taken
    }

    fn draw_trip(&mut self, trip: Trip, arg: u32) -> u32 {
        match trip {
            Trip::Fixed(n) => n,
            Trip::Uniform(lo, hi) => self.rng.next_range(u64::from(lo), u64::from(hi)) as u32,
            Trip::Arg => arg,
        }
    }

    fn eval_arg(&mut self, expr: ArgExpr, arg: u32) -> u32 {
        match expr {
            ArgExpr::Const(v) => v,
            ArgExpr::Dec => arg.saturating_sub(1),
            ArgExpr::Half => arg / 2,
            ArgExpr::Draw(lo, hi) => self.rng.next_range(u64::from(lo), u64::from(hi)) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;
    use opd_trace::{ExecutionTrace, TraceStats};

    fn run_program(b: &mut ProgramBuilder, seed: u64) -> (ExecutionTrace, RunSummary) {
        let program = b.build().unwrap();
        let mut trace = ExecutionTrace::new();
        let summary = Interpreter::new(&program, seed).run(&mut trace).unwrap();
        (trace, summary)
    }

    #[test]
    fn simple_loop_emits_expected_counts() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.repeat(Trip::Fixed(7), |l| {
                l.branches(3, TakenDist::Always);
            });
        });
        let (trace, summary) = run_program(&mut b, 0);
        assert_eq!(summary.branches, 21);
        assert_eq!(trace.branches().len(), 21);
        // method enter/exit + loop enter/exit
        assert_eq!(summary.events, 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut b = ProgramBuilder::new();
            let main = b.declare("main");
            b.define(main, |f| {
                f.repeat(Trip::Uniform(5, 50), |l| {
                    l.branch(TakenDist::Bernoulli(0.5));
                });
            });
            b.build().unwrap()
        };
        let p1 = build();
        let p2 = build();
        let mut t1 = ExecutionTrace::new();
        let mut t2 = ExecutionTrace::new();
        Interpreter::new(&p1, 99).run(&mut t1).unwrap();
        Interpreter::new(&p2, 99).run(&mut t2).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn bounded_recursion_terminates() {
        let mut b = ProgramBuilder::new();
        let rec = b.declare("rec");
        let main = b.declare("main");
        b.define(rec, |f| {
            f.branch(TakenDist::Always);
            f.if_arg_positive(|g| {
                g.call(rec, ArgExpr::Dec);
            });
        });
        b.define(main, |f| {
            f.call(rec, ArgExpr::Const(5));
        });
        b.entry(main);
        let (trace, summary) = run_program(&mut b, 0);
        assert_eq!(summary.branches, 6); // depths 5,4,3,2,1,0
        assert_eq!(summary.max_depth, 7); // main + 6 nested rec frames
        let stats = TraceStats::measure(&trace);
        assert_eq!(stats.recursion_roots, 1);
        assert_eq!(stats.method_invocations, 7);
    }

    #[test]
    fn unbounded_recursion_errors() {
        let mut b = ProgramBuilder::new();
        let rec = b.declare("rec");
        b.define(rec, |f| {
            f.call(rec, ArgExpr::Const(1));
        });
        let program = b.build().unwrap();
        let mut trace = ExecutionTrace::new();
        let err = Interpreter::new(&program, 0)
            .with_depth_limit(32)
            .run(&mut trace)
            .unwrap_err();
        assert_eq!(err, InterpError::CallDepthExceeded { limit: 32 });
    }

    #[test]
    fn fuel_halts_cleanly() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.repeat(Trip::Fixed(1000), |l| {
                l.repeat(Trip::Fixed(10), |inner| {
                    inner.branch(TakenDist::Always);
                });
            });
        });
        let program = b.build().unwrap();
        let mut trace = ExecutionTrace::new();
        let summary = Interpreter::new(&program, 0)
            .with_fuel(137)
            .run(&mut trace)
            .unwrap();
        assert!(summary.exhausted);
        assert_eq!(summary.branches, 137);
        // Every enter has a matching exit even though we halted early.
        let enters = trace
            .events()
            .iter()
            .filter(|e| e.kind().is_enter())
            .count();
        assert_eq!(enters * 2, trace.events().len());
    }

    #[test]
    fn alternating_branch_alternates() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.repeat(Trip::Fixed(6), |l| {
                l.branch(TakenDist::Alternating);
            });
        });
        let (trace, _) = run_program(&mut b, 0);
        let bits: Vec<bool> = trace.branches().iter().map(|e| e.taken()).collect();
        assert_eq!(bits, vec![true, false, true, false, true, false]);
    }

    #[test]
    fn periodic_branch_fires_once_per_period() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.repeat(Trip::Fixed(9), |l| {
                l.branch(TakenDist::Periodic(3));
            });
        });
        let (trace, _) = run_program(&mut b, 0);
        let taken = trace.branches().iter().filter(|e| e.taken()).count();
        assert_eq!(taken, 3);
    }

    #[test]
    fn cond_selects_arm_by_taken_bit() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.cond(
                TakenDist::Always,
                |t| {
                    t.branch(TakenDist::Always);
                },
                |e| {
                    e.branch(TakenDist::Never);
                },
            );
            f.cond(
                TakenDist::Never,
                |t| {
                    t.branch(TakenDist::Always);
                },
                |e| {
                    e.branch(TakenDist::Never);
                },
            );
        });
        let (trace, _) = run_program(&mut b, 0);
        // guard, then-arm, guard, else-arm
        assert_eq!(trace.branches().len(), 4);
        let bits: Vec<bool> = trace.branches().iter().map(|e| e.taken()).collect();
        assert_eq!(bits, vec![true, true, false, false]);
    }

    #[test]
    fn arg_trip_uses_argument() {
        let mut b = ProgramBuilder::new();
        let worker = b.declare("worker");
        let main = b.declare("main");
        b.define(worker, |f| {
            f.repeat(Trip::Arg, |l| {
                l.branch(TakenDist::Always);
            });
        });
        b.define(main, |f| {
            f.call(worker, ArgExpr::Const(13));
        });
        b.entry(main);
        let (_, summary) = run_program(&mut b, 0);
        assert_eq!(summary.branches, 13);
    }

    #[test]
    fn half_and_draw_args() {
        let mut b = ProgramBuilder::new();
        let worker = b.declare("worker");
        let main = b.declare("main");
        b.define(worker, |f| {
            f.repeat(Trip::Arg, |l| {
                l.branch(TakenDist::Always);
            });
        });
        b.define(main, |f| {
            f.call(worker, ArgExpr::Half);
            f.call(worker, ArgExpr::Draw(2, 2));
        });
        b.entry(main).entry_arg(10);
        let (_, summary) = run_program(&mut b, 0);
        assert_eq!(summary.branches, 5 + 2);
    }

    #[test]
    fn events_offsets_are_correlated() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.branch(TakenDist::Always);
            f.repeat(Trip::Fixed(2), |l| {
                l.branch(TakenDist::Always);
            });
        });
        let (trace, _) = run_program(&mut b, 0);
        let offsets: Vec<u64> = trace.events().iter().map(|e| e.offset()).collect();
        // enter main @0, loop enter @1, loop exit @3, exit main @3
        assert_eq!(offsets, vec![0, 1, 3, 3]);
    }
}
