//! A small, fast, deterministic random number generator.
//!
//! Experiments must reproduce bit-for-bit across platforms and
//! releases, so the MicroVM pins its own generator (SplitMix64,
//! Steele et al., "Fast splittable pseudorandom number generators")
//! instead of depending on an external crate whose stream might change.

/// A SplitMix64 pseudorandom number generator.
///
/// # Examples
///
/// ```
/// use opd_microvm::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 pseudorandom bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection-free mapping is fine here:
        // the tiny modulo bias is irrelevant for workload generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "inverted range [{lo}, {hi}]");
        lo + self.next_below(hi - lo + 1)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(12345);
        let mut b = SplitMix64::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_first_value() {
        // Reference value of SplitMix64 with seed 0 (from the public
        // domain reference implementation).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn next_range_inclusive() {
        let mut r = SplitMix64::new(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.next_range(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn bool_probabilities_extremes() {
        let mut r = SplitMix64::new(4);
        assert!(!(0..100).any(|_| r.next_bool(0.0)));
        assert!((0..100).all(|_| r.next_bool(1.0)));
    }

    #[test]
    fn bool_probability_roughly_matches() {
        let mut r = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| r.next_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
