//! Structural validation of MicroVM programs.
//!
//! This is the single source of truth for the IR-level checks that
//! both [`ProgramBuilder::build`](crate::ProgramBuilder::build) and
//! the `opd-analyze` lint engine apply: the builder rejects programs
//! that fail them, and the analyzer reports the same defects as
//! `OPD-E005` diagnostics, so the two can never drift apart.

use crate::build::BuildError;
use crate::ir::{ArgExpr, Program, Stmt, TakenDist, Trip};

fn check_dist(dist: TakenDist, errors: &mut Vec<BuildError>) {
    match dist {
        TakenDist::Bernoulli(p) if !(0.0..=1.0).contains(&p) => {
            errors.push(BuildError::BadProbability(p));
        }
        TakenDist::Periodic(0) => errors.push(BuildError::ZeroPeriod),
        _ => {}
    }
}

/// Collects every IR-level defect of one statement (not recursing into
/// nested bodies; [`Program::validate`] drives the recursion).
fn check_stmt(stmt: &Stmt, errors: &mut Vec<BuildError>) {
    match stmt {
        Stmt::Branch(b) => check_dist(b.dist(), errors),
        Stmt::Loop { trip, body, .. } => {
            if let Trip::Uniform(lo, hi) = trip {
                if lo > hi {
                    errors.push(BuildError::InvertedRange(*lo, *hi));
                }
            }
            if body.is_empty() {
                errors.push(BuildError::EmptyLoopBody);
            }
        }
        Stmt::Call { arg, .. } => {
            if let ArgExpr::Draw(lo, hi) = arg {
                if lo > hi {
                    errors.push(BuildError::InvertedRange(*lo, *hi));
                }
            }
        }
        Stmt::If { branch, .. } => check_dist(branch.dist(), errors),
        Stmt::IfArgPositive { .. } => {}
    }
}

impl Program {
    /// Returns every IR-level structural defect, in pre-order walk
    /// order: empty loop bodies, out-of-range branch probabilities,
    /// zero periods, and inverted `Uniform`/`Draw` ranges.
    ///
    /// Programs produced by [`ProgramBuilder`](crate::ProgramBuilder)
    /// always validate cleanly — `build()` runs exactly this check and
    /// refuses to produce a program with defects. The method exists so
    /// external analyses (the `opd-analyze` lint engine) share the
    /// builder's definition of validity.
    #[must_use]
    pub fn validate(&self) -> Vec<BuildError> {
        let mut errors = Vec::new();
        self.walk(|_, stmt| check_stmt(stmt, &mut errors));
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn builder_programs_validate_cleanly() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.repeat(Trip::Uniform(1, 5), |l| {
                l.branch(TakenDist::Bernoulli(0.5));
                l.branch(TakenDist::Periodic(3));
            });
        });
        assert!(b.build().unwrap().validate().is_empty());
    }

    #[test]
    fn all_defects_reported_in_walk_order() {
        // Bypass the builder's rejection by checking statements
        // directly: the builder can never hand us an invalid program.
        let mut errors = Vec::new();
        check_dist(TakenDist::Bernoulli(1.5), &mut errors);
        check_dist(TakenDist::Bernoulli(-0.1), &mut errors);
        check_dist(TakenDist::Bernoulli(f64::NAN), &mut errors);
        check_dist(TakenDist::Periodic(0), &mut errors);
        assert_eq!(errors.len(), 4);
        assert!(matches!(errors[3], BuildError::ZeroPeriod));
    }
}
