//! MicroVM: a deterministic structured-program substrate for
//! phase-detection research.
//!
//! The CGO 2006 paper obtains its profiles by instrumenting Java
//! benchmarks running on Jikes RVM. The framework itself only consumes
//! two correlated streams — conditional-branch profile elements and a
//! call-loop trace — so this crate supplies those streams from a much
//! smaller substrate: a structured-program IR (loops, calls, recursion,
//! conditional branches) executed by a deterministic, seeded
//! interpreter.
//!
//! * [`Program`], [`Stmt`], [`Trip`], [`TakenDist`] — the IR
//! * [`ProgramBuilder`] — a fluent, validated way to construct programs
//! * [`Interpreter`] — executes a program against any
//!   [`opd_trace::TraceSink`]
//! * [`workloads`] — eight synthetic benchmarks mirroring the
//!   control-flow character of the paper's benchmark suite
//!
//! # Examples
//!
//! ```
//! use opd_microvm::{Interpreter, ProgramBuilder, TakenDist, Trip};
//! use opd_trace::ExecutionTrace;
//!
//! let mut b = ProgramBuilder::new();
//! let main = b.declare("main");
//! b.define(main, |f| {
//!     f.repeat(Trip::Fixed(100), |body| {
//!         body.branch(TakenDist::Bernoulli(0.75));
//!     });
//! });
//! let program = b.build()?;
//!
//! let mut trace = ExecutionTrace::new();
//! let summary = Interpreter::new(&program, 42).run(&mut trace)?;
//! assert_eq!(summary.branches, 100);
//! assert_eq!(trace.branches().len(), 100);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod build;
mod dump;
mod interp;
mod ir;
mod parse;
mod rng;
mod validate;
mod walk;
pub mod workloads;

pub use build::{BlockBuilder, BuildError, FuncBuilder, ProgramBuilder};
pub use interp::{InterpError, Interpreter, RunSummary};
pub use ir::{ArgExpr, BranchStmt, FuncId, Function, Program, Stmt, TakenDist, Trip};
pub use parse::{parse_program, ParseError};
pub use rng::SplitMix64;
pub use walk::WalkCtx;
