//! The MicroVM intermediate representation: structured programs made of
//! loops, conditional branches, calls, and argument-guarded recursion.

use core::fmt;

use opd_trace::{LoopId, MethodId};

/// Identifier of a function within a [`Program`].
///
/// A `FuncId` doubles as the [`MethodId`] under which the function's
/// branches and call events are recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub(crate) u32);

impl FuncId {
    /// Returns the function index inside its program.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Returns the method id under which this function is profiled.
    #[must_use]
    pub fn method_id(self) -> MethodId {
        MethodId::new(self.0)
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// How many iterations a loop runs, drawn at loop entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trip {
    /// Exactly `n` iterations.
    Fixed(u32),
    /// Uniformly random in `[lo, hi]` (inclusive).
    Uniform(u32, u32),
    /// As many iterations as the current function argument.
    Arg,
}

impl Trip {
    /// Largest possible iteration count for this distribution, given
    /// the largest possible argument value.
    #[must_use]
    pub fn max_trip(self, max_arg: u32) -> u32 {
        match self {
            Trip::Fixed(n) => n,
            Trip::Uniform(_, hi) => hi,
            Trip::Arg => max_arg,
        }
    }
}

/// The distribution of a conditional branch's taken bit.
///
/// Because a profile element packs the taken bit, two executions of the
/// same static site with different outcomes are *different* profile
/// elements. Distributions therefore control both which elements appear
/// and their relative frequencies — the knob that separates the
/// unweighted and weighted similarity models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TakenDist {
    /// Always taken.
    Always,
    /// Never taken.
    Never,
    /// Taken with probability `p` on each execution.
    Bernoulli(f64),
    /// Strictly alternating taken / not-taken.
    Alternating,
    /// Taken exactly once every `period` executions.
    Periodic(u32),
}

/// The argument passed to a callee, evaluated in the caller's frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgExpr {
    /// A constant value.
    Const(u32),
    /// The caller's argument minus one (saturating); the idiom for
    /// bounded recursion.
    Dec,
    /// Half the caller's argument.
    Half,
    /// A fresh uniform draw in `[lo, hi]`.
    Draw(u32, u32),
}

/// A conditional-branch statement: the unit that emits one profile
/// element per execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchStmt {
    /// Bytecode offset of the site within its function; assigned by the
    /// builder, unique per function.
    pub(crate) offset: u32,
    /// Dense index into the interpreter's per-site state table, used by
    /// stateful distributions (alternating / periodic).
    pub(crate) state_slot: u32,
    /// Taken-bit distribution.
    pub(crate) dist: TakenDist,
}

impl BranchStmt {
    /// Returns the bytecode offset of this site within its function.
    #[must_use]
    pub fn offset(&self) -> u32 {
        self.offset
    }

    /// Returns the taken-bit distribution.
    #[must_use]
    pub fn dist(&self) -> TakenDist {
        self.dist
    }
}

/// One statement of a MicroVM function body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Execute a conditional branch, emitting one profile element.
    Branch(BranchStmt),
    /// Run `body` for a number of iterations drawn from `trip`,
    /// emitting loop enter/exit events around the whole execution.
    Loop {
        /// Static loop identifier (unique per program).
        id: LoopId,
        /// Iteration-count distribution.
        trip: Trip,
        /// Statements run once per iteration.
        body: Vec<Stmt>,
    },
    /// Invoke `callee` with the argument `arg`, emitting method
    /// enter/exit events.
    Call {
        /// The invoked function.
        callee: FuncId,
        /// Argument passed to the callee.
        arg: ArgExpr,
    },
    /// Execute the branch, then run `then_body` if taken, otherwise
    /// `else_body`.
    If {
        /// The guarding branch (emits its element before either arm).
        branch: BranchStmt,
        /// Statements for the taken arm.
        then_body: Vec<Stmt>,
        /// Statements for the not-taken arm.
        else_body: Vec<Stmt>,
    },
    /// Run `body` only when the current function argument is positive;
    /// the guard for bounded recursion.
    IfArgPositive {
        /// Statements guarded by `arg > 0`.
        body: Vec<Stmt>,
    },
}

/// A MicroVM function: a name (for diagnostics) and a body.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub(crate) name: String,
    pub(crate) body: Vec<Stmt>,
}

impl Function {
    /// Returns the function's diagnostic name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the function body.
    #[must_use]
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }
}

/// A complete MicroVM program: functions plus the entry point.
///
/// Programs are constructed (and validated) by
/// [`ProgramBuilder`](crate::ProgramBuilder).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub(crate) functions: Vec<Function>,
    pub(crate) entry: FuncId,
    pub(crate) entry_arg: u32,
    pub(crate) loop_count: u32,
    pub(crate) state_slots: u32,
}

impl Program {
    /// Returns all functions, indexable by [`FuncId::index`].
    #[must_use]
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Returns the function with the given id.
    #[must_use]
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Returns the id of the function at `index`, the inverse of
    /// [`FuncId::index`] — how external analyses mint ids for functions
    /// they enumerate positionally.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn func_id(&self, index: usize) -> FuncId {
        assert!(index < self.functions.len(), "no function at index {index}");
        FuncId(index as u32)
    }

    /// Returns the entry function.
    #[must_use]
    pub fn entry(&self) -> FuncId {
        self.entry
    }

    /// Returns the argument the entry function is invoked with.
    #[must_use]
    pub fn entry_arg(&self) -> u32 {
        self.entry_arg
    }

    /// Returns the number of static loops in the program.
    #[must_use]
    pub fn loop_count(&self) -> u32 {
        self.loop_count
    }

    /// Returns the number of stateful branch sites.
    #[must_use]
    pub fn state_slot_count(&self) -> u32 {
        self.state_slots
    }

    /// Returns the total number of static branch sites.
    #[must_use]
    pub fn site_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Branch(_) => 1,
                    Stmt::Loop { body, .. } | Stmt::IfArgPositive { body } => count(body),
                    Stmt::Call { .. } => 0,
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => 1 + count(then_body) + count(else_body),
                })
                .sum()
        }
        self.functions.iter().map(|f| count(&f.body)).sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program: {} functions, {} loops, {} branch sites, entry {} (arg {})",
            self.functions.len(),
            self.loop_count,
            self.site_count(),
            self.entry,
            self.entry_arg
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_max() {
        assert_eq!(Trip::Fixed(5).max_trip(100), 5);
        assert_eq!(Trip::Uniform(2, 9).max_trip(100), 9);
        assert_eq!(Trip::Arg.max_trip(100), 100);
    }

    #[test]
    fn func_id_maps_to_method_id() {
        assert_eq!(FuncId(3).method_id(), MethodId::new(3));
        assert_eq!(format!("{}", FuncId(3)), "f3");
    }
}
