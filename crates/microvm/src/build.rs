//! Fluent, validated construction of MicroVM programs.

use core::fmt;

use opd_trace::LoopId;

use crate::ir::{ArgExpr, BranchStmt, FuncId, Function, Program, Stmt, TakenDist, Trip};

/// Error produced when a program fails validation at build time.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BuildError {
    /// No functions were declared.
    Empty,
    /// A declared function was never defined.
    UndefinedFunction(String),
    /// A function was defined twice.
    Redefined(String),
    /// A `Bernoulli` probability was not a finite number in `[0, 1]`.
    BadProbability(f64),
    /// A `Uniform` trip or `Draw` argument range was inverted.
    InvertedRange(u32, u32),
    /// A `Periodic` distribution had period zero.
    ZeroPeriod,
    /// A loop body was empty (it would emit no profile elements).
    EmptyLoopBody,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Empty => f.write_str("program has no functions"),
            BuildError::UndefinedFunction(name) => {
                write!(f, "function `{name}` declared but never defined")
            }
            BuildError::Redefined(name) => write!(f, "function `{name}` defined twice"),
            BuildError::BadProbability(p) => write!(f, "branch probability {p} not in [0, 1]"),
            BuildError::InvertedRange(lo, hi) => write!(f, "inverted range [{lo}, {hi}]"),
            BuildError::ZeroPeriod => f.write_str("periodic branch needs period >= 1"),
            BuildError::EmptyLoopBody => f.write_str("loop body is empty"),
        }
    }
}

impl std::error::Error for BuildError {}

#[derive(Debug, Default)]
struct Shared {
    loop_counter: u32,
    state_slots: u32,
    errors: Vec<BuildError>,
}

/// Builder for a [`Program`].
///
/// Declare all functions first (so they can call each other), then
/// define each body, then [`build`](ProgramBuilder::build).
///
/// # Examples
///
/// ```
/// use opd_microvm::{ArgExpr, ProgramBuilder, TakenDist, Trip};
///
/// let mut b = ProgramBuilder::new();
/// let helper = b.declare("helper");
/// let main = b.declare("main");
/// b.define(helper, |f| {
///     f.branch(TakenDist::Always);
/// });
/// b.define(main, |f| {
///     f.repeat(Trip::Fixed(3), |body| {
///         body.call(helper, ArgExpr::Const(0));
///     });
/// });
/// let program = b.entry(main).build()?;
/// assert_eq!(program.functions().len(), 2);
/// # Ok::<(), opd_microvm::BuildError>(())
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    names: Vec<String>,
    bodies: Vec<Option<Vec<Stmt>>>,
    site_counters: Vec<u32>,
    entry: Option<FuncId>,
    entry_arg: u32,
    shared: Shared,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        ProgramBuilder {
            names: Vec::new(),
            bodies: Vec::new(),
            site_counters: Vec::new(),
            entry: None,
            entry_arg: 0,
            shared: Shared::default(),
        }
    }

    /// Declares a function, returning its id. Bodies are supplied later
    /// with [`define`](ProgramBuilder::define).
    pub fn declare(&mut self, name: &str) -> FuncId {
        let id = FuncId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.bodies.push(None);
        self.site_counters.push(0);
        id
    }

    /// Defines the body of a previously declared function.
    ///
    /// Definition errors (empty loops, bad probabilities, …) are
    /// collected and reported by [`build`](ProgramBuilder::build).
    pub fn define(&mut self, id: FuncId, f: impl FnOnce(&mut FuncBuilder<'_>)) -> &mut Self {
        if self.bodies[id.0 as usize].is_some() {
            self.shared
                .errors
                .push(BuildError::Redefined(self.names[id.0 as usize].clone()));
            return self;
        }
        let mut block = BlockBuilder {
            shared: &mut self.shared,
            site_counter: &mut self.site_counters[id.0 as usize],
            stmts: Vec::new(),
        };
        f(&mut block);
        let stmts = block.stmts;
        self.bodies[id.0 as usize] = Some(stmts);
        self
    }

    /// Selects the entry function (defaults to the last declared one).
    pub fn entry(&mut self, id: FuncId) -> &mut Self {
        self.entry = Some(id);
        self
    }

    /// Sets the argument the entry function is invoked with
    /// (defaults to 0).
    pub fn entry_arg(&mut self, arg: u32) -> &mut Self {
        self.entry_arg = arg;
        self
    }

    /// Validates and produces the program.
    ///
    /// Declaration-level checks (empty program, undefined or doubly
    /// defined functions) are the builder's own; every IR-level check
    /// (empty loop bodies, malformed distributions, inverted ranges)
    /// is delegated to [`Program::validate`], the same routine the
    /// `opd-analyze` lint engine runs, so the two cannot drift.
    ///
    /// # Errors
    ///
    /// Returns the first [`BuildError`] encountered: undeclared or
    /// doubly defined functions, empty loop bodies, malformed
    /// distributions, or an empty program.
    pub fn build(&mut self) -> Result<Program, BuildError> {
        if let Some(err) = self.shared.errors.first() {
            return Err(err.clone());
        }
        if self.names.is_empty() {
            return Err(BuildError::Empty);
        }
        let mut functions = Vec::with_capacity(self.names.len());
        for (name, body) in self.names.iter().zip(&self.bodies) {
            match body {
                Some(stmts) => functions.push(Function {
                    name: name.clone(),
                    body: stmts.clone(),
                }),
                None => return Err(BuildError::UndefinedFunction(name.clone())),
            }
        }
        let entry = self.entry.unwrap_or(FuncId(self.names.len() as u32 - 1));
        let program = Program {
            functions,
            entry,
            entry_arg: self.entry_arg,
            loop_count: self.shared.loop_counter,
            state_slots: self.shared.state_slots,
        };
        if let Some(err) = program.validate().into_iter().next() {
            return Err(err);
        }
        Ok(program)
    }
}

/// Builds one block of statements (a function body, loop body, or
/// conditional arm).
#[derive(Debug)]
pub struct BlockBuilder<'a> {
    shared: &'a mut Shared,
    site_counter: &'a mut u32,
    stmts: Vec<Stmt>,
}

/// A function body under construction; alias of [`BlockBuilder`].
pub type FuncBuilder<'a> = BlockBuilder<'a>;

impl BlockBuilder<'_> {
    fn make_branch(&mut self, dist: TakenDist) -> BranchStmt {
        // Distribution validity is checked by `Program::validate` at
        // build time; here we only assign offsets and state slots.
        let offset = *self.site_counter;
        *self.site_counter += 1;
        let state_slot = match dist {
            TakenDist::Alternating | TakenDist::Periodic(_) => {
                let slot = self.shared.state_slots;
                self.shared.state_slots += 1;
                slot
            }
            _ => 0,
        };
        BranchStmt {
            offset,
            state_slot,
            dist,
        }
    }

    fn child(&mut self, f: impl FnOnce(&mut BlockBuilder<'_>)) -> Vec<Stmt> {
        let mut block = BlockBuilder {
            shared: self.shared,
            site_counter: self.site_counter,
            stmts: Vec::new(),
        };
        f(&mut block);
        block.stmts
    }

    /// Appends a conditional branch with the given taken distribution.
    pub fn branch(&mut self, dist: TakenDist) -> &mut Self {
        let b = self.make_branch(dist);
        self.stmts.push(Stmt::Branch(b));
        self
    }

    /// Appends `n` distinct branch sites sharing one distribution —
    /// convenient for giving a loop body a working set of a given size.
    pub fn branches(&mut self, n: u32, dist: TakenDist) -> &mut Self {
        for _ in 0..n {
            self.branch(dist);
        }
        self
    }

    /// Appends a loop running `trip` iterations of `body`.
    pub fn repeat(&mut self, trip: Trip, body: impl FnOnce(&mut BlockBuilder<'_>)) -> &mut Self {
        let id = LoopId::new(self.shared.loop_counter);
        self.shared.loop_counter += 1;
        let body = self.child(body);
        self.stmts.push(Stmt::Loop { id, trip, body });
        self
    }

    /// Appends a call to `callee` with argument `arg`.
    pub fn call(&mut self, callee: FuncId, arg: ArgExpr) -> &mut Self {
        self.stmts.push(Stmt::Call { callee, arg });
        self
    }

    /// Appends an if/else guarded by a fresh branch site.
    pub fn cond(
        &mut self,
        dist: TakenDist,
        then_f: impl FnOnce(&mut BlockBuilder<'_>),
        else_f: impl FnOnce(&mut BlockBuilder<'_>),
    ) -> &mut Self {
        let branch = self.make_branch(dist);
        let then_body = self.child(then_f);
        let else_body = self.child(else_f);
        self.stmts.push(Stmt::If {
            branch,
            then_body,
            else_body,
        });
        self
    }

    /// Appends a block that runs only while the function argument is
    /// positive — the guard used to bound recursion.
    pub fn if_arg_positive(&mut self, body: impl FnOnce(&mut BlockBuilder<'_>)) -> &mut Self {
        let body = self.child(body);
        self.stmts.push(Stmt::IfArgPositive { body });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_minimal_program() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.branch(TakenDist::Always);
        });
        let p = b.build().unwrap();
        assert_eq!(p.functions().len(), 1);
        assert_eq!(p.entry(), main);
        assert_eq!(p.site_count(), 1);
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(ProgramBuilder::new().build(), Err(BuildError::Empty));
    }

    #[test]
    fn undefined_function_rejected() {
        let mut b = ProgramBuilder::new();
        let _main = b.declare("main");
        assert_eq!(b.build(), Err(BuildError::UndefinedFunction("main".into())));
    }

    #[test]
    fn double_definition_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.branch(TakenDist::Always);
        });
        b.define(main, |f| {
            f.branch(TakenDist::Never);
        });
        assert_eq!(b.build(), Err(BuildError::Redefined("main".into())));
    }

    #[test]
    fn bad_probability_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.branch(TakenDist::Bernoulli(1.5));
        });
        assert_eq!(b.build(), Err(BuildError::BadProbability(1.5)));
    }

    #[test]
    fn empty_loop_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.repeat(Trip::Fixed(3), |_| {});
        });
        assert_eq!(b.build(), Err(BuildError::EmptyLoopBody));
    }

    #[test]
    fn inverted_trip_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.repeat(Trip::Uniform(9, 2), |body| {
                body.branch(TakenDist::Always);
            });
        });
        assert_eq!(b.build(), Err(BuildError::InvertedRange(9, 2)));
    }

    #[test]
    fn zero_period_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.branch(TakenDist::Periodic(0));
        });
        assert_eq!(b.build(), Err(BuildError::ZeroPeriod));
    }

    #[test]
    fn sites_numbered_per_function() {
        let mut b = ProgramBuilder::new();
        let a = b.declare("a");
        let c = b.declare("c");
        b.define(a, |f| {
            f.branch(TakenDist::Always).branch(TakenDist::Never);
        });
        b.define(c, |f| {
            f.branch(TakenDist::Always);
        });
        let p = b.entry(c).build().unwrap();
        match (&p.function(a).body()[0], &p.function(a).body()[1]) {
            (Stmt::Branch(x), Stmt::Branch(y)) => {
                assert_eq!(x.offset(), 0);
                assert_eq!(y.offset(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.function(c).body()[0] {
            Stmt::Branch(x) => assert_eq!(x.offset(), 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn state_slots_assigned_only_to_stateful_dists() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.branch(TakenDist::Always)
                .branch(TakenDist::Alternating)
                .branch(TakenDist::Periodic(4));
        });
        let p = b.build().unwrap();
        assert_eq!(p.state_slot_count(), 2);
    }

    #[test]
    fn nested_structure_counts_sites() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.repeat(Trip::Fixed(2), |l1| {
                l1.branch(TakenDist::Always);
                l1.cond(
                    TakenDist::Bernoulli(0.5),
                    |t| {
                        t.branch(TakenDist::Never);
                    },
                    |e| {
                        e.branch(TakenDist::Always);
                    },
                );
                l1.if_arg_positive(|r| {
                    r.branch(TakenDist::Always);
                });
            });
        });
        let p = b.build().unwrap();
        // 1 loop branch + 1 guard + 2 arms + 1 guarded = 5 sites
        assert_eq!(p.site_count(), 5);
        assert_eq!(p.loop_count(), 1);
    }
}
