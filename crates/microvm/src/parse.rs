//! Parsing the [`Program::dump`](crate::Program::dump) listing format
//! back into a [`Program`] — the inverse of `dump`, so programs can be
//! designed (or deliberately broken) in text files and fed to tools
//! like `opd lint`.
//!
//! The grammar is exactly what `dump` emits: one statement per line,
//! `{`/`}` blocks for loops and conditionals, `// ...` comments. The
//! header comment's `entry fN (arg A)` is honoured when present.
//!
//! ```text
//! fn helper (f0) {
//!   branch @0 p=0.5
//!   if arg > 0 {
//!     call f0(arg-1)
//!   }
//! }
//! fn main (f1) // entry {
//!   loop L0 x3 {
//!     branch @0 always
//!   }
//!   call f0(4)
//! }
//! ```

use core::fmt;

use crate::build::{BlockBuilder, BuildError, ProgramBuilder};
use crate::ir::{ArgExpr, FuncId, Program, TakenDist, Trip};

/// Error produced when a program listing cannot be parsed or the
/// parsed program fails builder validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseError {
    /// A line did not match any statement form.
    Syntax {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The listing parsed, but the program failed validation.
    Build(BuildError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Build(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<BuildError> for ParseError {
    fn from(e: BuildError) -> Self {
        ParseError::Build(e)
    }
}

/// Statement forms as parsed, before builder emission.
#[derive(Debug)]
enum PStmt {
    Branch(TakenDist),
    Loop(Trip, Vec<PStmt>),
    Call(usize, ArgExpr),
    If(TakenDist, Vec<PStmt>, Vec<PStmt>),
    IfArgPositive(Vec<PStmt>),
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

fn syntax(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Syntax {
        line,
        message: message.into(),
    }
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        let lines = src
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with("//"))
            .collect();
        Parser { lines, pos: 0 }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let item = self.peek();
        self.pos += 1;
        item
    }

    /// Parses statements until a block terminator (`}` or `} else {`),
    /// which is consumed. Returns the statements and whether the
    /// terminator opened an `else` block.
    fn block(&mut self, open_line: usize) -> Result<(Vec<PStmt>, bool), ParseError> {
        let mut stmts = Vec::new();
        loop {
            let Some((line, text)) = self.next() else {
                return Err(syntax(open_line, "unclosed `{` block"));
            };
            match text {
                "}" => return Ok((stmts, false)),
                "} else {" => return Ok((stmts, true)),
                _ => stmts.push(self.stmt(line, text)?),
            }
        }
    }

    fn stmt(&mut self, line: usize, text: &str) -> Result<PStmt, ParseError> {
        if let Some(rest) = text.strip_prefix("branch @") {
            let (_, dist) = rest
                .split_once(' ')
                .ok_or_else(|| syntax(line, "expected `branch @N <dist>`"))?;
            return Ok(PStmt::Branch(parse_dist(line, dist)?));
        }
        if let Some(rest) = text.strip_prefix("loop L") {
            let rest = rest
                .strip_suffix(" {")
                .ok_or_else(|| syntax(line, "expected `loop LN <trip> {`"))?;
            let (_, trip) = rest
                .split_once(' ')
                .ok_or_else(|| syntax(line, "expected `loop LN <trip> {`"))?;
            let trip = parse_trip(line, trip)?;
            let (body, has_else) = self.block(line)?;
            if has_else {
                return Err(syntax(line, "`} else {` closes an `if`, not a loop"));
            }
            return Ok(PStmt::Loop(trip, body));
        }
        if let Some(rest) = text.strip_prefix("call f") {
            let rest = rest
                .strip_suffix(')')
                .ok_or_else(|| syntax(line, "expected `call fN(<arg>)`"))?;
            let (index, arg) = rest
                .split_once('(')
                .ok_or_else(|| syntax(line, "expected `call fN(<arg>)`"))?;
            let index: usize = index
                .parse()
                .map_err(|_| syntax(line, format!("bad function index `{index}`")))?;
            return Ok(PStmt::Call(index, parse_arg(line, arg)?));
        }
        if text == "if arg > 0 {" {
            let (body, has_else) = self.block(line)?;
            if has_else {
                return Err(syntax(line, "`if arg > 0` takes no `else`"));
            }
            return Ok(PStmt::IfArgPositive(body));
        }
        if let Some(rest) = text.strip_prefix("if branch @") {
            let rest = rest
                .strip_suffix(" {")
                .ok_or_else(|| syntax(line, "expected `if branch @N <dist> {`"))?;
            let (_, dist) = rest
                .split_once(' ')
                .ok_or_else(|| syntax(line, "expected `if branch @N <dist> {`"))?;
            let dist = parse_dist(line, dist)?;
            let (then_body, has_else) = self.block(line)?;
            let else_body = if has_else {
                let (body, nested_else) = self.block(line)?;
                if nested_else {
                    return Err(syntax(line, "duplicate `} else {`"));
                }
                body
            } else {
                Vec::new()
            };
            return Ok(PStmt::If(dist, then_body, else_body));
        }
        Err(syntax(line, format!("unrecognized statement `{text}`")))
    }
}

fn parse_dist(line: usize, text: &str) -> Result<TakenDist, ParseError> {
    match text {
        "always" => return Ok(TakenDist::Always),
        "never" => return Ok(TakenDist::Never),
        "alternating" => return Ok(TakenDist::Alternating),
        _ => {}
    }
    if let Some(p) = text.strip_prefix("p=") {
        let p: f64 = p
            .parse()
            .map_err(|_| syntax(line, format!("bad probability `{p}`")))?;
        // Validate here rather than deferring to the builder, so the
        // diagnostic carries the offending line.
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(syntax(line, format!("probability {p} is outside [0, 1]")));
        }
        return Ok(TakenDist::Bernoulli(p));
    }
    if let Some(n) = text.strip_prefix("period=") {
        let n = n
            .parse()
            .map_err(|_| syntax(line, format!("bad period `{n}`")))?;
        return Ok(TakenDist::Periodic(n));
    }
    Err(syntax(line, format!("unrecognized distribution `{text}`")))
}

fn parse_range(line: usize, text: &str) -> Result<(u32, u32), ParseError> {
    let (lo, hi) = text
        .split_once("..=")
        .ok_or_else(|| syntax(line, format!("bad range `{text}`")))?;
    let lo = lo
        .parse()
        .map_err(|_| syntax(line, format!("bad range bound `{lo}`")))?;
    let hi = hi
        .parse()
        .map_err(|_| syntax(line, format!("bad range bound `{hi}`")))?;
    Ok((lo, hi))
}

fn parse_trip(line: usize, text: &str) -> Result<Trip, ParseError> {
    if text == "x(arg)" {
        return Ok(Trip::Arg);
    }
    if let Some(range) = text.strip_prefix("x[").and_then(|r| r.strip_suffix(']')) {
        let (lo, hi) = parse_range(line, range)?;
        return Ok(Trip::Uniform(lo, hi));
    }
    if let Some(n) = text.strip_prefix('x') {
        if let Ok(n) = n.parse() {
            return Ok(Trip::Fixed(n));
        }
    }
    Err(syntax(line, format!("unrecognized trip `{text}`")))
}

fn parse_arg(line: usize, text: &str) -> Result<ArgExpr, ParseError> {
    match text {
        "arg-1" => return Ok(ArgExpr::Dec),
        "arg/2" => return Ok(ArgExpr::Half),
        _ => {}
    }
    if let Some(range) = text.strip_prefix("draw[").and_then(|r| r.strip_suffix(']')) {
        let (lo, hi) = parse_range(line, range)?;
        return Ok(ArgExpr::Draw(lo, hi));
    }
    if let Ok(v) = text.parse() {
        return Ok(ArgExpr::Const(v));
    }
    Err(syntax(line, format!("unrecognized argument `{text}`")))
}

fn emit(stmts: &[PStmt], b: &mut BlockBuilder<'_>, funcs: &[FuncId]) {
    for stmt in stmts {
        match stmt {
            PStmt::Branch(dist) => {
                b.branch(*dist);
            }
            PStmt::Loop(trip, body) => {
                b.repeat(*trip, |l| emit(body, l, funcs));
            }
            PStmt::Call(index, arg) => {
                b.call(funcs[*index], *arg);
            }
            PStmt::If(dist, then_body, else_body) => {
                b.cond(
                    *dist,
                    |t| emit(then_body, t, funcs),
                    |e| emit(else_body, e, funcs),
                );
            }
            PStmt::IfArgPositive(body) => {
                b.if_arg_positive(|g| emit(body, g, funcs));
            }
        }
    }
}

/// Parses a header comment's `entry fN (arg A)` tail, as emitted by
/// the [`Program`] `Display` impl inside `dump` output.
fn parse_header_entry(src: &str) -> Option<u32> {
    let line = src.lines().map(str::trim).find(|l| l.starts_with("//"))?;
    let arg = line.rsplit_once("(arg ")?.1.strip_suffix(')')?;
    arg.parse().ok()
}

/// Parses a program listing in the [`Program::dump`](Program::dump)
/// format.
///
/// # Errors
///
/// Returns [`ParseError::Syntax`] for malformed listings and
/// [`ParseError::Build`] when the parsed program fails the same
/// validation [`ProgramBuilder::build`] applies.
///
/// # Examples
///
/// ```
/// use opd_microvm::{parse_program, ProgramBuilder, TakenDist, Trip};
///
/// let mut b = ProgramBuilder::new();
/// let main = b.declare("main");
/// b.define(main, |f| {
///     f.repeat(Trip::Fixed(3), |l| {
///         l.branch(TakenDist::Bernoulli(0.25));
///     });
/// });
/// let program = b.build()?;
/// let reparsed = parse_program(&program.dump())?;
/// assert_eq!(reparsed, program);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    struct Header {
        name: String,
        entry: bool,
        body_start_line: usize,
    }

    // First pass: find every `fn` header so call sites can reference
    // functions defined later.
    let mut headers: Vec<Header> = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line = i + 1;
        let text = raw.trim();
        let Some(rest) = text.strip_prefix("fn ") else {
            continue;
        };
        let rest = rest
            .strip_suffix('{')
            .ok_or_else(|| syntax(line, "expected `fn NAME (fN) {`"))?
            .trim_end();
        let (rest, entry) = match rest.strip_suffix("// entry") {
            Some(r) => (r.trim_end(), true),
            None => (rest, false),
        };
        let (name, id) = rest
            .rsplit_once(" (f")
            .ok_or_else(|| syntax(line, "expected `fn NAME (fN) {`"))?;
        let id = id
            .strip_suffix(')')
            .ok_or_else(|| syntax(line, "expected `fn NAME (fN) {`"))?;
        let index: usize = id
            .parse()
            .map_err(|_| syntax(line, format!("bad function index `{id}`")))?;
        if index != headers.len() {
            return Err(syntax(
                line,
                format!(
                    "function index f{index} out of order (expected f{})",
                    headers.len()
                ),
            ));
        }
        let name = name.trim();
        if headers.iter().any(|h| h.name == name) {
            return Err(syntax(line, format!("duplicate function name `{name}`")));
        }
        headers.push(Header {
            name: name.to_owned(),
            entry,
            body_start_line: line,
        });
    }
    if headers.is_empty() {
        return Err(ParseError::Build(BuildError::Empty));
    }

    let mut builder = ProgramBuilder::new();
    let funcs: Vec<FuncId> = headers.iter().map(|h| builder.declare(&h.name)).collect();

    // Second pass: parse each body between its header and closing `}`.
    let mut parser = Parser::new(src);
    let mut bodies: Vec<Vec<PStmt>> = Vec::with_capacity(headers.len());
    for header in &headers {
        // Advance to this header (non-header lines outside bodies are
        // rejected by the statement parser below).
        let Some((line, text)) = parser.next() else {
            return Err(syntax(header.body_start_line, "missing function body"));
        };
        if !text.starts_with("fn ") {
            return Err(syntax(line, format!("expected `fn`, found `{text}`")));
        }
        let (body, has_else) = parser.block(line)?;
        if has_else {
            return Err(syntax(line, "`} else {` outside an `if`"));
        }
        bodies.push(body);
    }
    if let Some((line, text)) = parser.peek() {
        return Err(syntax(line, format!("trailing input `{text}`")));
    }

    for (index, body) in bodies.iter().enumerate() {
        builder.define(funcs[index], |f| emit(body, f, &funcs));
    }
    let entry = headers.iter().position(|h| h.entry);
    if let Some(index) = entry {
        builder.entry(funcs[index]);
    }
    if let Some(arg) = parse_header_entry(src) {
        builder.entry_arg(arg);
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Workload;

    #[test]
    fn round_trips_every_workload() {
        for w in Workload::ALL {
            let program = w.program(1);
            let reparsed = parse_program(&program.dump()).unwrap_or_else(|e| panic!("{w}: {e}"));
            assert_eq!(reparsed, program, "{w}");
        }
    }

    #[test]
    fn round_trip_preserves_entry_arg() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.repeat(Trip::Arg, |l| {
                l.branch(TakenDist::Always);
            });
        });
        let program = b.entry(main).entry_arg(17).build().unwrap();
        let reparsed = parse_program(&program.dump()).unwrap();
        assert_eq!(reparsed.entry_arg(), 17);
        assert_eq!(reparsed, program);
    }

    #[test]
    fn hand_written_listing_parses() {
        let src = "
fn helper (f0) {
  branch @0 p=0.5
  if arg > 0 {
    call f0(arg-1)
  }
}
fn main (f1) // entry {
  loop L0 x[2..=5] {
    if branch @0 alternating {
      branch @1 period=4
    } else {
      call f0(draw[1..=3])
    }
  }
  call f0(arg/2)
}
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.functions().len(), 2);
        assert_eq!(p.entry().index(), 1);
        assert_eq!(p.loop_count(), 1);
        assert_eq!(p.site_count(), 3);
    }

    #[test]
    fn invalid_programs_surface_build_errors() {
        // Defects the parser cannot see line-by-line still surface as
        // build errors (here: a loop body emitting nothing).
        let src = "
fn main (f0) // entry {
  loop L0 x3 {
    loop L1 x2 {
      branch @0 period=0
    }
  }
}
";
        assert_eq!(
            parse_program(src),
            Err(ParseError::Build(BuildError::ZeroPeriod))
        );
    }

    #[test]
    fn out_of_range_probability_is_a_syntax_error_with_line() {
        let base = "\nfn main (f0) // entry {\n  branch @0 p=0.5\n  branch @1 p=0.5\n  \
                    branch @2 p=0.5\n  branch @3 p=0.5\n}\n";
        for (p, line) in [("1.5", 3), ("-0.25", 4), ("inf", 5), ("NaN", 6)] {
            let src = base.replacen(
                &format!("branch @{} p=0.5", line - 3),
                &format!("branch @{} p={p}", line - 3),
                1,
            );
            match parse_program(&src) {
                Err(ParseError::Syntax { line: at, message }) => {
                    assert_eq!(at, line, "p={p}");
                    assert!(message.contains("outside [0, 1]"), "p={p}: {message}");
                }
                other => panic!("p={p}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_function_names_are_rejected_with_line() {
        let src = "
fn worker (f0) {
  branch @0 always
}
fn worker (f1) // entry {
  branch @0 always
  call f0(1)
}
";
        match parse_program(src) {
            Err(ParseError::Syntax { line, message }) => {
                assert_eq!(line, 5);
                assert!(
                    message.contains("duplicate function name `worker`"),
                    "{message}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_dump_lines_are_rejected_with_line_not_panic() {
        // Each case: (listing, expected 1-based line of the error).
        let cases: [(&str, usize); 6] = [
            ("fn main (f0) {\n  branch @0\n}\n", 2),
            ("fn main (f0) {\n  branch @0 p=abc\n}\n", 2),
            (
                "fn main (f0) {\n  loop L0 x {\n    branch @0 always\n  }\n}\n",
                2,
            ),
            ("fn main (f0) {\n  call f0(\n}\n", 2),
            ("fn main (f0) {\n  branch @0 always\n}\nstray text\n", 4),
            ("fn main (f9) {\n  branch @0 always\n}\n", 1),
        ];
        for (src, expected) in cases {
            match parse_program(src) {
                Err(ParseError::Syntax { line, .. }) => {
                    assert_eq!(line, expected, "listing: {src:?}");
                }
                other => panic!("listing {src:?}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let src = "
fn main (f0) // entry {
  wibble
}
";
        match parse_program(src) {
            Err(ParseError::Syntax { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("wibble"));
                assert!(!syntax(line, message).to_string().is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unclosed_block_rejected() {
        let src = "fn main (f0) {\n  loop L0 x2 {\n    branch @0 always\n";
        assert!(matches!(parse_program(src), Err(ParseError::Syntax { .. })));
    }

    #[test]
    fn empty_source_rejected() {
        assert_eq!(
            parse_program("// nothing here\n"),
            Err(ParseError::Build(BuildError::Empty))
        );
    }
}
