//! Human-readable dumps of MicroVM programs.

use core::fmt::Write as _;

use crate::ir::{ArgExpr, Program, Stmt, TakenDist, Trip};

impl Program {
    /// Renders the whole program as an indented IR listing — the
    /// MicroVM equivalent of a compiler's `-emit-ir` flag, useful when
    /// designing workloads.
    ///
    /// # Examples
    ///
    /// ```
    /// use opd_microvm::{ProgramBuilder, TakenDist, Trip};
    ///
    /// let mut b = ProgramBuilder::new();
    /// let main = b.declare("main");
    /// b.define(main, |f| {
    ///     f.repeat(Trip::Fixed(3), |l| {
    ///         l.branch(TakenDist::Always);
    ///     });
    /// });
    /// let dump = b.build()?.dump();
    /// assert!(dump.contains("fn main"));
    /// assert!(dump.contains("loop L0 x3"));
    /// # Ok::<(), opd_microvm::BuildError>(())
    /// ```
    #[must_use]
    pub fn dump(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "// {self}");
        for (i, func) in self.functions.iter().enumerate() {
            let marker = if self.entry.index() as usize == i {
                " // entry"
            } else {
                ""
            };
            let _ = writeln!(out, "fn {} (f{i}){marker} {{", func.name());
            dump_block(&mut out, func.body(), 1);
            let _ = writeln!(out, "}}");
        }
        out
    }
}

fn dump_block(out: &mut String, stmts: &[Stmt], depth: usize) {
    let pad = "  ".repeat(depth);
    for stmt in stmts {
        match stmt {
            Stmt::Branch(b) => {
                let _ = writeln!(out, "{pad}branch @{} {}", b.offset(), dist(b.dist()));
            }
            Stmt::Loop { id, trip, body } => {
                let _ = writeln!(out, "{pad}loop {id} {} {{", trip_str(*trip));
                dump_block(out, body, depth + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::Call { callee, arg } => {
                let _ = writeln!(out, "{pad}call {callee}({})", arg_str(*arg));
            }
            Stmt::If {
                branch,
                then_body,
                else_body,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}if branch @{} {} {{",
                    branch.offset(),
                    dist(branch.dist())
                );
                dump_block(out, then_body, depth + 1);
                if !else_body.is_empty() {
                    let _ = writeln!(out, "{pad}}} else {{");
                    dump_block(out, else_body, depth + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::IfArgPositive { body } => {
                let _ = writeln!(out, "{pad}if arg > 0 {{");
                dump_block(out, body, depth + 1);
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
}

fn trip_str(trip: Trip) -> String {
    match trip {
        Trip::Fixed(n) => format!("x{n}"),
        Trip::Uniform(lo, hi) => format!("x[{lo}..={hi}]"),
        Trip::Arg => "x(arg)".to_owned(),
    }
}

fn dist(d: TakenDist) -> String {
    match d {
        TakenDist::Always => "always".to_owned(),
        TakenDist::Never => "never".to_owned(),
        TakenDist::Bernoulli(p) => format!("p={p}"),
        TakenDist::Alternating => "alternating".to_owned(),
        TakenDist::Periodic(n) => format!("period={n}"),
    }
}

fn arg_str(a: ArgExpr) -> String {
    match a {
        ArgExpr::Const(v) => v.to_string(),
        ArgExpr::Dec => "arg-1".to_owned(),
        ArgExpr::Half => "arg/2".to_owned(),
        ArgExpr::Draw(lo, hi) => format!("draw[{lo}..={hi}]"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn dump_covers_all_statement_kinds() {
        let mut b = ProgramBuilder::new();
        let helper = b.declare("helper");
        let main = b.declare("main");
        b.define(helper, |f| {
            f.branch(TakenDist::Periodic(3));
            f.if_arg_positive(|g| {
                g.call(helper, crate::ArgExpr::Dec);
            });
        });
        b.define(main, |f| {
            f.branch(TakenDist::Always);
            f.branch(TakenDist::Never);
            f.branch(TakenDist::Alternating);
            f.repeat(Trip::Uniform(2, 5), |l| {
                l.cond(
                    TakenDist::Bernoulli(0.25),
                    |t| {
                        t.call(helper, crate::ArgExpr::Draw(1, 3));
                    },
                    |e| {
                        e.branch(TakenDist::Always);
                    },
                );
            });
            f.repeat(Trip::Arg, |l| {
                l.call(helper, crate::ArgExpr::Half);
            });
        });
        b.entry(main);
        let dump = b.build().unwrap().dump();
        for needle in [
            "fn helper (f0)",
            "fn main (f1) // entry",
            "period=3",
            "if arg > 0 {",
            "call f0(arg-1)",
            "alternating",
            "loop L0 x[2..=5] {",
            "if branch @3 p=0.25 {",
            "} else {",
            "call f0(draw[1..=3])",
            "loop L1 x(arg) {",
            "call f0(arg/2)",
        ] {
            assert!(dump.contains(needle), "missing {needle:?} in:\n{dump}");
        }
    }

    #[test]
    fn workload_dumps_are_nonempty() {
        for w in crate::workloads::Workload::ALL {
            let dump = w.program(1).dump();
            assert!(dump.lines().count() > 5, "{w}");
        }
    }
}
