//! `lexgen`: the JLex analogue.
//!
//! A lexical-analyzer generator processes two scanner specifications;
//! each runs a pipeline of distinct long stages — read the
//! specification, build the NFA, determinize (the dominant ~100K
//! stage), minimize, and emit. Almost all branches fall inside some
//! phase, and at MPL = 100K exactly the two determinization stages
//! survive — mirroring JLex's 2 phases at 92.85% in Table 1(b).

use crate::{ArgExpr, Program, ProgramBuilder, TakenDist, Trip};

/// Builds the `lexgen` program. `scale` multiplies the size of the
/// determinization stage.
#[must_use]
pub fn lexgen(scale: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let determinize = b.declare("determinize");
    let main = b.declare("main");

    // Subset construction: for every unmarked DFA state, scan the
    // alphabet and union NFA move sets. ~100K branches per call.
    b.define(determinize, |f| {
        f.repeat(Trip::Fixed(300), |states| {
            states.branch(TakenDist::Bernoulli(0.5)); // pop work list
            states.repeat(Trip::Uniform(120, 220), |alphabet| {
                alphabet.branches(2, TakenDist::Bernoulli(0.35));
            });
        });
    });

    b.define(main, |f| {
        f.repeat(Trip::Fixed(2 * scale), |specs| {
            specs.branches(3, TakenDist::Bernoulli(0.5)); // open spec
                                                          // Stage 1: read the lexer specification.
            specs.repeat(Trip::Fixed(2000), |spec| {
                spec.branches(2, TakenDist::Bernoulli(0.65));
            });
            specs.branches(2, TakenDist::Bernoulli(0.5)); // hand-off
                                                          // Stage 2: build the NFA.
            specs.repeat(Trip::Fixed(5500), |nfa| {
                nfa.branches(3, TakenDist::Bernoulli(0.5));
            });
            specs.branches(2, TakenDist::Bernoulli(0.5));
            // Stage 3: determinize (NFA -> DFA), the dominant stage.
            specs.call(determinize, ArgExpr::Const(0));
            specs.branches(2, TakenDist::Bernoulli(0.5));
            // Stage 4: minimize the DFA.
            specs.repeat(Trip::Fixed(12), |rounds| {
                rounds.branch(TakenDist::Bernoulli(0.5));
                rounds.repeat(Trip::Fixed(1400), |pairs| {
                    pairs.branches(2, TakenDist::Bernoulli(0.4));
                });
            });
            specs.branches(2, TakenDist::Bernoulli(0.5));
            // Stage 5: emit the scanner tables.
            specs.repeat(Trip::Fixed(4000), |emit| {
                emit.branches(2, TakenDist::Bernoulli(0.8));
            });
        });
    });

    b.entry(main);
    b.build().expect("lexgen is a valid program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interpreter;
    use opd_trace::{ExecutionTrace, TraceStats};

    #[test]
    fn shape_matches_design() {
        let p = lexgen(1);
        let mut t = ExecutionTrace::new();
        Interpreter::new(&p, 8).run(&mut t).unwrap();
        let s = TraceStats::measure(&t);
        // 2 specs x (4K read + 16.5K nfa + ~102K det + ~34K min + 8K emit).
        assert!(s.dynamic_branches > 250_000, "{}", s.dynamic_branches);
        assert_eq!(s.method_invocations, 3);
        assert_eq!(s.recursion_roots, 0);
    }
}
