//! `parsegen`: the `_228_jack` analogue.
//!
//! A parser generator re-parses a series of grammar files, invoking
//! the same parse method back-to-back twelve times per file. The
//! adjacent invocations exercise the baseline's merging of temporally
//! adjacent repeated invocations of one method (Section 3.1): at small
//! MPL values each pass's token loop (~2.4K) is a phase, at mid MPL
//! values the merged run of passes per file (~30K) is, and at large
//! MPL values only the whole-file loop survives — the decay jack shows
//! in Table 1(b).

use crate::{ArgExpr, Program, ProgramBuilder, TakenDist, Trip};

/// Builds the `parsegen` program. `scale` multiplies the number of
/// grammar files.
#[must_use]
pub fn parsegen(scale: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let parse_pass = b.declare("parse_pass");
    let emit_tables = b.declare("emit_tables");
    let main = b.declare("main");

    // One pass over a grammar: a token loop with an occasional
    // production-reduction burst.
    b.define(parse_pass, |f| {
        f.branch(TakenDist::Bernoulli(0.5)); // reset lexer
        f.repeat(Trip::Uniform(800, 1400), |tokens| {
            tokens.branches(2, TakenDist::Bernoulli(0.5)); // token class
            tokens.cond(
                TakenDist::Bernoulli(0.06), // reduce a production
                |reduce| {
                    reduce.branches(3, TakenDist::Bernoulli(0.45));
                },
                |_| {},
            );
        });
    });

    // Final table emission.
    b.define(emit_tables, |f| {
        f.repeat(Trip::Fixed(5000), |rows| {
            rows.branches(2, TakenDist::Bernoulli(0.75));
        });
    });

    b.define(main, |f| {
        f.branches(4, TakenDist::Bernoulli(0.5)); // startup
        f.repeat(Trip::Fixed(12 * scale), |files| {
            files.branches(2, TakenDist::Bernoulli(0.5)); // open grammar
                                                          // NOTE: no branches between iterations, so consecutive
                                                          // parse_pass invocations are adjacent (distance 0) and
                                                          // merge into a single baseline CRI per file.
            files.repeat(Trip::Fixed(12), |passes| {
                passes.call(parse_pass, ArgExpr::Const(0));
            });
        });
        f.call(emit_tables, ArgExpr::Const(0));
    });

    b.entry(main);
    b.build().expect("parsegen is a valid program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interpreter;
    use opd_trace::{ExecutionTrace, TraceStats};

    #[test]
    fn shape_matches_design() {
        let p = parsegen(1);
        let mut t = ExecutionTrace::new();
        Interpreter::new(&p, 7).run(&mut t).unwrap();
        let s = TraceStats::measure(&t);
        // 12 files x 12 passes x ~2.4K + 10K emit.
        assert!(s.dynamic_branches > 250_000, "{}", s.dynamic_branches);
        assert_eq!(s.method_invocations, 12 * 12 + 1 + 1);
        assert_eq!(s.recursion_roots, 0);
    }
}
