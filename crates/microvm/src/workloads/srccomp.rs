//! `srccomp`: the `_213_javac` analogue.
//!
//! A compiler front end processes packages of source files: each file
//! is parsed by recursive descent (deep, irregular recursion whose
//! trees are the unit phases) and lowered by a flat emission loop;
//! six files form a package (~26K, the mid-level phase). Recursion
//! roots are plentiful, matching javac's profile in Table 1(a).

use crate::{ArgExpr, Program, ProgramBuilder, TakenDist, Trip};

/// Builds the `srccomp` program. `scale` multiplies the number of
/// compiled packages.
#[must_use]
pub fn srccomp(scale: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let parse_expr = b.declare("parse_expr");
    let compile_file = b.declare("compile_file");
    let main = b.declare("main");

    // Recursive-descent expression parser: a binary recursion bounded
    // by the depth argument, with token-scanning work at every node.
    b.define(parse_expr, |f| {
        f.branches(3, TakenDist::Bernoulli(0.55)); // token dispatch
        f.repeat(Trip::Uniform(1, 4), |tokens| {
            tokens.branches(2, TakenDist::Bernoulli(0.5));
        });
        f.if_arg_positive(|rec| {
            rec.branch(TakenDist::Bernoulli(0.8)); // operator present?
            rec.call(parse_expr, ArgExpr::Dec); // left operand
            rec.call(parse_expr, ArgExpr::Dec); // right operand
        });
    });

    // One file: parse a couple of top-level declarations (tree sizes
    // vary over two orders of magnitude), then emit bytecode.
    b.define(compile_file, |f| {
        f.branches(2, TakenDist::Bernoulli(0.5)); // open + scan header
        f.repeat(Trip::Uniform(1, 3), |decls| {
            decls.branch(TakenDist::Bernoulli(0.6));
            decls.call(parse_expr, ArgExpr::Draw(4, 8));
        });
        f.repeat(Trip::Uniform(400, 900), |emit| {
            emit.branches(2, TakenDist::Bernoulli(0.5));
        });
    });

    b.define(main, |f| {
        f.branches(4, TakenDist::Bernoulli(0.5)); // javac startup
        f.repeat(Trip::Fixed(15 * scale), |packages| {
            packages.branches(2, TakenDist::Bernoulli(0.4)); // read manifest
                                                             // One loop execution per package (~26K).
            packages.repeat(Trip::Fixed(6), |files| {
                files.branches(2, TakenDist::Bernoulli(0.4));
                files.call(compile_file, ArgExpr::Const(0));
            });
        });
    });

    b.entry(main);
    b.build().expect("srccomp is a valid program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interpreter;
    use opd_trace::{ExecutionTrace, TraceStats};

    #[test]
    fn shape_matches_design() {
        let p = srccomp(1);
        let mut t = ExecutionTrace::new();
        Interpreter::new(&p, 4).run(&mut t).unwrap();
        let s = TraceStats::measure(&t);
        assert!(s.dynamic_branches > 150_000, "{}", s.dynamic_branches);
        // Every top-level parse_expr call with depth > 0 recurses.
        assert!(s.recursion_roots > 100, "{}", s.recursion_roots);
    }

    #[test]
    fn recursion_depth_is_bounded() {
        let p = srccomp(1);
        let mut t = ExecutionTrace::new();
        let summary = Interpreter::new(&p, 4).run(&mut t).unwrap();
        // main -> compile_file -> parse_expr nest of at most 9.
        assert!(summary.max_depth <= 2 + 9 + 1, "{}", summary.max_depth);
    }
}
