//! Synthetic workloads mirroring the control-flow character of the
//! paper's benchmark suite (seven SPECjvm98 programs plus JLex).
//!
//! Each workload is a deterministic function of a `scale` factor that
//! multiplies the amount of top-level work. The mapping to the paper's
//! benchmarks (and the signature each analogue reproduces) is:
//!
//! | Workload | Paper benchmark | Signature |
//! |----------|-----------------|-----------|
//! | [`blockcomp`] | `_201_compress` | few long, regular phases whose branch *sets* coincide but whose *frequencies* differ — the case where the weighted model beats the unweighted one |
//! | [`ruleng`] | `_202_jess` | many medium match/fire cycles |
//! | [`tracer`] | `_205_raytrace` | nested pixel loops with recursive ray casts |
//! | [`querydb`] | `_209_db` | repeated query scans with periodic sort bursts |
//! | [`srccomp`] | `_213_javac` | recursion-heavy, irregular phases |
//! | [`audiodec`] | `_222_mpegaudio` | thousands of short frame-decode loops inside two long channel passes |
//! | [`parsegen`] | `_228_jack` | repeated sequential invocations of the same parse method |
//! | [`lexgen`] | JLex | a pipeline of distinct long-running stages |

use opd_trace::ExecutionTrace;

use crate::{Interpreter, Program};

mod audiodec;
mod blockcomp;
mod lexgen;
mod parsegen;
mod querydb;
mod ruleng;
mod srccomp;
mod tracer;

pub use audiodec::audiodec;
pub use blockcomp::blockcomp;
pub use lexgen::lexgen;
pub use parsegen::parsegen;
pub use querydb::querydb;
pub use ruleng::ruleng;
pub use srccomp::srccomp;
pub use tracer::tracer;

/// The eight synthetic benchmarks, identified for sweeps and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// `_201_compress` analogue.
    Blockcomp,
    /// `_202_jess` analogue.
    Ruleng,
    /// `_205_raytrace` analogue.
    Tracer,
    /// `_209_db` analogue.
    Querydb,
    /// `_213_javac` analogue.
    Srccomp,
    /// `_222_mpegaudio` analogue.
    Audiodec,
    /// `_228_jack` analogue.
    Parsegen,
    /// JLex analogue.
    Lexgen,
}

impl Workload {
    /// All workloads, in the paper's table order.
    pub const ALL: [Workload; 8] = [
        Workload::Blockcomp,
        Workload::Ruleng,
        Workload::Tracer,
        Workload::Querydb,
        Workload::Srccomp,
        Workload::Audiodec,
        Workload::Parsegen,
        Workload::Lexgen,
    ];

    /// The workload's short name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Workload::Blockcomp => "blockcomp",
            Workload::Ruleng => "ruleng",
            Workload::Tracer => "tracer",
            Workload::Querydb => "querydb",
            Workload::Srccomp => "srccomp",
            Workload::Audiodec => "audiodec",
            Workload::Parsegen => "parsegen",
            Workload::Lexgen => "lexgen",
        }
    }

    /// The paper benchmark this workload stands in for.
    #[must_use]
    pub fn paper_benchmark(self) -> &'static str {
        match self {
            Workload::Blockcomp => "_201_compress",
            Workload::Ruleng => "_202_jess",
            Workload::Tracer => "_205_raytrace",
            Workload::Querydb => "_209_db",
            Workload::Srccomp => "_213_javac",
            Workload::Audiodec => "_222_mpegaudio",
            Workload::Parsegen => "_228_jack",
            Workload::Lexgen => "JLex",
        }
    }

    /// Builds the workload's program at the given scale
    /// (`scale == 0` is treated as 1).
    #[must_use]
    pub fn program(self, scale: u32) -> Program {
        let scale = scale.max(1);
        match self {
            Workload::Blockcomp => blockcomp(scale),
            Workload::Ruleng => ruleng(scale),
            Workload::Tracer => tracer(scale),
            Workload::Querydb => querydb(scale),
            Workload::Srccomp => srccomp(scale),
            Workload::Audiodec => audiodec(scale),
            Workload::Parsegen => parsegen(scale),
            Workload::Lexgen => lexgen(scale),
        }
    }

    /// The fixed seed used by the paper-reproduction experiments.
    #[must_use]
    pub fn default_seed(self) -> u64 {
        0xC602_0060_u64.wrapping_mul(self as u64 + 1)
    }

    /// Executes the workload and returns its full trace — the
    /// convenience entry point used throughout the examples and
    /// experiments.
    ///
    /// # Panics
    ///
    /// Panics if the generated program fails to run, which would be a
    /// bug in the workload definitions (they are covered by tests).
    #[must_use]
    pub fn trace(self, scale: u32) -> ExecutionTrace {
        let program = self.program(scale);
        let mut trace = ExecutionTrace::new();
        Interpreter::new(&program, self.default_seed())
            .run(&mut trace)
            .expect("workload programs terminate");
        trace
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_trace::TraceStats;

    #[test]
    fn all_workloads_build_and_run() {
        for w in Workload::ALL {
            let trace = w.trace(1);
            let stats = TraceStats::measure(&trace);
            assert!(
                stats.dynamic_branches > 50_000,
                "{w}: too few branches ({})",
                stats.dynamic_branches
            );
            assert!(
                stats.dynamic_branches < 2_000_000,
                "{w}: too many branches ({})",
                stats.dynamic_branches
            );
            assert!(stats.loop_executions > 0, "{w}: no loops");
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let a = Workload::Ruleng.trace(1);
        let b = Workload::Ruleng.trace(1);
        assert_eq!(a, b);
    }

    #[test]
    fn scale_increases_work() {
        let small = TraceStats::measure(&Workload::Lexgen.trace(1));
        let large = TraceStats::measure(&Workload::Lexgen.trace(2));
        assert!(large.dynamic_branches > small.dynamic_branches);
    }

    #[test]
    fn recursive_workloads_have_recursion_roots() {
        for w in [Workload::Srccomp, Workload::Tracer] {
            let stats = TraceStats::measure(&w.trace(1));
            assert!(stats.recursion_roots > 0, "{w}: expected recursion");
        }
    }

    #[test]
    fn names_and_paper_benchmarks_unique() {
        let mut names: Vec<_> = Workload::ALL.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
        assert_eq!(format!("{}", Workload::Querydb), "querydb");
        assert_eq!(Workload::Blockcomp.paper_benchmark(), "_201_compress");
    }

    #[test]
    fn zero_scale_is_clamped() {
        let t = Workload::Audiodec.program(0);
        let u = Workload::Audiodec.program(1);
        assert_eq!(t, u);
    }
}
