//! `blockcomp`: the `_201_compress` analogue.
//!
//! Compress alternates between compressing and expanding large data
//! blocks. Crucially for the paper's Figure 5 anomaly, every branch
//! site is shared across all phases *and* transitions: the codec
//! rounds and the inter-block checksum gaps draw from one working
//! set, so the unweighted (set) model sees similarity 1.0 everywhere
//! and cannot find any boundary. Only the relative *frequencies*
//! differ — the expander spends ~90% of its time in the inner bit
//! loop, the compressor ~38%, and the gaps are pure checksum — which
//! the weighted model detects sharply. This reproduces the paper's
//! finding that `_201_compress` is the one benchmark where the
//! weighted model clearly wins.

use crate::{ArgExpr, Program, ProgramBuilder, TakenDist, Trip};

/// Builds the `blockcomp` program. `scale` multiplies the number of
/// processed blocks.
#[must_use]
pub fn blockcomp(scale: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let checksum = b.declare("checksum");
    let codec_block = b.declare("codec_block");
    let main = b.declare("main");

    // A tiny checksum routine, called both inside every codec round
    // and throughout the inter-block gaps — its sites are frequent in
    // every phase, so gap elements are invisible to the set model.
    b.define(checksum, |f| {
        f.branches(2, TakenDist::Bernoulli(0.5));
    });

    // The shared codec routine: "table lookup" sites, a checksum call,
    // and an inner bit loop whose trip count is the caller's argument.
    // Callers shift weight between outer and inner sites without
    // changing the site set.
    b.define(codec_block, |f| {
        f.repeat(Trip::Fixed(700), |round| {
            round.branches(3, TakenDist::Bernoulli(0.6));
            round.call(checksum, ArgExpr::Const(0));
            round.repeat(Trip::Arg, |bits| {
                bits.branches(3, TakenDist::Bernoulli(0.55));
            });
        });
    });

    b.define(main, |f| {
        f.branches(6, TakenDist::Bernoulli(0.4)); // startup
        f.repeat(Trip::Fixed(6 * scale), |blocks| {
            // Inter-block gap: ~600 elements of checksum work.
            blocks.repeat(Trip::Fixed(300), |gap| {
                gap.call(checksum, ArgExpr::Const(0));
            });
            blocks.call(codec_block, ArgExpr::Const(1)); // compress: light bit loop
            blocks.repeat(Trip::Fixed(300), |gap| {
                gap.call(checksum, ArgExpr::Const(0));
            });
            blocks.call(codec_block, ArgExpr::Const(16)); // expand: heavy bit loop
        });
        f.branches(6, TakenDist::Bernoulli(0.4)); // teardown
    });

    b.entry(main);
    b.build().expect("blockcomp is a valid program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interpreter;
    use opd_trace::{CallLoopEventKind, ExecutionTrace, TraceStats};
    use std::collections::HashSet;

    fn codec_spans(t: &ExecutionTrace) -> Vec<(u64, u64)> {
        let mut spans = Vec::new();
        let mut open = None;
        for ev in t.events() {
            match ev.kind() {
                CallLoopEventKind::MethodEnter(m) if m.index() == 1 => open = Some(ev.offset()),
                CallLoopEventKind::MethodExit(m) if m.index() == 1 => {
                    spans.push((open.take().unwrap(), ev.offset()));
                }
                _ => {}
            }
        }
        spans
    }

    #[test]
    fn shape_matches_design() {
        let p = blockcomp(1);
        let mut t = ExecutionTrace::new();
        Interpreter::new(&p, 1).run(&mut t).unwrap();
        let s = TraceStats::measure(&t);
        // 6 blocks x (compress ~6.3K + expand ~39K + 1.2K gaps).
        assert!(s.dynamic_branches > 150_000, "{}", s.dynamic_branches);
        assert_eq!(s.recursion_roots, 0);
    }

    #[test]
    fn all_sites_shared_between_phases_and_gaps() {
        // Consecutive codec invocations (compress, then expand) must
        // use identical site sets, and the gap elements between them
        // must be a subset — the unweighted model then sees nothing.
        let p = blockcomp(1);
        let mut t = ExecutionTrace::new();
        Interpreter::new(&p, 1).run(&mut t).unwrap();
        let spans = codec_spans(&t);
        assert_eq!(spans.len(), 12);
        let sites: Vec<HashSet<_>> = spans
            .iter()
            .map(|&(s, e)| {
                t.branches().as_slice()[s as usize..e as usize]
                    .iter()
                    .map(|x| x.site())
                    .collect()
            })
            .collect();
        for pair in sites.windows(2) {
            assert_eq!(pair[0], pair[1], "phases must share their site set");
        }
        // Gap between phase 0 and phase 1.
        let gap: HashSet<_> = t.branches().as_slice()[spans[0].1 as usize..spans[1].0 as usize]
            .iter()
            .map(|x| x.site())
            .collect();
        assert!(!gap.is_empty());
        assert!(gap.is_subset(&sites[0]), "gap sites leak new information");
    }

    #[test]
    fn phases_differ_in_frequency_mix() {
        let p = blockcomp(1);
        let mut t = ExecutionTrace::new();
        Interpreter::new(&p, 1).run(&mut t).unwrap();
        let lens: Vec<u64> = codec_spans(&t).iter().map(|&(s, e)| e - s).collect();
        // Alternating short (compress) and long (expand) phases.
        for pair in lens.chunks(2) {
            assert!(pair[1] > pair[0] * 4, "{pair:?}");
        }
    }

    #[test]
    fn gaps_are_wide_enough_for_boundary_matching() {
        // The inter-phase gaps must exceed a CW=500 detector's lag so
        // that late phase-end detections still land inside the gap.
        let p = blockcomp(1);
        let mut t = ExecutionTrace::new();
        Interpreter::new(&p, 1).run(&mut t).unwrap();
        let spans = codec_spans(&t);
        for pair in spans.windows(2) {
            let gap = pair[1].0 - pair[0].1;
            assert!((550..1_000).contains(&gap), "gap {gap}");
        }
    }
}
