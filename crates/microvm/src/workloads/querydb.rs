//! `querydb`: the `_209_db` analogue.
//!
//! An in-memory database serves sessions of queries: each query scans
//! the record table (~2K branches, the unit phase), eight queries make
//! a session (~17K, the mid-level phase), and a shell-sort burst runs
//! every tenth operation.

use crate::{ArgExpr, Program, ProgramBuilder, TakenDist, Trip};

/// Builds the `querydb` program. `scale` multiplies the number of
/// sessions.
#[must_use]
pub fn querydb(scale: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let run_query = b.declare("run_query");
    let sort_records = b.declare("sort_records");
    let main = b.declare("main");

    // One query: a scan over ~1000 records with a comparison and a
    // rarely-taken match branch.
    b.define(run_query, |f| {
        f.branches(2, TakenDist::Bernoulli(0.5)); // parse the query
        f.repeat(Trip::Uniform(700, 1300), |scan| {
            scan.branch(TakenDist::Bernoulli(0.3)); // key compare
            scan.cond(
                TakenDist::Bernoulli(0.02), // match found
                |hit| {
                    hit.branches(2, TakenDist::Bernoulli(0.5));
                },
                |_| {},
            );
        });
    });

    // Shell sort burst: nested gap/insertion loops.
    b.define(sort_records, |f| {
        f.repeat(Trip::Fixed(35), |gap| {
            gap.repeat(Trip::Uniform(30, 50), |inner| {
                inner.branches(2, TakenDist::Bernoulli(0.5));
            });
        });
    });

    b.define(main, |f| {
        // Setup: read the record file.
        f.repeat(Trip::Fixed(2500), |read| {
            read.branches(2, TakenDist::Bernoulli(0.8));
        });
        // Sessions of queries.
        f.repeat(Trip::Fixed(18 * scale), |sessions| {
            sessions.branches(2, TakenDist::Bernoulli(0.5)); // authenticate
                                                             // One loop execution per session (~17K): the mid-level
                                                             // repetition construct.
            sessions.repeat(Trip::Fixed(8), |ops| {
                ops.branches(2, TakenDist::Bernoulli(0.5)); // dispatch
                ops.call(run_query, ArgExpr::Const(0));
                ops.cond(
                    TakenDist::Periodic(10),
                    |sort| {
                        sort.call(sort_records, ArgExpr::Const(0));
                    },
                    |_| {},
                );
            });
        });
    });

    b.entry(main);
    b.build().expect("querydb is a valid program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interpreter;
    use opd_trace::{ExecutionTrace, TraceStats};

    #[test]
    fn shape_matches_design() {
        let p = querydb(1);
        let mut t = ExecutionTrace::new();
        Interpreter::new(&p, 3).run(&mut t).unwrap();
        let s = TraceStats::measure(&t);
        // 18 sessions x 8 queries x ~2.1K + sorts + setup 5K.
        assert!(s.dynamic_branches > 250_000, "{}", s.dynamic_branches);
        // 144 queries + 14 sorts (every 10th op) + main.
        assert_eq!(s.method_invocations, 144 + 14 + 1);
        assert_eq!(s.recursion_roots, 0);
    }
}
