//! `tracer`: the `_205_raytrace` analogue.
//!
//! A ray tracer renders a few frames, each split into horizontal
//! bands of rows; every pixel spawns a recursive ray cast of small,
//! random depth. Rows (~1.5K branches), bands (~25K), and frames
//! (~100K) give the baseline phases at several granularities, and the
//! recursion contributes recursion roots as raytrace does in
//! Table 1(a).

use crate::{ArgExpr, Program, ProgramBuilder, TakenDist, Trip};

/// Builds the `tracer` program. `scale` multiplies the number of
/// rendered frames.
#[must_use]
pub fn tracer(scale: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let trace_ray = b.declare("trace_ray");
    let shade_pixel = b.declare("shade_pixel");
    let main = b.declare("main");

    // A ray: intersection tests, then possibly a reflected ray.
    b.define(trace_ray, |f| {
        f.repeat(Trip::Uniform(2, 6), |objects| {
            objects.branches(2, TakenDist::Bernoulli(0.35)); // hit tests
        });
        f.if_arg_positive(|rec| {
            rec.cond(
                TakenDist::Bernoulli(0.55), // surface is reflective
                |reflect| {
                    reflect.call(trace_ray, ArgExpr::Dec);
                },
                |_| {},
            );
        });
    });

    // Shading after the primary ray returns.
    b.define(shade_pixel, |f| {
        f.branches(3, TakenDist::Bernoulli(0.6));
        f.cond(
            TakenDist::Bernoulli(0.3), // in shadow: extra lighting work
            |shadow| {
                shadow.branches(2, TakenDist::Bernoulli(0.5));
            },
            |_| {},
        );
    });

    b.define(main, |f| {
        f.repeat(Trip::Fixed(800), |scene| {
            scene.branches(2, TakenDist::Bernoulli(0.7)); // scene parse
        });
        f.repeat(Trip::Fixed(3 * scale), |frames| {
            frames.branches(2, TakenDist::Bernoulli(0.5)); // frame setup
                                                           // Bands: one loop execution per frame (~100K).
            frames.repeat(Trip::Fixed(4), |bands| {
                bands.branches(2, TakenDist::Bernoulli(0.5)); // band setup
                                                              // Rows: one loop execution per band (~25K).
                bands.repeat(Trip::Fixed(16), |rows| {
                    rows.branches(2, TakenDist::Bernoulli(0.5)); // row bookkeeping
                                                                 // Columns: one loop execution per row — the unit
                                                                 // phase of ~1.5K branches.
                    rows.repeat(Trip::Fixed(64), |cols| {
                        cols.branch(TakenDist::Bernoulli(0.5)); // pixel fetch
                        cols.call(trace_ray, ArgExpr::Draw(1, 4));
                        cols.call(shade_pixel, ArgExpr::Const(0));
                    });
                });
            });
        });
    });

    b.entry(main);
    b.build().expect("tracer is a valid program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interpreter;
    use opd_trace::{ExecutionTrace, TraceStats};

    #[test]
    fn shape_matches_design() {
        let p = tracer(1);
        let mut t = ExecutionTrace::new();
        Interpreter::new(&p, 6).run(&mut t).unwrap();
        let s = TraceStats::measure(&t);
        // 3 frames x 4 bands x 16 rows x 64 pixels x ~24 branches.
        assert!(s.dynamic_branches > 150_000, "{}", s.dynamic_branches);
        assert!(s.recursion_roots > 1_000, "{}", s.recursion_roots);
        assert!(s.loop_executions > 10_000, "{}", s.loop_executions);
    }
}
