//! `audiodec`: the `_222_mpegaudio` analogue.
//!
//! An audio decoder processes two channels of granules of frames. The
//! per-frame subband synthesis loop (~1.6K branches) is the unit
//! phase; twelve frames form a granule (~20K); ten granules form a
//! channel (~200K). At MPL = 100K only the two channel-level
//! executions remain — matching the extreme mpegaudio shows in
//! Table 1(b), where 7594 phases at MPL = 1K collapse to 2 at 100K.

use crate::{ArgExpr, Program, ProgramBuilder, TakenDist, Trip};

/// Builds the `audiodec` program. `scale` multiplies the number of
/// channels decoded.
#[must_use]
pub fn audiodec(scale: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let decode_frame = b.declare("decode_frame");
    let decode_channel = b.declare("decode_channel");
    let main = b.declare("main");

    // One frame: windowing, subband synthesis (the dominant unit
    // loop), and output.
    b.define(decode_frame, |f| {
        f.branches(2, TakenDist::Bernoulli(0.5)); // frame header
        f.repeat(Trip::Uniform(10, 16), |window| {
            window.branches(2, TakenDist::Bernoulli(0.7));
        });
        f.repeat(Trip::Uniform(150, 260), |subband| {
            subband.branches(4, TakenDist::Bernoulli(0.45));
            subband.repeat(Trip::Fixed(2), |butterfly| {
                butterfly.branches(2, TakenDist::Alternating);
            });
        });
        f.repeat(Trip::Uniform(8, 14), |out| {
            out.branches(2, TakenDist::Bernoulli(0.9));
        });
    });

    // One channel: granules of frames; the granule loop execution is
    // the ~200K channel-level repetition construct.
    b.define(decode_channel, |f| {
        f.branches(3, TakenDist::Bernoulli(0.5)); // channel setup
        f.repeat(Trip::Fixed(10), |granules| {
            granules.branches(2, TakenDist::Bernoulli(0.5)); // granule header
                                                             // One loop execution per granule (~20K).
            granules.repeat(Trip::Fixed(12), |frames| {
                frames.branches(2, TakenDist::Bernoulli(0.5)); // sync search
                frames.call(decode_frame, ArgExpr::Const(0));
            });
        });
    });

    b.define(main, |f| {
        f.branches(5, TakenDist::Bernoulli(0.4)); // stream open
        f.repeat(Trip::Fixed(2 * scale), |channels| {
            channels.branches(2, TakenDist::Bernoulli(0.3));
            channels.call(decode_channel, ArgExpr::Const(0));
        });
    });

    b.entry(main);
    b.build().expect("audiodec is a valid program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interpreter;
    use opd_trace::{CallLoopEventKind, ExecutionTrace, TraceStats};

    #[test]
    fn shape_matches_design() {
        let p = audiodec(1);
        let mut t = ExecutionTrace::new();
        Interpreter::new(&p, 2).run(&mut t).unwrap();
        let s = TraceStats::measure(&t);
        assert!(s.dynamic_branches > 250_000, "{}", s.dynamic_branches);
        // 2 channels x 10 granules x 12 frames, plus 2 channel calls.
        assert_eq!(s.method_invocations, 240 + 2 + 1);
        assert_eq!(s.recursion_roots, 0);
    }

    #[test]
    fn frames_dominated_by_subband_unit() {
        let p = audiodec(1);
        let mut t = ExecutionTrace::new();
        Interpreter::new(&p, 2).run(&mut t).unwrap();
        // Average frame length ~1.7K: big enough that its subband loop
        // is a unit phase at MPL = 1K, small enough to vanish by 25K.
        let mut enters = Vec::new();
        let mut lens = Vec::new();
        for ev in t.events() {
            match ev.kind() {
                CallLoopEventKind::MethodEnter(m) if m.index() == 0 => enters.push(ev.offset()),
                CallLoopEventKind::MethodExit(m) if m.index() == 0 => {
                    let start = enters.pop().unwrap();
                    lens.push(ev.offset() - start);
                }
                _ => {}
            }
        }
        assert_eq!(lens.len(), 240);
        let avg = lens.iter().sum::<u64>() / lens.len() as u64;
        assert!((1_000..3_000).contains(&avg), "avg frame length {avg}");
    }
}
